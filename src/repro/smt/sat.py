"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal clause
propagation, first-UIP conflict analysis with clause learning, VSIDS-ish
activity-driven branching with phase saving, and Luby-sequence restarts.
Small but genuine — it decides the bit-blasted refinement queries the
symbolic checker produces (thousands of variables) in milliseconds to
seconds.

Literal convention: a literal is a nonzero int; ``v`` means variable
``v`` true, ``-v`` means false (DIMACS style).  Variables are numbered
from 1.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class Clause:
    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:
        return f"Clause({self.literals})"


class SatSolver:
    def __init__(self):
        self.num_vars = 0
        self.clauses: List[Clause] = []
        #: literal -> clauses watching it
        self.watches: Dict[int, List[Clause]] = {}
        #: variable -> None / bool
        self.assignment: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[Clause]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.propagate_head = 0
        self.ok = True
        self.conflicts = 0
        #: last solve() stopped because its deadline expired
        self.deadline_hit = False

    # -- variable / clause management ---------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        v = self.num_vars
        self.assignment.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        self.watches.setdefault(v, [])
        self.watches.setdefault(-v, [])
        return v

    def value_of(self, lit: int) -> Optional[bool]:
        v = self.assignment[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a problem clause; returns False if the formula is already
        unsatisfiable."""
        if not self.ok:
            return False
        seen = set()
        out: List[int] = []
        for lit in literals:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self.value_of(lit)
            if value is True and self.level[abs(lit)] == 0:
                return True  # satisfied at top level
            if value is False and self.level[abs(lit)] == 0:
                continue  # falsified at top level: drop the literal
            out.append(lit)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        clause = Clause(out)
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: Clause) -> None:
        self.watches.setdefault(-clause.literals[0], []).append(clause)
        self.watches.setdefault(-clause.literals[1], []).append(clause)

    # -- trail management ---------------------------------------------------------
    def _enqueue(self, lit: int, reason: Optional[Clause]) -> bool:
        value = self.value_of(lit)
        if value is not None:
            return value
        v = abs(lit)
        self.assignment[v] = lit > 0
        self.level[v] = self.decision_level
        self.reason[v] = reason
        self.trail.append(lit)
        return True

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def _decide(self, lit: int) -> None:
        self.trail_lim.append(len(self.trail))
        self._enqueue(lit, None)

    def _backtrack(self, target_level: int) -> None:
        if target_level >= self.decision_level:
            return  # already at (or below) the target: nothing to undo
        while len(self.trail) > self.trail_lim[target_level]:
            lit = self.trail.pop()
            v = abs(lit)
            self.phase[v] = self.assignment[v]  # phase saving
            self.assignment[v] = None
            self.reason[v] = None
        del self.trail_lim[target_level:]
        self.propagate_head = min(self.propagate_head, len(self.trail))

    # -- unit propagation ---------------------------------------------------------
    def _propagate(self) -> Optional[Clause]:
        while self.propagate_head < len(self.trail):
            lit = self.trail[self.propagate_head]
            self.propagate_head += 1
            watching = self.watches.get(lit, [])
            i = 0
            while i < len(watching):
                clause = watching[i]
                lits = clause.literals
                # normalize: watched literals are positions 0 and 1
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self.value_of(first) is True:
                    i += 1
                    continue
                # find a new watch
                found = False
                for k in range(2, len(lits)):
                    if self.value_of(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches.setdefault(-lits[1], []).append(clause)
                        watching[i] = watching[-1]
                        watching.pop()
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                if self.value_of(first) is False:
                    self.propagate_head = len(self.trail)
                    return clause
                self._enqueue(first, clause)
                i += 1
        return None

    # -- conflict analysis (first UIP) ------------------------------------------------
    def _analyze(self, conflict: Clause) -> Tuple[List[int], int]:
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause: Optional[Clause] = conflict
        index = len(self.trail) - 1

        while True:
            assert clause is not None
            for q in clause.literals:
                if lit is not None and q == lit:
                    continue
                v = abs(q)
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self.level[v] == self.decision_level:
                        counter += 1
                    else:
                        learned.append(q)
            # pick the next trail literal to resolve on
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            v = abs(lit)
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                learned[0] = -lit
                break
            clause = self.reason[v]

        # backtrack level: second-highest level in the learned clause
        if len(learned) == 1:
            bt = 0
        else:
            bt = max(self.level[abs(q)] for q in learned[1:])
        return learned, bt

    def _bump(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100

    # -- main search --------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = (),
              max_conflicts: Optional[int] = None,
              deadline: Optional[float] = None) -> str:
        """``deadline`` is an absolute :func:`time.monotonic` instant;
        past it the search stops with UNKNOWN (``deadline_hit`` set), so
        a hung query honors its request's budget like fuel."""
        self.deadline_hit = False
        if not self.ok:
            return UNSAT
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return UNSAT

        assumptions = list(assumptions)
        restart_idx = 0
        conflicts_until_restart = 32 * _luby(restart_idx)
        total_conflicts = 0
        steps = 0

        while True:
            if deadline is not None:
                steps += 1
                if steps % 64 == 0 and time.monotonic() >= deadline:
                    self.deadline_hit = True
                    self._backtrack(0)
                    return UNKNOWN
            conflict = self._propagate()
            if conflict is not None:
                total_conflicts += 1
                self.conflicts += 1
                if self.decision_level == 0:
                    self.ok = False
                    return UNSAT
                if max_conflicts is not None \
                        and total_conflicts > max_conflicts:
                    self._backtrack(0)
                    return UNKNOWN
                learned, bt_level = self._analyze(conflict)
                # do not backtrack past the assumptions
                bt_level = max(bt_level, self._assumption_level(assumptions))
                if bt_level >= self.decision_level:
                    self._backtrack(max(0, self.decision_level - 1))
                else:
                    self._backtrack(bt_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self.ok = False
                        return UNSAT
                else:
                    clause = Clause(learned, learned=True)
                    # ensure the asserting literal is watched along with
                    # a literal from the backtrack level
                    self.clauses.append(clause)
                    self._order_watches(clause)
                    self._watch(clause)
                    self._enqueue(learned[0], clause)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_idx += 1
                    conflicts_until_restart = 32 * _luby(restart_idx)
                    self._backtrack(self._assumption_level(assumptions))
                continue

            # place assumptions first
            placed = self._place_assumptions(assumptions)
            if placed == "conflict":
                return UNSAT
            if placed == "decided":
                continue

            lit = self._pick_branch()
            if lit is None:
                return SAT
            self._decide(lit)

    def _assumption_level(self, assumptions: List[int]) -> int:
        return min(len(assumptions), self.decision_level)

    def _place_assumptions(self, assumptions: List[int]):
        for i, a in enumerate(assumptions):
            value = self.value_of(a)
            if value is False:
                return "conflict"
            if value is None:
                self._decide(a)
                return "decided"
        return "done"

    def _order_watches(self, clause: Clause) -> None:
        """Put the asserting literal first and a highest-level literal
        second, as the watched-literal invariant requires."""
        lits = clause.literals
        best = 1
        for k in range(2, len(lits)):
            if self.level[abs(lits[k])] > self.level[abs(lits[best])]:
                best = k
        lits[1], lits[best] = lits[best], lits[1]

    def _pick_branch(self) -> Optional[int]:
        best_v = None
        best_a = -1.0
        for v in range(1, self.num_vars + 1):
            if self.assignment[v] is None and self.activity[v] > best_a:
                best_a = self.activity[v]
                best_v = v
        if best_v is None:
            return None
        return best_v if self.phase[best_v] else -best_v

    # -- model ---------------------------------------------------------------------
    def model_value(self, v: int) -> bool:
        value = self.assignment[v]
        return bool(value)


def _luby(i: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ..."""
    k = 1
    while (1 << (k + 1)) - 1 <= i + 1:
        k += 1
    while (1 << k) - 1 != i + 1:
        i = i - ((1 << (k - 1)) - 1) - 1
        k -= 1
        while (1 << (k + 1)) - 1 <= i + 1:
            k += 1
    return 1 << (k - 1)
