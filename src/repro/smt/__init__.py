"""A from-scratch SMT stack: terms, bit-blasting, CDCL SAT.

Built because the refinement checker needs symbolic reasoning over
bitvectors-with-poison and the environment has no Z3.  The stack is
small but complete for the quantifier-free bitvector fragment the
encoder emits.
"""

from . import terms
from .bitblast import BitBlaster, GateBuilder
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .solver import Solver, SolverSession, check_valid

__all__ = [
    "terms", "BitBlaster", "GateBuilder",
    "SAT", "UNKNOWN", "UNSAT", "SatSolver", "Solver", "SolverSession",
    "check_valid",
]
