"""Solver facade: assert terms, check satisfiability, extract models."""

from __future__ import annotations

from typing import Dict, List, Optional

from .bitblast import BitBlaster
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .terms import BOOL, Term, bv_var


class Solver:
    """One-shot satisfiability checking of a conjunction of terms."""

    def __init__(self, max_conflicts: Optional[int] = 200_000):
        self.sat = SatSolver()
        self.blaster = BitBlaster(self.sat)
        self.assertions: List[Term] = []
        self.max_conflicts = max_conflicts
        self._result: Optional[str] = None

    def add(self, term: Term) -> None:
        assert term.sort == BOOL
        self.assertions.append(term)
        self.blaster.assert_true(term)

    def check(self) -> str:
        self._result = self.sat.solve(max_conflicts=self.max_conflicts)
        return self._result

    # -- model access (valid after a SAT result) ----------------------------------
    def model_bool(self, term: Term) -> bool:
        assert self._result == SAT
        if term.op == "var" and term not in self.blaster._bool_cache:
            return False  # never constrained
        return self.blaster.model_bool(term)

    def model_bv(self, term: Term) -> int:
        assert self._result == SAT
        if term.op == "var" and term not in self.blaster._bv_cache:
            return 0  # never constrained
        return self.blaster.model_bv(term)


def check_valid(term: Term,
                max_conflicts: Optional[int] = 200_000) -> str:
    """Is ``term`` valid (true under every assignment)?  Returns "valid",
    "invalid", or "unknown"."""
    from .terms import not_

    solver = Solver(max_conflicts)
    solver.add(not_(term))
    result = solver.check()
    if result == UNSAT:
        return "valid"
    if result == SAT:
        return "invalid"
    return "unknown"
