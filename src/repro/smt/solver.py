"""Solver facades: one-shot :class:`Solver` and the incremental
:class:`SolverSession` that shares circuits and learned clauses across a
sequence of queries."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..diag import Statistic, span
from .bitblast import BitBlaster
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .terms import BOOL, Term, bv_var

NUM_SESSION_QUERIES = Statistic(
    "smt", "num-session-queries",
    "Queries answered by incremental solver sessions")
NUM_CIRCUITS_REUSED = Statistic(
    "smt", "num-circuits-reused",
    "Bit-blasted circuits reused from the per-term cache across a "
    "session's queries")


class Solver:
    """One-shot satisfiability checking of a conjunction of terms."""

    def __init__(self, max_conflicts: Optional[int] = 200_000):
        self.sat = SatSolver()
        self.blaster = BitBlaster(self.sat)
        self.assertions: List[Term] = []
        self.max_conflicts = max_conflicts
        self._result: Optional[str] = None

    def add(self, term: Term) -> None:
        assert term.sort == BOOL
        self.assertions.append(term)
        self.blaster.assert_true(term)

    def check(self, deadline: Optional[float] = None) -> str:
        self._result = self.sat.solve(max_conflicts=self.max_conflicts,
                                      deadline=deadline)
        return self._result

    # -- model access (valid after a SAT result) ----------------------------------
    def model_bool(self, term: Term) -> bool:
        assert self._result == SAT
        if term.op == "var" and term not in self.blaster._bool_cache:
            return False  # never constrained
        return self.blaster.model_bool(term)

    def model_bv(self, term: Term) -> int:
        assert self._result == SAT
        if term.op == "var" and term not in self.blaster._bv_cache:
            return 0  # never constrained
        return self.blaster.model_bv(term)


class SolverSession:
    """Incremental satisfiability over one persistent solver.

    Shares two artifacts across a sequence of :meth:`check` queries:

    * **circuits** — terms are globally hash-consed
      (:mod:`repro.smt.terms`), and the session's :class:`BitBlaster`
      caches per-Term lowerings, so a subterm that two queries share is
      bit-blasted once;
    * **learned clauses** — each query's formula is asserted behind a
      fresh *activation literal* ``g`` (the clause ``¬g ∨ formula``) and
      solved under the assumption ``g``.  Tseitin definitions and gated
      assertions keep the shared clause database satisfiable, so every
      clause the CDCL solver learns is implied by the definitions alone
      and remains sound for all later queries.

    Soundness caveats encoded here rather than left to callers: the
    trail is rewound to decision level 0 before every query (a SAT
    answer leaves decisions on the trail), models are snapshotted
    before the next rewind, and an UNKNOWN answer (conflict budget)
    poisons nothing — the next query starts clean.
    """

    def __init__(self, max_conflicts: Optional[int] = 200_000):
        self.sat = SatSolver()
        self.blaster = BitBlaster(self.sat)
        self.max_conflicts = max_conflicts
        self.queries = 0
        self._model: Optional[List[Optional[bool]]] = None
        self._result: Optional[str] = None

    def check(self, term: Term,
              deadline: Optional[float] = None) -> str:
        """Satisfiability of ``term`` (alone, not conjoined with prior
        queries), reusing everything learned so far.

        ``deadline`` (absolute :func:`time.monotonic`) bounds this one
        query: past it the solver answers UNKNOWN, which — like a
        conflict-budget UNKNOWN — poisons nothing for later queries."""
        assert term.sort == BOOL
        self.queries += 1
        NUM_SESSION_QUERIES.inc()
        with span("smt-query", cat="smt") as sp:
            self._model = None
            hits_before = self.blaster.cache_hits
            if self.sat.trail_lim:
                self.sat._backtrack(0)
            lit = self.blaster.lower_bool(term)
            reused = self.blaster.cache_hits - hits_before
            NUM_CIRCUITS_REUSED.inc(reused)
            gate = self.sat.new_var()
            if not self.sat.add_clause([-gate, lit]):
                self._result = UNSAT
                sp.set(result=UNSAT, query=self.queries)
                return UNSAT
            result = self.sat.solve(assumptions=[gate],
                                    max_conflicts=self.max_conflicts,
                                    deadline=deadline)
            if result == SAT:
                # Snapshot before the next query rewinds the trail.
                self._model = list(self.sat.assignment)
            self._result = result
            sp.set(result=result, query=self.queries,
                   circuits_reused=reused)
            return result

    # -- model access (valid after a SAT result, until the next check) --
    def model_bool(self, term: Term) -> bool:
        assert self._result == SAT and self._model is not None
        lit = self.blaster._bool_cache.get(term)
        if lit is None:
            return False  # never constrained
        return self._model_lit(lit)

    def model_bv(self, term: Term) -> int:
        assert self._result == SAT and self._model is not None
        bits = self.blaster._bv_cache.get(term)
        if bits is None:
            return 0  # never constrained
        value = 0
        for i, lit in enumerate(bits):
            if self._model_lit(lit):
                value |= 1 << i
        return value

    def _model_lit(self, lit: int) -> bool:
        value = self._model[abs(lit)]
        if value is None:
            value = False  # unconstrained: any value works
        return value if lit > 0 else not value


def check_valid(term: Term,
                max_conflicts: Optional[int] = 200_000) -> str:
    """Is ``term`` valid (true under every assignment)?  Returns "valid",
    "invalid", or "unknown"."""
    from .terms import not_

    solver = Solver(max_conflicts)
    solver.add(not_(term))
    result = solver.check()
    if result == UNSAT:
        return "valid"
    if result == SAT:
        return "invalid"
    return "unknown"
