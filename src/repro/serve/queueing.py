"""Request admission, backpressure, and the refine micro-batcher.

Two pieces of queueing discipline keep the server healthy under load:

* :class:`RequestGate` — a bounded admission counter.  Every request
  holds one slot from admission to its terminal frame; past the
  high-water mark new requests are rejected immediately (HTTP 429 /
  ``queue-full`` error frame) instead of piling up latency.  A drain
  (SIGTERM) flips the gate: in-flight slots finish normally, new
  arrivals get ``draining``.
* :class:`Batcher` — groups small homogeneous work items (refine
  requests sharing one memo context) into campaign-style batches: the
  first item opens a batch, up to ``linger`` seconds of queue time and
  ``max_batch`` items join it, then the whole batch runs as one unit —
  one thread hop, one warm plan cache, one memo flush — and every
  item's waiter is resolved individually as its result lands.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..diag import Statistic, default_metrics

NUM_REJECTED = Statistic(
    "serve", "num-requests-rejected",
    "Requests rejected for backpressure (queue-full or draining)")
NUM_BATCHES = Statistic(
    "serve", "num-batches",
    "Micro-batches the refine batcher dispatched")
NUM_BATCHED = Statistic(
    "serve", "num-batched-functions",
    "Work items that travelled through the refine micro-batcher")


class QueueFull(Exception):
    """The admission queue is past its high-water mark."""


class Draining(Exception):
    """The server is draining; no new work is admitted."""


class RequestGate:
    """Bounded request admission with drain support.

    Not a queue of callables — requests run as asyncio tasks — but the
    *count* of admitted-and-unfinished requests, capped at
    ``high_water``.  ``try_admit``/``release`` bracket each request.
    """

    def __init__(self, high_water: int = 64):
        if high_water < 1:
            raise ValueError("high_water must be >= 1")
        self.high_water = high_water
        self.inflight = 0
        self.admitted_total = 0
        self.draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._depth_gauge = default_metrics().gauge(
            "repro_serve_queue_depth",
            "Admitted-and-unfinished requests (the serve admission "
            "queue depth)")

    def try_admit(self) -> None:
        """Claim one slot or raise :class:`Draining`/:class:`QueueFull`."""
        if self.draining:
            NUM_REJECTED.inc()
            raise Draining("server is draining; request rejected")
        if self.inflight >= self.high_water:
            NUM_REJECTED.inc()
            raise QueueFull(
                f"request queue is at its high-water mark "
                f"({self.high_water} in flight)")
        self.inflight += 1
        self.admitted_total += 1
        self._idle.clear()
        self._depth_gauge.set(self.inflight)

    def release(self) -> None:
        self.inflight -= 1
        self._depth_gauge.set(self.inflight)
        if self.inflight <= 0:
            self._idle.set()

    def start_drain(self) -> None:
        """Reject all future admissions; in-flight requests finish."""
        self.draining = True
        if self.inflight <= 0:
            self._idle.set()

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted request released; True on success."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False


class Batcher:
    """Micro-batches work items keyed by a homogeneity key.

    ``run_batch(key, items)`` is an async callable executing one batch;
    it must resolve each item's future (``item[1]``) — anything left
    unresolved when it returns is failed with its exception, so a buggy
    batch can never hang its waiters.
    """

    def __init__(self,
                 run_batch: Callable[[str, List[Tuple[Any, asyncio.Future]]],
                                     Awaitable[None]],
                 max_batch: int = 16, linger: float = 0.005):
        self.run_batch = run_batch
        self.max_batch = max(1, max_batch)
        self.linger = max(0.0, linger)
        self._lanes: Dict[str, asyncio.Queue] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._closed = False

    async def submit(self, key: str, item: Any) -> Any:
        """Queue ``item`` on lane ``key``; returns its batch result."""
        if self._closed:
            raise Draining("batcher is closed")
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = asyncio.Queue()
            self._tasks[key] = asyncio.ensure_future(self._lane_loop(key))
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        lane.put_nowait((item, future))
        NUM_BATCHED.inc()
        return await future

    async def _lane_loop(self, key: str) -> None:
        lane = self._lanes[key]
        loop = asyncio.get_running_loop()
        while not self._closed:
            first = await lane.get()
            batch = [first]
            deadline = loop.time() + self.linger
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    if lane.empty():
                        break
                    batch.append(lane.get_nowait())
                    continue
                try:
                    batch.append(await asyncio.wait_for(lane.get(),
                                                        remaining))
                except asyncio.TimeoutError:
                    break
            NUM_BATCHES.inc()
            try:
                await self.run_batch(key, batch)
            except Exception as e:  # noqa: BLE001 — resolve, never hang
                for _, future in batch:
                    if not future.done():
                        future.set_exception(e)
            else:
                for _, future in batch:
                    if not future.done():
                        future.set_exception(
                            RuntimeError("batch runner dropped an item"))

    async def aclose(self) -> None:
        self._closed = True
        for task in self._tasks.values():
            task.cancel()
        for task in self._tasks.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
        self._lanes.clear()
