"""Asyncio adapter over the campaign engine's process-per-shard pool.

:class:`AsyncShardPool` lets the event loop submit shards to a
:class:`~repro.campaign.ShardExecutor` (child processes, crash/timeout
accounting included) and await their records as futures, while a single
daemon poller thread reaps completions.  A worker that segfaults or
overruns its timeout is handled by the executor's
:class:`~repro.campaign.supervisor.WorkerSupervisor` — restarted with
backoff, or (past the restart budget) resolved as an ``errored``
record — never an exception, never a hang — which is what lets the
server turn a mid-request worker crash into either a transparently
retried shard or a structured error response.

Jobs may carry an absolute monotonic **deadline** (the serve layer's
request deadline): the executor kills and fails any worker that
outlives it, so a hung shard can never outlive the request that
spawned it.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Dict, Optional

from ..campaign.executor import ShardExecutor
from ..campaign.sharding import Shard
from ..campaign.spec import CampaignSpec
from ..campaign.supervisor import SupervisorPolicy, WorkerSupervisor
from ..diag import Statistic

NUM_POLLER_LEAKS = Statistic(
    "serve", "num-poller-leaks",
    "Shard-pool poller threads that outlived their escalated join "
    "timeout at close()")

logger = logging.getLogger("repro.serve.pool")

#: close() join budget: first a polite join, then an escalated one.
_JOIN_TIMEOUT = 2.0
_JOIN_ESCALATED = 10.0


class AsyncShardPool:
    """Futures over a shared :class:`ShardExecutor`."""

    def __init__(self, workers: int = 2,
                 shard_timeout: Optional[float] = None,
                 poll_interval: float = 0.02,
                 supervisor_policy: Optional[SupervisorPolicy] = None):
        self.executor = ShardExecutor(
            workers=workers, shard_timeout=shard_timeout,
            supervisor=WorkerSupervisor(supervisor_policy))
        self.poll_interval = poll_interval
        self._pending: Dict[int, tuple] = {}  # job_id -> (loop, future)
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = False
        self._thread: Optional[threading.Thread] = None

    @property
    def supervisor(self) -> WorkerSupervisor:
        return self.executor.supervisor

    # -- lifecycle ---------------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._poll_loop, name="shard-pool-poller",
                daemon=True)
            self._thread.start()

    def close(self) -> None:
        self._stop = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=_JOIN_TIMEOUT)
            if self._thread.is_alive():
                # The poller is stuck (most likely inside a pipe poll on
                # a wedged worker).  Don't abandon it silently: say so,
                # count it, and escalate the join once before falling
                # back to the daemon-thread backstop.
                logger.warning(
                    "shard-pool poller did not stop within %.1fs; "
                    "escalating join to %.1fs", _JOIN_TIMEOUT,
                    _JOIN_ESCALATED)
                self._thread.join(timeout=_JOIN_ESCALATED)
                if self._thread.is_alive():
                    NUM_POLLER_LEAKS.inc()
                    logger.error(
                        "shard-pool poller leaked: still alive after "
                        "%.1fs; leaving the daemon thread behind",
                        _JOIN_TIMEOUT + _JOIN_ESCALATED)
        with self._lock:
            self.executor.shutdown(kill=True)
            pending, self._pending = dict(self._pending), {}
        for loop, future in pending.values():
            loop.call_soon_threadsafe(
                _resolve_cancelled, future)

    # -- submission --------------------------------------------------------
    def submit(self, spec: CampaignSpec, shard: Shard,
               known_hashes=None,
               deadline: Optional[float] = None) -> "asyncio.Future":
        """Submit one shard; returns a future resolving to its record.

        ``deadline`` (absolute ``time.monotonic``) propagates to the
        executor: the job is killed and errored when it expires."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        with self._lock:
            job_id = self.executor.submit(spec, shard, known_hashes,
                                          deadline=deadline)
            self._pending[job_id] = (loop, future)
        self._ensure_thread()
        self._wake.set()
        return future

    @property
    def busy(self) -> int:
        with self._lock:
            return self.executor.inflight + self.executor.queued

    # -- the poller thread -------------------------------------------------
    def _poll_loop(self) -> None:
        while not self._stop:
            with self._lock:
                idle = self.executor.idle
            if idle:
                self._wake.wait(timeout=0.2)
                self._wake.clear()
                continue
            with self._lock:
                done = self.executor.poll(self.poll_interval)
            for job_id, _shard, record in done:
                with self._lock:
                    entry = self._pending.pop(job_id, None)
                if entry is None:
                    continue
                loop, future = entry
                loop.call_soon_threadsafe(_resolve_record, future, record)


def _resolve_record(future: "asyncio.Future", record: dict) -> None:
    if not future.done():
        future.set_result(record)


def _resolve_cancelled(future: "asyncio.Future") -> None:
    if not future.done():
        future.cancel()
