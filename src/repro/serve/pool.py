"""Asyncio adapter over the campaign engine's process-per-shard pool.

:class:`AsyncShardPool` lets the event loop submit shards to a
:class:`~repro.campaign.ShardExecutor` (child processes, crash/timeout
accounting included) and await their records as futures, while a single
daemon poller thread reaps completions.  A worker that segfaults or
overruns its timeout resolves its future with an ``errored`` record —
never an exception, never a hang — which is what lets the server turn a
mid-request worker crash into a structured error response.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from ..campaign.executor import ShardExecutor
from ..campaign.sharding import Shard
from ..campaign.spec import CampaignSpec


class AsyncShardPool:
    """Futures over a shared :class:`ShardExecutor`."""

    def __init__(self, workers: int = 2,
                 shard_timeout: Optional[float] = None,
                 poll_interval: float = 0.02):
        self.executor = ShardExecutor(workers=workers,
                                      shard_timeout=shard_timeout)
        self.poll_interval = poll_interval
        self._pending: Dict[int, tuple] = {}  # job_id -> (loop, future)
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._poll_loop, name="shard-pool-poller",
                daemon=True)
            self._thread.start()

    def close(self) -> None:
        self._stop = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        with self._lock:
            self.executor.shutdown(kill=True)
            pending, self._pending = dict(self._pending), {}
        for loop, future in pending.values():
            loop.call_soon_threadsafe(
                _resolve_cancelled, future)

    # -- submission --------------------------------------------------------
    def submit(self, spec: CampaignSpec, shard: Shard,
               known_hashes=None) -> "asyncio.Future":
        """Submit one shard; returns a future resolving to its record."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        with self._lock:
            job_id = self.executor.submit(spec, shard, known_hashes)
            self._pending[job_id] = (loop, future)
        self._ensure_thread()
        self._wake.set()
        return future

    @property
    def busy(self) -> int:
        with self._lock:
            return self.executor.inflight + self.executor.queued

    # -- the poller thread -------------------------------------------------
    def _poll_loop(self) -> None:
        while not self._stop:
            with self._lock:
                idle = self.executor.idle
            if idle:
                self._wake.wait(timeout=0.2)
                self._wake.clear()
                continue
            with self._lock:
                done = self.executor.poll(self.poll_interval)
            for job_id, _shard, record in done:
                with self._lock:
                    entry = self._pending.pop(job_id, None)
                if entry is None:
                    continue
                loop, future = entry
                loop.call_soon_threadsafe(_resolve_record, future, record)


def _resolve_record(future: "asyncio.Future", record: dict) -> None:
    if not future.done():
        future.set_result(record)


def _resolve_cancelled(future: "asyncio.Future") -> None:
    if not future.done():
        future.cancel()
