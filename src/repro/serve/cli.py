"""``python -m repro serve`` / ``python -m repro client``.

The serve side runs one :class:`~repro.serve.server.ValidationServer`
until SIGTERM/SIGINT, then drains gracefully.  The client side is a
thin shell over :class:`~repro.serve.client.ServeClient`: chunks print
as NDJSON lines while they stream, the terminal payload prints as
indented JSON, and wire error codes map to distinct exit codes so
scripts can tell backpressure from failure::

    python -m repro serve --port 8371 --workers 4 --memo-dir /tmp/memo
    python -m repro client --port 8371 lint -i fn.ll --sarif
    python -m repro client --port 8371 refine fn1.ll fn2.ll --pipeline o2
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from .client import ServeClient, ServeError
from .protocol import OPS
from .server import ValidationServer
from .service import ServiceConfig

#: wire error code -> client exit code (0 done, 1 transport trouble).
EXIT_CODES = {"queue-full": 75, "draining": 75, "timeout": 74,
              "crashed": 70, "parse-error": 65, "bad-request": 64,
              "bad-payload": 64, "unknown-op": 64, "bad-frame": 76,
              "internal": 70}


def _positive_float(text: str) -> float:
    """argparse type for timeout flags: a finite, positive float."""
    from .deadline import validate_timeout

    try:
        return validate_timeout(float(text), name="value")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number of seconds, got {text!r}")


# -- python -m repro serve ---------------------------------------------------
def _serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the validation service (HTTP + NDJSON on one "
                    "port).")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8371,
                   help="port to bind (0 picks a free one)")
    p.add_argument("--workers", type=int, default=2,
                   help="campaign worker processes")
    p.add_argument("--high-water", type=int, default=64,
                   help="in-flight requests before 429/queue-full")
    p.add_argument("--check-threads", type=int, default=2,
                   help="concurrent in-process check threads")
    p.add_argument("--batch-max", type=int, default=16,
                   help="refine micro-batch size cap")
    p.add_argument("--batch-linger", type=float, default=0.005,
                   help="seconds a refine batch waits for company")
    p.add_argument("--request-timeout", type=_positive_float,
                   default=120.0,
                   help="default per-request deadline (seconds)")
    p.add_argument("--shard-timeout", type=_positive_float, default=None,
                   help="per-campaign-shard deadline (seconds)")
    p.add_argument("--memo-dir", default=None,
                   help="shared on-disk verdict store directory")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for in-flight work on SIGTERM")
    return p


async def _serve(args) -> int:
    config = ServiceConfig(
        workers=args.workers, high_water=args.high_water,
        batch_max=args.batch_max, batch_linger=args.batch_linger,
        request_timeout=args.request_timeout,
        shard_timeout=args.shard_timeout, memo_dir=args.memo_dir,
        check_threads=args.check_threads)
    server = ValidationServer(host=args.host, port=args.port,
                              config=config)
    host, port = await server.start()
    server.install_signal_handlers()
    print(f"repro serve: listening on {host}:{port} "
          f"({args.workers} workers, high-water {args.high_water})",
          flush=True)
    await server.serve_until_drained(drain_timeout=args.drain_timeout)
    print("repro serve: drained, bye", flush=True)
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 130


# -- python -m repro client --------------------------------------------------
def _client_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro client",
        description="Talk to a running validation service.")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8371)
    p.add_argument("--timeout", type=_positive_float, default=300.0,
                   help="socket timeout (seconds)")
    p.add_argument("op", choices=sorted(OPS))
    p.add_argument("inputs", nargs="*",
                   help="IR files (source for parse/optimize/lint; one "
                        "function per file for refine)")
    p.add_argument("-i", "--input", action="append", default=[],
                   dest="extra_inputs", help=argparse.SUPPRESS)
    p.add_argument("--target", default=None,
                   help="refine: check source against this IR file "
                        "directly (pair mode)")
    p.add_argument("--method", default=None,
                   choices=("exhaustive", "symbolic"),
                   help="refine pair mode: checker backend")
    p.add_argument("--pipeline", default=None)
    p.add_argument("--opt-config", default=None,
                   choices=("fixed", "legacy"))
    p.add_argument("--policy", default=None,
                   choices=("none", "strict", "recover", "quarantine"))
    p.add_argument("--rules", default=None,
                   help="lint: comma-separated rule names")
    p.add_argument("--sarif", action="store_true",
                   help="lint: include a SARIF document in the result")
    p.add_argument("--spec-json", default=None,
                   help="campaign: file (or '-') holding the spec JSON")
    p.add_argument("--payload", default=None,
                   help="extra payload fields as inline JSON")
    p.add_argument("--request-timeout", type=_positive_float,
                   default=None,
                   help="server-side deadline for this request")
    p.add_argument("--retries", type=int, default=0,
                   help="retry transport failures/backpressure up to N "
                        "times (jittered backoff, idempotency keys)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress streamed chunks; print only the "
                        "terminal payload")
    return p


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as fh:
        return fh.read()


def _build_payload(args) -> dict:
    payload: dict = {}
    inputs = list(args.inputs) + list(args.extra_inputs)
    sources = [_read(path) for path in inputs]
    if args.op == "refine" and args.target is None:
        if sources:
            payload["functions"] = sources
    elif sources:
        payload["source"] = sources[0]
    if args.op == "refine" and args.target is not None:
        if sources:
            payload["source"] = sources[0]
        payload["target"] = _read(args.target)
        if args.method:
            payload["method"] = args.method
    if args.op == "campaign" and args.spec_json:
        payload["spec"] = json.loads(_read(args.spec_json))
    for key in ("pipeline", "opt_config", "policy"):
        value = getattr(args, key)
        if value is not None:
            payload[key] = value
    if args.rules:
        payload["rules"] = [r.strip() for r in args.rules.split(",")
                            if r.strip()]
    if args.sarif:
        payload["sarif"] = True
    if args.request_timeout is not None:
        payload["timeout"] = args.request_timeout
    if args.payload:
        extra = json.loads(args.payload)
        if not isinstance(extra, dict):
            raise ValueError("--payload must be a JSON object")
        payload.update(extra)
    return payload


def client_main(argv: Optional[List[str]] = None) -> int:
    args = _client_parser().parse_args(argv)
    try:
        payload = _build_payload(args)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if args.retries > 0:
        from .retry import RetryingClient, RetryPolicy

        client = RetryingClient(
            host=args.host, port=args.port, timeout=args.timeout,
            policy=RetryPolicy(max_attempts=args.retries + 1))
    else:
        client = ServeClient(host=args.host, port=args.port,
                             timeout=args.timeout)
    try:
        with client:
            def show(data):
                if not args.quiet:
                    print(json.dumps(data, ensure_ascii=True))

            done = client.request(args.op, payload, on_chunk=show)
            print(json.dumps(done, indent=2, ensure_ascii=True,
                             sort_keys=True))
            return 0
    except ServeError as e:
        print(f"error [{e.code}]: {e}", file=sys.stderr)
        return EXIT_CODES.get(e.code, 1)
    except OSError as e:
        print(f"error: cannot reach {args.host}:{args.port}: {e}",
              file=sys.stderr)
        return 1
