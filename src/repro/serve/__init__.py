"""Validation-as-a-service: a long-running front-end over the campaign
executor.

Every other entry point in this repository is a batch CLI — one
invocation, cold caches, one workload.  This package turns the same
machinery into a persistent service:

* :mod:`repro.serve.protocol` — newline-delimited-JSON framing shared
  by the socket protocol and the HTTP streaming responses;
* :mod:`repro.serve.queueing` — bounded request admission with
  backpressure (429 / ``queue-full`` past the high-water mark) and the
  micro-batcher that groups small refine requests into campaign-style
  shards;
* :mod:`repro.serve.pool` — the asyncio adapter over the campaign
  engine's process-per-shard :class:`~repro.campaign.ShardExecutor`;
* :mod:`repro.serve.service` — the transport-independent core: request
  handlers, the warm shared caches (:class:`~repro.perf.RefinementMemo`
  disk layer as the persistent verdict store, per-config plan caches,
  a shared SMT :class:`~repro.smt.solver.SolverSession`), per-request
  timeouts, and the serve-side observability surface;
* :mod:`repro.serve.server` — one asyncio listener speaking both
  protocols (per-connection sniffing: an HTTP verb or a JSON frame),
  with ``/metrics`` (Prometheus text), ``/healthz``, streamed NDJSON
  results, and graceful SIGTERM drain;
* :mod:`repro.serve.client` — the blocking client library behind
  ``python -m repro client`` and the E13 load-test harness.
"""

from .client import ServeClient, ServeError
from .deadline import Deadline, validate_timeout
from .pool import AsyncShardPool
from .protocol import (
    OPS,
    ProtocolError,
    chunk_frame,
    decode_frame,
    done_frame,
    encode_frame,
    error_frame,
    request_frame,
    validate_request,
)
from .queueing import Batcher, Draining, QueueFull, RequestGate
from .retry import (
    CircuitBreaker,
    RetryingClient,
    RetryPolicy,
    breaker_for,
    reset_breakers,
)
from .server import ValidationServer
from .service import ServiceConfig, ValidationService
from .cli import client_main, serve_main

__all__ = [
    "AsyncShardPool", "Batcher", "CircuitBreaker", "Deadline",
    "Draining", "OPS", "ProtocolError",
    "QueueFull", "RequestGate", "RetryPolicy", "RetryingClient",
    "ServeClient", "ServeError",
    "ServiceConfig", "ValidationServer", "ValidationService",
    "breaker_for", "chunk_frame", "client_main", "decode_frame",
    "done_frame", "encode_frame", "error_frame", "request_frame",
    "reset_breakers", "serve_main", "validate_timeout",
    "validate_request",
]
