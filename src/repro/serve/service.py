"""The transport-independent core of the validation service.

:class:`ValidationService` owns everything that outlives a single
request:

* the **warm verdict store** — one :class:`~repro.perf.RefinementMemo`
  per memo context, backed by a shared on-disk JSONL layer
  (``memo_dir``).  Refine requests consult and populate it directly;
  campaign requests run in worker processes whose specs point at the
  same directory, and :meth:`RefinementMemo.refresh` adopts their
  appended entries incrementally — so a verdict computed for any client
  is a cache hit for every later client, across connections and
  process boundaries.  (Per-function plan caches stay scoped to one
  check by construction: execution plans are keyed by ``Function``
  identity and the pipeline under test mutates the functions, so there
  is nothing sound to share across requests.)
* the **shared SMT session pool** — :class:`~repro.smt.solver.SolverSession`
  objects whose hash-consed circuits and learned clauses accumulate
  across symbolic refine requests;
* the **process pool** — an :class:`~repro.serve.pool.AsyncShardPool`
  over the campaign engine's shard executor, for campaign requests;
* the **queueing discipline** — a :class:`~repro.serve.queueing.RequestGate`
  for admission/backpressure and a
  :class:`~repro.serve.queueing.Batcher` that groups small refine
  requests sharing a memo context into campaign-style batches.

Requests come in through :meth:`run_request`, which brackets the
handler with admission, a serve-layer span, the request-latency
histogram, and a per-request timeout (``payload["timeout"]`` or the
service default).  Handlers stream incremental results by awaiting the
``emit`` callback; their return value is the terminal ``done`` payload.
Failures surface as :class:`ServiceError` with a wire error code —
transports map those to error frames / HTTP statuses, never to a
dropped connection.

Verdict parity: refine requests travel through
:func:`repro.campaign.worker.check_source` — the exact per-function
path a campaign shard runs — so the service's verdict for a source is
byte-for-byte the batch CLI's verdict for the same source and budgets.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Awaitable, Callable, Dict, List, Optional

from ..campaign.executor import CampaignRunner
from ..campaign.sharding import plan_shards
from ..campaign.spec import CampaignSpec
from ..campaign.worker import check_source
from ..diag import (
    Statistic,
    default_metrics,
    metrics_snapshot,
    render_prometheus,
    span,
    stats_snapshot,
)
from ..ir import ParseError, parse_module, print_module, verify_module
from ..ir.verifier import VerificationError
from ..lint import lint_module, render_sarif
from ..lint.diagnostics import severity_rank
from ..perf import RefinementMemo
from ..refine import CheckOptions, check_refinement
from ..refine.symbolic import check_refinement_symbolic
from ..smt.solver import SolverSession
from .deadline import Deadline, deadline_at, validate_timeout
from .pool import AsyncShardPool
from .queueing import Batcher, Draining, QueueFull, RequestGate

NUM_REQUESTS = Statistic(
    "serve", "num-requests", "Requests admitted by the validation service")
NUM_COMPLETED = Statistic(
    "serve", "num-requests-completed",
    "Requests that reached a done frame")
NUM_ERRORS = Statistic(
    "serve", "num-request-errors",
    "Requests that ended in an error frame (any code)")
NUM_TIMEOUTS = Statistic(
    "serve", "num-request-timeouts",
    "Requests that hit their per-request deadline")
NUM_CHUNKS = Statistic(
    "serve", "num-stream-chunks",
    "Incremental result chunks streamed to clients")
NUM_CAMPAIGN_SHARDS = Statistic(
    "serve", "num-campaign-shards",
    "Campaign shards executed on behalf of service requests")
NUM_MEMO_SERVED = Statistic(
    "serve", "num-refines-memo-served",
    "Refine requests answered from the warm cross-request verdict store")
NUM_IDEMPOTENT_REPLAYS = Statistic(
    "serve", "num-idempotent-replays",
    "Requests answered from the idempotency replay cache (a retry of "
    "work already completed)")

#: liveness/observability ops that must answer even when the admission
#: queue is saturated or the server is draining.
UNGATED_OPS = frozenset({"ping", "health", "metrics", "stats"})

_SPEC_FIELDS = frozenset(f.name for f in dataclass_fields(CampaignSpec))


class ServiceError(Exception):
    """A request failure with a wire error code (see protocol.ERROR_CODES)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class ServiceConfig:
    """Tunables of one :class:`ValidationService` instance."""

    #: worker processes for campaign shards.
    workers: int = 2
    #: admission high-water mark (requests in flight before 429).
    high_water: int = 64
    #: refine micro-batcher: max items per batch / seconds of linger.
    batch_max: int = 16
    batch_linger: float = 0.005
    #: default per-request deadline (seconds); a request payload may
    #: lower-or-raise it with ``"timeout"``.
    request_timeout: float = 120.0
    #: per-shard deadline for campaign requests; None = none.
    shard_timeout: Optional[float] = None
    #: directory of the shared on-disk verdict store; None = warm
    #: in-memory caches only (still shared across requests, not runs).
    memo_dir: Optional[str] = None
    #: concurrent in-process check threads (refine/lint/optimize).
    check_threads: int = 2
    #: completed ``done`` payloads remembered per ``idempotency_key``
    #: (LRU); a client retry whose first attempt actually finished is
    #: answered from here instead of re-running the work.  Safe because
    #: verdicts are deterministic.  0 disables.
    idempotency_cache: int = 256


class ValidationService:
    """Request handlers plus every cache that outlives a request."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.gate = RequestGate(high_water=self.config.high_water)
        self.batcher = Batcher(self._run_refine_batch,
                               max_batch=self.config.batch_max,
                               linger=self.config.batch_linger)
        self.pool = AsyncShardPool(workers=self.config.workers,
                                   shard_timeout=self.config.shard_timeout)
        self.started = time.monotonic()
        #: memo context -> warm RefinementMemo (shared disk layer).
        self._memos: Dict[str, RefinementMemo] = {}
        self._memos_lock = threading.Lock()
        #: idle SolverSessions; circuits/learned clauses accumulate.
        self._sessions: List[SolverSession] = []
        self._sessions_lock = threading.Lock()
        self._check_slots = asyncio.Semaphore(
            max(1, self.config.check_threads))
        #: (op, idempotency_key) -> completed done payload, LRU order.
        self._idempotency: "OrderedDict[tuple, Dict[str, Any]]" = \
            OrderedDict()
        metrics = default_metrics()
        self._latency = metrics.histogram(
            "repro_serve_request_seconds",
            "Wall-clock seconds per service request, admission to "
            "terminal frame")
        self._inflight_gauge = metrics.gauge(
            "repro_serve_inflight",
            "Requests currently executing a handler")
        self._handlers: Dict[str, Callable] = {
            "ping": self._op_ping,
            "health": self._op_ping,
            "metrics": self._op_metrics,
            "stats": self._op_stats,
            "parse": self._op_parse,
            "optimize": self._op_optimize,
            "lint": self._op_lint,
            "refine": self._op_refine,
            "campaign": self._op_campaign,
        }

    # -- lifecycle ---------------------------------------------------------
    def start_drain(self) -> None:
        self.gate.start_drain()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight requests; True if idle."""
        self.gate.start_drain()
        return await self.gate.wait_idle(timeout)

    async def aclose(self) -> None:
        await self.batcher.aclose()
        self.pool.close()
        for memo in list(self._memos.values()):
            memo.flush()

    # -- the request wrapper ------------------------------------------------
    async def run_request(self, op: str, payload: Dict[str, Any],
                          emit: Callable[[Dict[str, Any]], Awaitable[None]]
                          ) -> Dict[str, Any]:
        """Run one request end to end; returns the ``done`` payload.

        Raises :class:`ServiceError` for every failure mode — admission
        rejections, bad payloads, parse errors, deadlines, crashes —
        so transports can always answer with a structured error frame.
        """
        handler = self._handlers.get(op)
        if handler is None:
            raise ServiceError("unknown-op", f"unknown op {op!r}")
        if op in UNGATED_OPS:
            return await handler(payload, emit)
        idem_key = payload.get("idempotency_key")
        if not isinstance(idem_key, str):
            idem_key = None
        if idem_key is not None:
            # A retry of work that already completed: replay the
            # terminal payload (chunks are not replayed — verdicts are
            # deterministic, so the done payload is the whole answer).
            # Checked before admission, so replays cost no queue slot.
            replay = self._idempotency.get((op, idem_key))
            if replay is not None:
                self._idempotency.move_to_end((op, idem_key))
                NUM_IDEMPOTENT_REPLAYS.inc()
                return replay
        try:
            timeout = validate_timeout(
                payload.get("timeout", self.config.request_timeout),
                name='payload field "timeout"')
        except ValueError as e:
            NUM_ERRORS.inc()
            raise ServiceError("bad-payload", str(e))
        try:
            self.gate.try_admit()
        except Draining as e:
            raise ServiceError("draining", str(e))
        except QueueFull as e:
            raise ServiceError("queue-full", str(e))
        NUM_REQUESTS.inc()
        # The request's entire time budget, fixed here and inherited by
        # every layer below (shard pool, checker fuel, solver loops).
        deadline = Deadline.after(timeout)
        started = time.perf_counter()
        self._inflight_gauge.inc(1)
        try:
            with span("serve-request", cat="serve") as sp:
                sp.set(op=op)
                try:
                    result = await asyncio.wait_for(
                        self._call(handler, payload,
                                   self._counted(emit), deadline),
                        timeout=timeout)
                except asyncio.TimeoutError:
                    NUM_TIMEOUTS.inc()
                    raise ServiceError(
                        "timeout",
                        f"request exceeded its {timeout}s deadline")
            NUM_COMPLETED.inc()
            if idem_key is not None and self.config.idempotency_cache > 0:
                self._idempotency[(op, idem_key)] = result
                self._idempotency.move_to_end((op, idem_key))
                while (len(self._idempotency)
                       > self.config.idempotency_cache):
                    self._idempotency.popitem(last=False)
            return result
        except ServiceError:
            NUM_ERRORS.inc()
            raise
        except (ParseError, VerificationError) as e:
            NUM_ERRORS.inc()
            raise ServiceError("parse-error", str(e))
        except (ValueError, KeyError, TypeError) as e:
            NUM_ERRORS.inc()
            raise ServiceError("bad-request", str(e))
        except Exception as e:  # noqa: BLE001 — structured, never dropped
            NUM_ERRORS.inc()
            raise ServiceError("internal", f"{type(e).__name__}: {e}")
        finally:
            self._inflight_gauge.inc(-1)
            self._latency.observe(time.perf_counter() - started)
            self.gate.release()

    @staticmethod
    def _call(handler, payload, emit, deadline):
        """Invoke a handler, forwarding the deadline only when it is
        declared — externally-injected handlers with the older
        ``(payload, emit)`` shape keep working."""
        try:
            params = inspect.signature(handler).parameters
        except (TypeError, ValueError):
            params = {}
        if "deadline" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values()):
            return handler(payload, emit, deadline=deadline)
        return handler(payload, emit)

    @staticmethod
    def _counted(emit):
        async def counted(chunk: Dict[str, Any]) -> None:
            NUM_CHUNKS.inc()
            await emit(chunk)

        return counted

    # -- shared-cache plumbing ----------------------------------------------
    def memo_for(self, spec: CampaignSpec) -> Optional[RefinementMemo]:
        if not spec.memo_enabled():
            return None
        context = spec.memo_context()
        with self._memos_lock:
            memo = self._memos.get(context)
            if memo is None:
                memo = RefinementMemo(context,
                                      disk_dir=self.config.memo_dir)
                self._memos[context] = memo
        return memo

    def _session(self) -> SolverSession:
        with self._sessions_lock:
            if self._sessions:
                return self._sessions.pop()
        return SolverSession()

    def _release_session(self, session: SolverSession) -> None:
        with self._sessions_lock:
            self._sessions.append(session)

    @staticmethod
    def _spec_from(payload: Dict[str, Any],
                   defaults: Optional[Dict[str, Any]] = None) -> CampaignSpec:
        data = dict(defaults or {})
        spec_in = payload.get("spec", payload)
        if not isinstance(spec_in, dict):
            raise ServiceError("bad-request", "spec must be a JSON object")
        unknown = set(spec_in) - _SPEC_FIELDS
        if "spec" in payload and unknown:
            raise ServiceError(
                "bad-request",
                f"unknown spec fields: {', '.join(sorted(unknown))}")
        data.update({k: v for k, v in spec_in.items() if k in _SPEC_FIELDS})
        if "opcodes" in data and data["opcodes"] is not None:
            data["opcodes"] = tuple(data["opcodes"])
        try:
            return CampaignSpec(**data)
        except (ValueError, TypeError) as e:
            raise ServiceError("bad-request", f"bad spec: {e}")

    # -- ungated ops --------------------------------------------------------
    async def _op_ping(self, payload, emit,
                       deadline: Optional[Deadline] = None
                       ) -> Dict[str, Any]:
        with self._memos_lock:
            warm = sum(len(m) for m in self._memos.values())
        return {
            "status": "draining" if self.gate.draining else "ok",
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "inflight": self.gate.inflight,
            "high_water": self.gate.high_water,
            "requests_total": self.gate.admitted_total,
            "warm_verdicts": warm,
            "workers": self.config.workers,
            "supervisor": self.pool.supervisor.report(),
        }

    async def _op_metrics(self, payload, emit,
                          deadline: Optional[Deadline] = None
                          ) -> Dict[str, Any]:
        snapshot = metrics_snapshot()
        return {
            "prometheus": render_prometheus(snapshot),
            "snapshot": snapshot,
        }

    async def _op_stats(self, payload, emit,
                        deadline: Optional[Deadline] = None
                        ) -> Dict[str, Any]:
        return {"stats": stats_snapshot(nonzero_only=True)}

    # -- in-process ops (parse / optimize / lint) ---------------------------
    async def _op_parse(self, payload, emit,
                        deadline: Optional[Deadline] = None
                        ) -> Dict[str, Any]:
        source = _require_source(payload)

        def work():
            module = parse_module(source)
            verify_module(module)
            return {
                "functions": [fn.name for fn in module.definitions()],
                "ir": print_module(module),
            }

        async with self._check_slots:
            return await asyncio.to_thread(work)

    async def _op_optimize(self, payload, emit,
                           deadline: Optional[Deadline] = None
                           ) -> Dict[str, Any]:
        source = _require_source(payload)
        spec = self._spec_from(payload, defaults={
            "pipeline": payload.get("pipeline", "o2"),
            "opt_config": payload.get("opt_config", "fixed"),
            "policy": payload.get("policy", "recover"),
            "verify_each": bool(payload.get("verify_each", False)),
        })

        def work():
            from ..opt.resilience.guard import GuardedPassError

            module = parse_module(source)
            pm = spec.make_pipeline()
            try:
                pm.run(module)
                verify_module(module)
            except GuardedPassError as e:
                raise ServiceError("crashed", f"pipeline crash: {e}")
            result = {"ir": print_module(module),
                      "pipeline": spec.pipeline,
                      "opt_config": spec.opt_config}
            failures = getattr(pm, "failures", None)
            if failures is not None:
                result["recoveries"] = len(failures)
                result["quarantined"] = sorted(
                    getattr(pm, "quarantined", ()))
            return result

        async with self._check_slots:
            return await asyncio.to_thread(work)

    async def _op_lint(self, payload, emit,
                       deadline: Optional[Deadline] = None
                       ) -> Dict[str, Any]:
        source = _require_source(payload)
        rules = payload.get("rules")
        want_sarif = bool(payload.get("sarif", False))
        file_name = payload.get("file", "<request>")

        def work():
            module = parse_module(source)
            return lint_module(module, rules=rules, file=file_name)

        async with self._check_slots:
            diags = await asyncio.to_thread(work)
        for diag in diags:
            await emit({"finding": diag.as_dict()})
        worst = ""
        if diags:
            worst = max((d.severity for d in diags), key=severity_rank)
        result: Dict[str, Any] = {"findings": len(diags), "worst": worst}
        if want_sarif:
            result["sarif"] = render_sarif(diags)
        return result

    # -- refine -------------------------------------------------------------
    async def _op_refine(self, payload, emit,
                         deadline: Optional[Deadline] = None
                         ) -> Dict[str, Any]:
        if "target" in payload:
            return await self._refine_pair(payload, deadline)
        sources = payload.get("functions")
        if sources is None:
            sources = [_require_source(payload)]
        if not isinstance(sources, list) or not sources or not all(
                isinstance(s, str) for s in sources):
            raise ServiceError("bad-request",
                               "functions must be a non-empty list of "
                               "IR source strings")
        spec = self._spec_from(payload, defaults={
            "pipeline": payload.get("pipeline", "o2"),
            "opt_config": payload.get("opt_config", "fixed"),
            "policy": payload.get("policy", "recover"),
        })
        lane = spec.memo_context()
        futures = [
            asyncio.ensure_future(
                self.batcher.submit(lane, (spec, src, deadline)))
            for src in sources
        ]
        counts: Dict[str, int] = {}
        verdicts: Dict[str, str] = {}
        served_warm = 0
        try:
            for index, future in enumerate(futures):
                outcome = await future
                item = _refine_chunk(index, outcome)
                if item["cached"]:
                    served_warm += 1
                verdict = item["verdict"]
                counts[verdict] = counts.get(verdict, 0) + 1
                verdicts.setdefault(item["hash"], verdict)
                await emit(item)
        finally:
            for future in futures:
                future.cancel()
        NUM_MEMO_SERVED.inc(served_warm)
        return {
            "checked": len(sources),
            "verdicts": counts,
            "verdict_lines": [f"{h} {v}"
                              for h, v in sorted(verdicts.items())],
            "cached": served_warm,
        }

    async def _run_refine_batch(self, lane: str, batch) -> None:
        """One micro-batch: a thread hop, a memo refresh, N checks."""

        def work():
            spec = batch[0][0][0]
            memo = self.memo_for(spec)
            if memo is not None:
                memo.refresh()
            outcomes = []
            for (item_spec, source, item_deadline), _future in batch:
                if item_deadline is not None and item_deadline.expired:
                    # The request is already being answered with a
                    # timeout error; don't burn a check slot on it.
                    outcomes.append(ServiceError(
                        "timeout", "request deadline expired before "
                                   "its refine batch ran"))
                    continue
                options = item_spec.check_options()
                options.deadline = deadline_at(item_deadline)
                try:
                    outcomes.append(check_source(
                        item_spec, source, memo=memo,
                        options=options,
                        semantics=item_spec.semantics()))
                except (ParseError, VerificationError) as e:
                    outcomes.append(ServiceError("parse-error", str(e)))
            if memo is not None:
                memo.flush()
            return outcomes

        async with self._check_slots:
            outcomes = await asyncio.to_thread(work)
        for (_item, future), outcome in zip(batch, outcomes):
            if future.done():
                continue
            if isinstance(outcome, ServiceError):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)

    async def _refine_pair(self, payload,
                           deadline: Optional[Deadline] = None
                           ) -> Dict[str, Any]:
        from ..ir import parse_function

        src_text = _require_source(payload)
        tgt_text = payload.get("target")
        if not isinstance(tgt_text, str):
            raise ServiceError("bad-request", "target must be IR source")
        method = payload.get("method", "exhaustive")
        if method not in ("exhaustive", "symbolic"):
            raise ServiceError("bad-request",
                               f"unknown refine method {method!r}")
        spec = self._spec_from(payload, defaults={
            "opt_config": payload.get("opt_config", "fixed"),
        })

        def work():
            src = parse_function(src_text)
            tgt = parse_function(tgt_text)
            if method == "symbolic":
                session = self._session()
                try:
                    result = check_refinement_symbolic(
                        src, tgt, session=session,
                        deadline=deadline_at(deadline))
                finally:
                    self._release_session(session)
            else:
                options = spec.check_options()
                options.deadline = deadline_at(deadline)
                result = check_refinement(src, tgt, spec.semantics(),
                                          options=options)
            out = {
                "verdict": result.verdict,
                "method": method,
                "inputs_checked": getattr(result, "inputs_checked", 0),
                "reason": getattr(result, "reason", "") or "",
            }
            if getattr(result, "sampled", False):
                out["sampled"] = True
            cex = getattr(result, "counterexample", None)
            if cex is not None:
                out["counterexample"] = (
                    cex.as_dict() if hasattr(cex, "as_dict") else str(cex))
            return out

        async with self._check_slots:
            return await asyncio.to_thread(work)

    # -- campaign -----------------------------------------------------------
    async def _op_campaign(self, payload, emit,
                           deadline: Optional[Deadline] = None
                           ) -> Dict[str, Any]:
        spec = self._spec_from(payload)
        if (spec.use_cache and spec.cache_dir is None
                and self.config.memo_dir):
            # Workers append to the service verdict store, so one
            # client's campaign warms every other client's requests.
            spec = spec.with_(cache_dir=self.config.memo_dir)
        shards = plan_shards(spec)
        if not shards:
            raise ServiceError("bad-request", "campaign covers no corpus")
        futures = [self.pool.submit(spec, shard,
                                    deadline=deadline_at(deadline))
                   for shard in shards]
        records: Dict[int, dict] = {}
        try:
            for shard, future in zip(shards, futures):
                record = await future
                if record is None:
                    raise ServiceError("internal",
                                       "shard pool shut down mid-request")
                records[shard.shard_id] = record
                NUM_CAMPAIGN_SHARDS.inc()
                await emit({"shard": _shard_chunk(shard.shard_id, record)})
        finally:
            for future in futures:
                future.cancel()
        runner = CampaignRunner(spec)
        summary = runner._summarize(records, shards,
                                    shards_run=len(records),
                                    shards_skipped=0)
        runner._account(records, summary)
        memo = self.memo_for(spec)
        if memo is not None:
            memo.refresh()  # adopt what the workers just appended
        result = summary.as_dict()
        result.pop("spec", None)
        result.pop("stats", None)
        result["verdict_lines"] = summary.verdict_lines()
        return result


def _require_source(payload: Dict[str, Any]) -> str:
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ServiceError("bad-request",
                           "payload needs a non-empty 'source' string")
    return source


def _refine_chunk(index: int, outcome: dict) -> Dict[str, Any]:
    """One streamed refine result, shaped like a campaign record row."""
    item: Dict[str, Any] = {
        "index": index,
        "hash": outcome.get("hash", ""),
        "verdict": outcome.get("verdict", ""),
        "cached": outcome.get("status") == "memo-replay",
        "inputs_checked": outcome.get("inputs_checked", 0),
    }
    if outcome.get("sampled"):
        # a sampled "verified" is evidence, not an exhaustive proof —
        # the distinction must survive into streamed verdicts
        item["sampled"] = True
    if outcome.get("status") == "crashed":
        item["crash"] = outcome.get("crash")
    if outcome.get("counterexample") is not None:
        item["counterexample"] = outcome["counterexample"]
    if outcome.get("recoveries"):
        item["recoveries"] = outcome["recoveries"]
    return item


def _shard_chunk(shard_id: int, record: dict) -> Dict[str, Any]:
    """The streamed per-shard row: record minus the bulky hash map."""
    slim = {k: v for k, v in record.items()
            if k not in ("hashes", "stats", "flight_recorder")}
    slim["shard_id"] = shard_id
    slim["hashes"] = len(record.get("hashes", {}))
    return slim
