"""Blocking client for the validation service's NDJSON socket protocol.

One :class:`ServeClient` wraps one TCP connection; requests are issued
serially on it (open more clients for concurrency — that is also how
the E13 load harness drives the server).  Streamed ``chunk`` frames are
surfaced either through :meth:`stream` (a generator) or an
``on_chunk`` callback; terminal ``error`` frames raise
:class:`ServeError` carrying the wire error code, so callers can tell
backpressure (``queue-full``) from a deadline (``timeout``) from a
worker crash (``crashed``).
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    request_frame,
)


class ServeError(Exception):
    """A terminal ``error`` frame, or a broken connection."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class ServeClient:
    """One connection speaking the NDJSON request/response protocol."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8371,
                 timeout: Optional[float] = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- connection management ----------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as e:
                # Surface a down server as the transport-level wire
                # code, so retry loops and circuit breakers treat a
                # refused connection like any other transport failure.
                raise ServeError("internal", f"connect failed: {e}")
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the protocol --------------------------------------------------------
    def stream(self, op: str, payload: Optional[Dict[str, Any]] = None
               ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Send one request; yields ``("chunk", payload)`` frames then
        exactly one ``("done", payload)``.  Raises :class:`ServeError`
        on a terminal error frame or a dropped connection."""
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        try:
            self._sock.sendall(
                encode_frame(request_frame(request_id, op, payload)))
        except OSError as e:
            self.close()
            raise ServeError("internal", f"send failed: {e}")
        while True:
            line = self._readline()
            try:
                frame = decode_frame(line)
            except ProtocolError as e:
                self.close()
                raise ServeError("bad-frame", f"bad frame from server: {e}")
            if frame.get("id") not in (request_id, None):
                continue  # stale frame from an aborted predecessor
            kind = frame.get("kind")
            if kind == "chunk":
                yield "chunk", frame.get("payload") or {}
            elif kind == "done":
                yield "done", frame.get("payload") or {}
                return
            elif kind == "error":
                raise ServeError(frame.get("code", "internal"),
                                 frame.get("error", "unknown error"))
            else:
                self.close()
                raise ServeError("bad-frame",
                                 f"unexpected frame kind {kind!r}")

    def request(self, op: str, payload: Optional[Dict[str, Any]] = None,
                on_chunk: Optional[Callable[[Dict[str, Any]], None]] = None
                ) -> Dict[str, Any]:
        """Send one request; returns the ``done`` payload."""
        result: Dict[str, Any] = {}
        for kind, data in self.stream(op, payload):
            if kind == "chunk" and on_chunk is not None:
                on_chunk(data)
            elif kind == "done":
                result = data
        return result

    def _readline(self) -> bytes:
        try:
            line = self._file.readline()
        except OSError as e:
            self.close()
            raise ServeError("internal", f"receive failed: {e}")
        if not line:
            self.close()
            raise ServeError(
                "internal", "server closed the connection mid-request")
        return line

    # -- convenience wrappers ------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def parse(self, source: str, **payload) -> Dict[str, Any]:
        return self.request("parse", {"source": source, **payload})

    def optimize(self, source: str, **payload) -> Dict[str, Any]:
        return self.request("optimize", {"source": source, **payload})

    def lint(self, source: str,
             on_finding: Optional[Callable[[Dict], None]] = None,
             **payload) -> Dict[str, Any]:
        return self.request("lint", {"source": source, **payload},
                            on_chunk=on_finding)

    def refine(self, sources, on_result=None, **payload) -> Dict[str, Any]:
        if isinstance(sources, str):
            sources = [sources]
        return self.request("refine",
                            {"functions": list(sources), **payload},
                            on_chunk=on_result)

    def refine_pair(self, source: str, target: str,
                    **payload) -> Dict[str, Any]:
        return self.request("refine", {"source": source, "target": target,
                                       **payload})

    def campaign(self, spec: Dict[str, Any], on_shard=None,
                 **payload) -> Dict[str, Any]:
        return self.request("campaign", {"spec": spec, **payload},
                            on_chunk=on_shard)

    def collect(self, op: str, payload: Optional[Dict[str, Any]] = None
                ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """``(chunks, done)`` for one request — the test-friendly shape."""
        chunks: List[Dict[str, Any]] = []
        done: Dict[str, Any] = {}
        for kind, data in self.stream(op, payload):
            if kind == "chunk":
                chunks.append(data)
            else:
                done = data
        return chunks, done
