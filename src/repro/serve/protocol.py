"""Newline-delimited-JSON framing for the validation service.

One frame per line, UTF-8/ASCII on the wire.  Frames are encoded with
``ensure_ascii=True``, so a payload may contain *anything* JSON can
name — embedded newlines, control characters, even lone surrogates
(invalid UTF-8 escapes like ``"\\ud800"``) — and the encoded frame is
still exactly one ``\\n``-terminated line of 7-bit ASCII.  A property
test round-trips arbitrary payloads through
:func:`encode_frame`/:func:`decode_frame` to hold that invariant.

Requests carry a client-chosen correlation id::

    {"id": 7, "op": "refine", "payload": {...}}

and are answered by zero or more ``chunk`` frames (incremental results,
in ``seq`` order) followed by exactly one terminal frame — ``done`` or
``error``::

    {"id": 7, "kind": "chunk", "seq": 0, "payload": {...}}
    {"id": 7, "kind": "done", "payload": {...}}
    {"id": 7, "kind": "error", "code": "timeout", "error": "..."}

The same frames ride inside HTTP streaming responses (one frame per
chunked-transfer chunk), so both transports share one schema.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple, Union

#: every operation the service answers.
OPS = ("ping", "health", "metrics", "stats", "parse", "optimize",
       "lint", "refine", "campaign")

#: machine-readable error codes a terminal ``error`` frame may carry.
ERROR_CODES = ("bad-frame", "bad-request", "bad-payload", "unknown-op",
               "parse-error", "queue-full", "draining", "timeout",
               "crashed", "internal")

#: hard cap on one encoded frame; a decoder may reject longer lines
#: without reading them (an accidental binary stream must not balloon).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame or request; carries its wire error code."""

    def __init__(self, message: str, code: str = "bad-frame"):
        super().__init__(message)
        self.code = code


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One frame: compact ASCII JSON + newline."""
    data = json.dumps(obj, ensure_ascii=True, separators=(",", ":"),
                      allow_nan=False)
    encoded = data.encode("ascii") + b"\n"
    if len(encoded) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(encoded)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap", code="bad-frame")
    return encoded


def decode_frame(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one frame line; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError("frame exceeds the size cap")
        try:
            line = line.decode("utf-8", errors="surrogatepass")
        except UnicodeDecodeError as e:
            raise ProtocolError(f"frame is not UTF-8: {e}")
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        raise ProtocolError(f"frame is not JSON: {e}")
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


# -- frame constructors ------------------------------------------------------
def request_frame(request_id: Any, op: str,
                  payload: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    return {"id": request_id, "op": op, "payload": payload or {}}


def chunk_frame(request_id: Any, seq: int,
                payload: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "kind": "chunk", "seq": seq,
            "payload": payload}


def done_frame(request_id: Any,
               payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    return {"id": request_id, "kind": "done", "payload": payload or {}}


def error_frame(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        code = "internal"
    return {"id": request_id, "kind": "error", "code": code,
            "error": message}


def validate_request(frame: Dict[str, Any]) -> Tuple[Any, str, Dict]:
    """Check a decoded request frame; returns ``(id, op, payload)``."""
    if "op" not in frame:
        raise ProtocolError("request frame has no 'op'",
                            code="bad-request")
    op = frame["op"]
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (want one of "
                            f"{', '.join(OPS)})", code="unknown-op")
    payload = frame.get("payload") or {}
    if not isinstance(payload, dict):
        raise ProtocolError("request payload must be a JSON object",
                            code="bad-request")
    return frame.get("id"), op, payload
