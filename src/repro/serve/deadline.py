"""One deadline, end to end.

A request's time budget is set exactly once — by the client (payload
``"timeout"``) or the server default — and everything downstream
*inherits* it instead of inventing its own: the asyncio request wrapper,
the shard pool (which kills workers that outlive it), and the checker
loops (exhaustive input enumeration, the CDCL solver's conflict loop)
which treat it as a fuel-like budget.  The invariant this buys: **no
piece of work outlives the request that asked for it** — a hung SMT
query cannot pin a worker after its client has already been answered
with a ``timeout`` error.

Representation: an absolute :func:`time.monotonic` instant.  Absolute
instants compose across layers (each hop subtracts nothing, forwards
the same number) where relative timeouts would silently re-grant the
full budget at every hop.

Deadline-aborted verdicts are a property of *this request's* budget,
not of the checked function — they must never enter the memo store
(:mod:`repro.campaign.worker` skips recording them).
"""

from __future__ import annotations

import math
import time
from typing import Optional


def validate_timeout(value, name: str = "timeout") -> float:
    """Return ``value`` as a positive, finite float or raise ValueError.

    The wire payload field and the CLI flags funnel through here, so a
    client sending ``"timeout": "ten"`` or ``-5`` gets one structured
    ``bad-payload`` error instead of a traceback deep in ``wait_for``.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"{name} must be a number of seconds, got {value!r}")
    seconds = float(value)
    if not math.isfinite(seconds):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if seconds <= 0:
        raise ValueError(
            f"{name} must be positive, got {value!r}")
    return seconds


class Deadline:
    """An absolute monotonic instant by which work must finish."""

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        return self.at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def __repr__(self) -> str:
        return f"Deadline(in {self.remaining():.3f}s)"


def deadline_at(deadline: Optional["Deadline"]) -> Optional[float]:
    """The absolute instant of a maybe-None deadline (for plumbing)."""
    return None if deadline is None else deadline.at
