"""One asyncio listener, two protocols.

:class:`ValidationServer` accepts plain TCP connections and sniffs the
first line of each:

* an HTTP verb (``GET /healthz``, ``GET /metrics``, ``POST
  /api/v1/<op>``) selects the HTTP protocol — observability endpoints
  answer a JSON or Prometheus-text body, request endpoints stream
  NDJSON frames in a chunked response;
* anything else must be a JSON request frame, selecting the raw NDJSON
  socket protocol: frames in, ``chunk``/``done``/``error`` frames out,
  many requests per connection.

Both transports answer through the same
:meth:`~repro.serve.service.ValidationService.run_request`, so queue
admission, timeouts, warm caches, and metrics are identical whichever
way a client connects.

Graceful drain (SIGTERM/SIGINT): the admission gate flips to
``draining`` — every new request is rejected with a structured error
(HTTP 503 / ``draining`` frame) while in-flight requests run to their
terminal frame — then the listener closes.  A worker-process crash
mid-request surfaces as an ``errored`` record or ``error`` frame; the
connection stays healthy either way.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple

from ..diag import Statistic
from .protocol import (
    ProtocolError,
    chunk_frame,
    decode_frame,
    done_frame,
    encode_frame,
    error_frame,
    validate_request,
)
from .service import ServiceConfig, ServiceError, ValidationService

NUM_CONNECTIONS = Statistic(
    "serve", "num-connections",
    "TCP connections accepted by the validation server")

#: HTTP status for each wire error code.
_HTTP_STATUS = {
    "bad-frame": 400, "bad-request": 400, "bad-payload": 400,
    "unknown-op": 404,
    "parse-error": 422, "queue-full": 429, "draining": 503,
    "timeout": 504, "crashed": 500, "internal": 500,
}

_HTTP_VERBS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ",
               b"OPTIONS ", b"PATCH ")

#: readline() limit; oversized lines raise and fail the frame cleanly.
_LINE_LIMIT = 16 * 1024 * 1024 + 1024


class ValidationServer:
    """The listener; one per process, wrapping one service."""

    def __init__(self, service: Optional[ValidationService] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 config: Optional[ServiceConfig] = None):
        self.service = service or ValidationService(config)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_LINE_LIMIT)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        return self.host, self.port

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._draining.set)
            except NotImplementedError:  # non-unix event loops
                pass

    async def serve_until_drained(self,
                                  drain_timeout: float = 30.0) -> None:
        """Serve until a drain is requested, then drain and close."""
        await self._draining.wait()
        await self.shutdown(drain_timeout)

    def request_drain(self) -> None:
        """Trip the drain from anywhere (tests, admin endpoints)."""
        self._draining.set()

    async def shutdown(self, drain_timeout: float = 30.0) -> bool:
        """Reject new work, let in-flight finish, close the listener.

        Returns True when every in-flight request reached its terminal
        frame inside ``drain_timeout``."""
        self._draining.set()
        clean = await self.service.drain(timeout=drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.aclose()
        return clean

    # -- connection handling -----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        NUM_CONNECTIONS.inc()
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_VERBS):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_ndjson(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- NDJSON socket protocol ---------------------------------------------
    async def _serve_ndjson(self, first: bytes,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        line = first
        while line:
            await self._answer_frame(line, writer)
            line = await reader.readline()

    async def _answer_frame(self, line: bytes,
                            writer: asyncio.StreamWriter) -> None:
        request_id: Any = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            request_id, op, payload = validate_request(frame)
        except ProtocolError as e:
            await self._send(writer, error_frame(request_id, e.code, str(e)))
            return

        seq = 0

        async def emit(chunk: Dict[str, Any]) -> None:
            nonlocal seq
            await self._send(writer, chunk_frame(request_id, seq, chunk))
            seq += 1

        try:
            result = await self.service.run_request(op, payload, emit)
        except ServiceError as e:
            await self._send(writer, error_frame(request_id, e.code, str(e)))
            return
        await self._send(writer, done_frame(request_id, result))

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    frame: Dict[str, Any]) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    # -- HTTP ---------------------------------------------------------------
    async def _serve_http(self, request_line: bytes,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            method, target = request_line.decode(
                "latin-1").split()[:2]
        except (UnicodeDecodeError, ValueError):
            await _http_simple(writer, 400, {"error": "bad request line"})
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            if length > _LINE_LIMIT:
                await _http_simple(writer, 413, {"error": "body too large"})
                return
            body = await reader.readexactly(length)

        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path in ("/healthz", "/health"):
            status = await self.service.run_request("health", {}, _no_emit)
            code = 503 if status.get("status") == "draining" else 200
            await _http_simple(writer, code, status)
            return
        if method == "GET" and path == "/metrics":
            result = await self.service.run_request("metrics", {}, _no_emit)
            await _http_text(writer, 200, result["prometheus"],
                             content_type="text/plain; version=0.0.4")
            return
        if method == "GET" and path == "/stats":
            result = await self.service.run_request("stats", {}, _no_emit)
            await _http_simple(writer, 200, result)
            return
        if method == "POST" and path.startswith("/api/v1/"):
            await self._http_api(writer, path[len("/api/v1/"):], body)
            return
        await _http_simple(writer, 404, {"error": f"no route {path}"})

    async def _http_api(self, writer: asyncio.StreamWriter,
                        op: str, body: bytes) -> None:
        """POST /api/v1/<op>: NDJSON frames in one chunked response."""
        try:
            payload = json.loads(body.decode("utf-8", errors="surrogatepass")
                                 ) if body.strip() else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as e:
            await _http_simple(writer, 400, {"error": f"bad JSON body: {e}"})
            return
        if not isinstance(payload, dict):
            await _http_simple(writer, 400,
                               {"error": "body must be a JSON object"})
            return

        started = False
        seq = 0

        async def emit(chunk: Dict[str, Any]) -> None:
            nonlocal started, seq
            if not started:
                _http_start_chunked(writer, 200)
                started = True
            _http_chunk(writer, encode_frame(chunk_frame(None, seq, chunk)))
            seq += 1
            await writer.drain()

        try:
            result = await self.service.run_request(op, payload, emit)
        except ServiceError as e:
            frame = error_frame(None, e.code, str(e))
            if started:
                _http_chunk(writer, encode_frame(frame))
                _http_finish_chunked(writer)
            else:
                await _http_simple(writer,
                                   _HTTP_STATUS.get(e.code, 500), frame)
            await writer.drain()
            return
        if not started:
            _http_start_chunked(writer, 200)
        _http_chunk(writer, encode_frame(done_frame(None, result)))
        _http_finish_chunked(writer)
        await writer.drain()


async def _no_emit(chunk: Dict[str, Any]) -> None:
    """Discard chunks (GET endpoints return only the final payload)."""


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 422: "Unprocessable Entity",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


def _status_line(code: int) -> bytes:
    return (f"HTTP/1.1 {code} "
            f"{_REASONS.get(code, 'Unknown')}\r\n").encode("ascii")


async def _http_text(writer: asyncio.StreamWriter, code: int, text: str,
                     content_type: str = "application/json") -> None:
    body = text.encode("utf-8", errors="backslashreplace")
    writer.write(_status_line(code)
                 + f"Content-Type: {content_type}\r\n"
                   f"Content-Length: {len(body)}\r\n"
                   "Connection: close\r\n\r\n".encode("ascii")
                 + body)
    await writer.drain()


async def _http_simple(writer: asyncio.StreamWriter, code: int,
                       payload: Dict[str, Any]) -> None:
    await _http_text(writer, code,
                     json.dumps(payload, ensure_ascii=True) + "\n")


def _http_start_chunked(writer: asyncio.StreamWriter, code: int) -> None:
    writer.write(_status_line(code)
                 + b"Content-Type: application/x-ndjson\r\n"
                   b"Transfer-Encoding: chunked\r\n"
                   b"Connection: close\r\n\r\n")


def _http_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")


def _http_finish_chunked(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
