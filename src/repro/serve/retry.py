"""Client-side resilience: retries, idempotency keys, circuit breaking.

:class:`RetryingClient` wraps a :class:`~repro.serve.client.ServeClient`
with the three standard client-side containment tools:

* **retries with jittered exponential backoff** — transport failures
  and explicitly retryable wire codes (a dropped connection surfaces as
  ``internal``; backpressure as ``queue-full``) are re-sent after
  ``base * 2**(k-1)`` seconds, jittered, from a seeded RNG so tests and
  the E14 chaos bench replay identical schedules.  Semantic failures
  (``bad-request``, ``parse-error``, ``bad-payload``, ``unknown-op``,
  ``crashed``) never retry — the same request would fail the same way.
  ``timeout`` does not retry by default either: the budget belonged to
  the request, not to the transport.
* **idempotency keys** — every request carries a unique
  ``idempotency_key``; a retry re-sends the *same* key, so the server
  can answer a duplicate (first attempt's response lost in transit)
  from its replay cache instead of re-running the work.  This is safe
  precisely because verdicts are deterministic: replaying a response is
  indistinguishable from recomputing it.
* **a per-server circuit breaker** — after ``failure_threshold``
  consecutive transport-level failures the breaker *opens* and requests
  shed immediately as ``queue-full`` (the backpressure code clients
  already handle) without touching the socket.  After
  ``reset_timeout`` seconds one trial request is allowed through
  (*half-open*); success closes the breaker, failure re-opens it.
  Breakers are shared per ``(host, port)`` across every
  :class:`RetryingClient` in the process, so one hammering loop cannot
  hide a down server from its siblings.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from ..diag import Statistic
from .client import ServeClient, ServeError

NUM_RETRIES = Statistic(
    "serve-client", "num-retries",
    "Request attempts re-sent by retrying clients")
NUM_BREAKER_OPENS = Statistic(
    "serve-client", "num-breaker-opens",
    "Circuit breakers tripped open by consecutive failures")
NUM_BREAKER_SHED = Statistic(
    "serve-client", "num-breaker-shed",
    "Requests shed fast-fail because a circuit breaker was open")

#: wire codes worth a retry: transport trouble and backpressure.
RETRYABLE_CODES: FrozenSet[str] = frozenset({"internal", "queue-full"})

_key_counter = itertools.count(1)


def make_idempotency_key() -> str:
    """A process-unique key; retries of one request re-use one key."""
    return f"{os.getpid():x}-{time.monotonic_ns():x}-{next(_key_counter)}"


@dataclass
class RetryPolicy:
    """Tunables of one retrying client."""

    #: total attempts per request (1 = no retries).
    max_attempts: int = 4
    #: backoff before attempt k+1 is ``base * 2**(k-1)``, capped, then
    #: jittered by ±``jitter`` (fractional).
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    #: jitter RNG seed (deterministic schedules for tests/benches).
    seed: int = 0
    #: wire error codes that justify a retry.
    retry_codes: FrozenSet[str] = RETRYABLE_CODES
    #: attach idempotency keys to requests (retries re-use the key).
    idempotency: bool = True


class CircuitBreaker:
    """Shed requests to a server that keeps failing.

    closed → (``failure_threshold`` consecutive failures) → open →
    (``reset_timeout`` elapses) → half-open → success closes /
    failure re-opens.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 10.0):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self.opens = 0
        self.shed = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (self._state == "open"
                and time.monotonic() - self._opened_at
                >= self.reset_timeout):
            self._state = "half-open"
        return self._state

    def allow(self) -> bool:
        """May a request go out right now?  (half-open admits trials.)"""
        with self._lock:
            if self._state_locked() == "open":
                self.shed += 1
                NUM_BREAKER_SHED.inc()
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            was = self._state_locked()
            if was == "half-open" or (
                    was == "closed"
                    and self._failures >= self.failure_threshold):
                self._state = "open"
                self._opened_at = time.monotonic()
                self.opens += 1
                NUM_BREAKER_OPENS.inc()

    def report(self) -> dict:
        with self._lock:
            return {"state": self._state_locked(),
                    "consecutive_failures": self._failures,
                    "opens": self.opens, "shed": self.shed}


_breakers: Dict[Tuple[str, int], CircuitBreaker] = {}
_breakers_lock = threading.Lock()


def breaker_for(host: str, port: int,
                failure_threshold: int = 5,
                reset_timeout: float = 10.0) -> CircuitBreaker:
    """The process-wide breaker for one server endpoint."""
    with _breakers_lock:
        breaker = _breakers.get((host, port))
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold, reset_timeout)
            _breakers[(host, port)] = breaker
        return breaker


def reset_breakers() -> None:
    """Drop every endpoint breaker (test isolation)."""
    with _breakers_lock:
        _breakers.clear()


class RetryingClient:
    """A :class:`ServeClient` with retries, idempotency, and breaking.

    Usable as a drop-in for ``request``/``collect`` and the convenience
    wrappers; ``stream`` is deliberately absent — a half-consumed
    stream is not safely re-sendable, so streaming callers own their
    retry loop.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8371,
                 timeout: Optional[float] = 300.0,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None):
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.breaker = (breaker if breaker is not None
                        else breaker_for(host, port))
        self._client = ServeClient(host, port, timeout=timeout)
        self._rng = random.Random(self.policy.seed)
        self.retries = 0

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the retry loop ------------------------------------------------------
    def request(self, op: str, payload: Optional[Dict[str, Any]] = None,
                on_chunk: Optional[Callable[[Dict[str, Any]], None]] = None
                ) -> Dict[str, Any]:
        payload = dict(payload or {})
        if self.policy.idempotency and "idempotency_key" not in payload:
            payload["idempotency_key"] = make_idempotency_key()
        last: Optional[ServeError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if not self.breaker.allow():
                raise ServeError(
                    "queue-full",
                    f"circuit breaker open for "
                    f"{self.host}:{self.port} "
                    f"({self.breaker.report()['consecutive_failures']} "
                    f"consecutive failures)")
            try:
                result = self._client.request(op, payload,
                                              on_chunk=on_chunk)
            except ServeError as e:
                last = e
                if e.code in ("internal", "bad-frame"):
                    # transport-level: the server may be down
                    self.breaker.record_failure()
                if (e.code not in self.policy.retry_codes
                        or attempt >= self.policy.max_attempts):
                    raise
                self.retries += 1
                NUM_RETRIES.inc()
                # A dropped connection leaves the socket unusable;
                # start the next attempt on a fresh one.
                self._client.close()
                time.sleep(self._backoff(attempt))
                continue
            self.breaker.record_success()
            return result
        raise last  # pragma: no cover — loop always returns or raises

    def collect(self, op: str, payload: Optional[Dict[str, Any]] = None
                ) -> Tuple[list, Dict[str, Any]]:
        chunks: list = []
        done = self.request(op, payload, on_chunk=chunks.append)
        return chunks, done

    def _backoff(self, attempt: int) -> float:
        base = min(self.policy.backoff_cap,
                   self.policy.backoff_base * (2 ** (attempt - 1)))
        spread = base * self.policy.jitter
        return max(0.0, base + self._rng.uniform(-spread, spread))

    # -- convenience wrappers (mirror ServeClient) ---------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def parse(self, source: str, **payload) -> Dict[str, Any]:
        return self.request("parse", {"source": source, **payload})

    def optimize(self, source: str, **payload) -> Dict[str, Any]:
        return self.request("optimize", {"source": source, **payload})

    def lint(self, source: str, on_finding=None, **payload) -> Dict[str, Any]:
        return self.request("lint", {"source": source, **payload},
                            on_chunk=on_finding)

    def refine(self, sources, on_result=None, **payload) -> Dict[str, Any]:
        if isinstance(sources, str):
            sources = [sources]
        return self.request("refine",
                            {"functions": list(sources), **payload},
                            on_chunk=on_result)

    def refine_pair(self, source: str, target: str,
                    **payload) -> Dict[str, Any]:
        return self.request("refine", {"source": source, "target": target,
                                       **payload})

    def campaign(self, spec: Dict[str, Any], on_shard=None,
                 **payload) -> Dict[str, Any]:
        return self.request("campaign", {"spec": spec, **payload},
                            on_chunk=on_shard)
