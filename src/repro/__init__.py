"""Reproduction of "Taming Undefined Behavior in LLVM" (PLDI 2017).

The package is organized by subsystem; the most commonly used entry
points are re-exported here:

>>> from repro import parse_function, check_refinement, NEW, OLD
>>> src = parse_function('''
... define i4 @f(i4 %x) {
... entry:
...   %y = mul i4 %x, 2
...   ret i4 %y
... }''')
>>> tgt = parse_function('''
... define i4 @f(i4 %x) {
... entry:
...   %y = add i4 %x, %x
...   ret i4 %y
... }''')
>>> check_refinement(src, tgt, OLD).failed   # Section 3.1's bug
True
>>> check_refinement(src, tgt, NEW).ok       # fixed by removing undef
True
"""

__version__ = "1.0.0"

from .ir import (
    IRBuilder,
    Module,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_function,
    verify_module,
)
from .refine import (
    CheckOptions,
    check_refinement,
    check_refinement_auto,
    check_refinement_symbolic,
)
from .semantics import (
    NEW,
    OLD,
    OLD_GVN_VIEW,
    OLD_UNSWITCH_VIEW,
    POISON,
    SemanticsConfig,
    enumerate_behaviors,
    run_once,
)

__all__ = [
    "__version__",
    "IRBuilder", "Module", "parse_function", "parse_module",
    "print_function", "print_module", "verify_function", "verify_module",
    "CheckOptions", "check_refinement", "check_refinement_auto",
    "check_refinement_symbolic",
    "NEW", "OLD", "OLD_GVN_VIEW", "OLD_UNSWITCH_VIEW", "POISON",
    "SemanticsConfig", "enumerate_behaviors", "run_once",
]
