"""Behavior-set memoization for the validation hot path.

A campaign checks enormous numbers of functions that are identical
modulo register/block renaming; :mod:`repro.campaign.canon` already
collapses those onto one canonical hash.  :class:`RefinementMemo`
extends the collapse across *shards and runs*: a refinement verdict is a
pure function of (canonical source function, pipeline under test,
semantics configuration, checker budgets), so once any worker has
decided a hash under a given *context* (the hash of those non-function
inputs — see ``CampaignSpec.memo_context``), every later worker can
reuse the verdict without re-optimizing or re-enumerating anything.

Two layers:

* an in-memory table, always on;
* an optional on-disk layer: JSONL files under ``disk_dir``.  Each
  process appends its fresh entries to its own ``memo-<pid>.jsonl``
  (append-only, one writer per file — no locking needed), and loads
  every ``memo-*.jsonl`` at construction, so concurrent campaign shards
  share verdicts across process and run boundaries.

Concurrent-reader hardening (the serve layer keeps one memo warm for
the lifetime of the server, with worker processes appending underneath
it and request threads querying it in parallel):

* lookups/records/flushes are thread-safe (one lock, held only around
  table mutation — never around I/O of other processes);
* :meth:`refresh` re-reads the disk layer *incrementally*: per-file
  byte offsets mean each call only parses what other processes appended
  since the last call;
* a **torn final line** — a writer's partial append that does not yet
  end in a newline — is never consumed: the reader stops its offset
  *before* the torn tail, so the entry is picked up whole by a later
  refresh once the writer finishes the line.  (Torn lines that do end
  in a newline, e.g. from a writer killed mid-``write``, fail JSON
  parsing and are skipped, exactly like campaign checkpoints.)

Soundness rules:

* the context string must capture everything besides the function that
  the verdict depends on — two campaigns with different pipelines or
  budgets never share entries;
* ``"failed"`` verdicts are **never** memoized: a failure must re-run so
  its counterexample record (witness behavior, reproducer IR) is
  regenerated identically with the cache on or off;
* entries only short-circuit work, never change answers: the checker is
  deterministic, so a memo hit returns exactly the verdict a fresh
  check would compute.  Campaign verdict sets are byte-identical with
  the cache on and off (a property test holds this).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, Tuple

from ..diag import Statistic, span

MEMO_HITS = Statistic(
    "perf", "num-memo-hits",
    "Refinement checks answered from the behavior-set memo cache")
MEMO_MISSES = Statistic(
    "perf", "num-memo-misses",
    "Refinement checks that missed the memo cache and ran in full")
MEMO_DISK_LOADED = Statistic(
    "perf", "num-memo-disk-entries-loaded",
    "Memo entries loaded from the shared on-disk layer")

#: verdicts that are pure functions of (function, context) and safe to
#: replay.  "failed" is deliberately absent (see module docstring).
_CACHEABLE = ("verified", "inconclusive", "timeout")


class RefinementMemo:
    """Verdict memo keyed by canonical function hash, scoped to one
    context string."""

    def __init__(self, context: str, disk_dir: Optional[str] = None):
        self.context = context
        self.disk_dir = disk_dir
        self._table: Dict[str, str] = {}
        self._fresh: List[Tuple[str, str]] = []
        #: per-file byte offset of the next unread disk entry.
        self._offsets: Dict[str, int] = {}
        self._lock = threading.Lock()
        if disk_dir:
            self._load_disk(disk_dir)

    def __len__(self) -> int:
        return len(self._table)

    # -- queries -----------------------------------------------------------
    def lookup(self, key: str) -> Optional[str]:
        """The memoized verdict for canonical hash ``key``, or None."""
        with self._lock:
            verdict = self._table.get(key)
        if verdict is None:
            MEMO_MISSES.inc()
        else:
            MEMO_HITS.inc()
        return verdict

    def record(self, key: str, verdict: str) -> None:
        """Memoize a freshly computed verdict (no-op for "failed")."""
        if verdict not in _CACHEABLE:
            return
        with self._lock:
            if key in self._table:
                return
            self._table[key] = verdict
            self._fresh.append((key, verdict))

    # -- the on-disk layer -------------------------------------------------
    def flush(self) -> int:
        """Append this process's fresh entries to its own JSONL file.

        Returns the number of entries written.  Call at natural
        boundaries (end of a shard, end of a request batch); append-only
        writes by one process per file keep concurrent workers safe
        without locking."""
        with self._lock:
            fresh, self._fresh = self._fresh, []
        if not self.disk_dir or not fresh:
            return len(fresh)
        with span("memo-flush", cat="perf") as sp:
            os.makedirs(self.disk_dir, exist_ok=True)
            path = os.path.join(self.disk_dir, f"memo-{os.getpid()}.jsonl")
            with open(path, "ab") as fh:
                fh.write(b"".join(
                    json.dumps({"c": self.context, "k": key, "v": verdict}
                               ).encode("ascii") + b"\n"
                    for key, verdict in fresh))
            sp.set(entries=len(fresh))
        return len(fresh)

    def refresh(self) -> int:
        """Incrementally pick up entries other processes appended since
        construction (or the last refresh).  Returns entries adopted.

        Safe to call from any thread at any time; cheap when nothing
        changed (one ``listdir`` + one ``stat``-sized read per file)."""
        if not self.disk_dir:
            return 0
        loaded = self._load_disk_files(self.disk_dir)
        MEMO_DISK_LOADED.inc(loaded)
        return loaded

    def _load_disk(self, disk_dir: str) -> None:
        if not os.path.isdir(disk_dir):
            return
        with span("memo-load-disk", cat="perf") as sp:
            loaded = self._load_disk_files(disk_dir)
            sp.set(entries=loaded)
        MEMO_DISK_LOADED.inc(loaded)

    def _load_disk_files(self, disk_dir: str) -> int:
        if not os.path.isdir(disk_dir):
            return 0
        loaded = 0
        for name in sorted(os.listdir(disk_dir)):
            if not (name.startswith("memo-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(disk_dir, name)
            try:
                loaded += self._load_one_file(path)
            except OSError:
                continue
        return loaded

    def _load_one_file(self, path: str) -> int:
        """Parse complete lines from ``path`` past the remembered
        offset; a torn final line (no trailing newline yet) stays
        unread until its writer completes it."""
        offset = self._offsets.get(path, 0)
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
        if not data:
            return 0
        end = data.rfind(b"\n")
        if end < 0:
            return 0  # only a torn tail so far; retry next refresh
        complete, consumed = data[:end + 1], offset + end + 1
        loaded = 0
        with self._lock:
            self._offsets[path] = consumed
            for line in complete.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn-but-terminated write: skip, never crash
                if entry.get("c") != self.context:
                    continue
                verdict = entry.get("v")
                key = entry.get("k")
                if key and verdict in _CACHEABLE:
                    if key not in self._table:
                        self._table[key] = verdict
                        loaded += 1
        return loaded
