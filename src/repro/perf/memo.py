"""Behavior-set memoization for the validation hot path.

A campaign checks enormous numbers of functions that are identical
modulo register/block renaming; :mod:`repro.campaign.canon` already
collapses those onto one canonical hash.  :class:`RefinementMemo`
extends the collapse across *shards and runs*: a refinement verdict is a
pure function of (canonical source function, pipeline under test,
semantics configuration, checker budgets), so once any worker has
decided a hash under a given *context* (the hash of those non-function
inputs — see ``CampaignSpec.memo_context``), every later worker can
reuse the verdict without re-optimizing or re-enumerating anything.

Two layers:

* an in-memory table, always on;
* an optional on-disk layer: JSONL files under ``disk_dir``.  Each
  process appends its fresh entries to its own ``memo-<pid>.jsonl``
  (append-only, one writer per file — no locking needed), and loads
  every ``memo-*.jsonl`` at construction, so concurrent campaign shards
  share verdicts across process and run boundaries.

Concurrent-reader hardening (the serve layer keeps one memo warm for
the lifetime of the server, with worker processes appending underneath
it and request threads querying it in parallel):

* lookups/records/flushes are thread-safe (one lock, held only around
  table mutation — never around I/O of other processes);
* :meth:`refresh` re-reads the disk layer *incrementally*: per-file
  byte offsets mean each call only parses what other processes appended
  since the last call;
* a **torn final line** — a writer's partial append that does not yet
  end in a newline — is never consumed: the reader stops its offset
  *before* the torn tail, so the entry is picked up whole by a later
  refresh once the writer finishes the line.  (Torn lines that do end
  in a newline, e.g. from a writer killed mid-``write``, fail JSON
  parsing and are skipped, exactly like campaign checkpoints.)

Integrity hardening (chaos runs SIGKILL workers mid-append and corrupt
records in place, and the store must stay trustworthy through both):

* every record carries a CRC32 **checksum** over its semantic fields;
  a record that parses as JSON but fails its checksum (bit rot, an
  interleaved write, deliberate corruption) is **quarantined**: skipped,
  counted per file and in ``perf/num-memo-quarantined``, and never
  adopted into the table.  Records written before checksums existed
  (no ``"s"`` field) are accepted as legacy.
* disk I/O failures never take the service down: a flush that cannot
  write re-queues its entries and counts ``perf/num-memo-disk-errors``;
  after :data:`_MAX_FLUSH_FAILURES` consecutive failures the memo goes
  **degraded** — a pure in-memory cache, cold across restarts but warm
  within the process.
* ``python -m repro memo fsck|compact`` (see :func:`fsck`,
  :func:`compact`) audit and rebuild the store offline: fsck reports
  per-file valid/legacy/corrupt/torn counts; compact rewrites every
  surviving record, checksummed and deduplicated, into one file.

Soundness rules:

* the context string must capture everything besides the function that
  the verdict depends on — two campaigns with different pipelines or
  budgets never share entries;
* ``"failed"`` verdicts are **never** memoized: a failure must re-run so
  its counterexample record (witness behavior, reproducer IR) is
  regenerated identically with the cache on or off;
* entries only short-circuit work, never change answers: the checker is
  deterministic, so a memo hit returns exactly the verdict a fresh
  check would compute.  Campaign verdict sets are byte-identical with
  the cache on and off (a property test holds this).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import zlib
from typing import Dict, List, Optional, Tuple

from ..diag import Statistic, span

logger = logging.getLogger(__name__)

MEMO_HITS = Statistic(
    "perf", "num-memo-hits",
    "Refinement checks answered from the behavior-set memo cache")
MEMO_MISSES = Statistic(
    "perf", "num-memo-misses",
    "Refinement checks that missed the memo cache and ran in full")
MEMO_DISK_LOADED = Statistic(
    "perf", "num-memo-disk-entries-loaded",
    "Memo entries loaded from the shared on-disk layer")
MEMO_QUARANTINED = Statistic(
    "perf", "num-memo-quarantined",
    "On-disk memo records rejected by checksum or parse failure")
MEMO_DISK_ERRORS = Statistic(
    "perf", "num-memo-disk-errors",
    "Memo disk operations (flush/load) that failed with an OS error")

#: verdicts that are pure functions of (function, context) and safe to
#: replay.  "failed" is deliberately absent (see module docstring).
#: "verified-sampled" keeps sampled verifications distinguishable on
#: replay — the context hash already separates sampled campaigns
#: (``sample_inputs`` is part of the memo context), but the *verdict
#: string* must round-trip the distinction too, or a replay would
#: upgrade evidence into proof in the reports.
_CACHEABLE = ("verified", "verified-sampled", "inconclusive", "timeout")

#: consecutive flush failures before the memo stops touching disk.
_MAX_FLUSH_FAILURES = 3


def _checksum(context: str, key: str, verdict: str) -> str:
    """CRC32 (hex) over the semantic fields of one record."""
    blob = f"{context}\x00{key}\x00{verdict}".encode("utf-8")
    return f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}"


def _encode_record(context: str, key: str, verdict: str) -> bytes:
    return json.dumps(
        {"c": context, "k": key, "v": verdict,
         "s": _checksum(context, key, verdict)}).encode("ascii") + b"\n"


def _classify(line: bytes) -> Tuple[str, Optional[dict]]:
    """One complete JSONL line -> ("valid"|"legacy"|"corrupt", entry).

    "valid" records carry a matching checksum; "legacy" records predate
    checksums (no ``"s"`` field) and are accepted; everything else —
    unparsable JSON, non-object JSON, missing fields, checksum
    mismatch — is "corrupt" and must be quarantined."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError:
        return "corrupt", None
    if not isinstance(entry, dict):
        return "corrupt", None
    context, key, verdict = (entry.get("c"), entry.get("k"),
                             entry.get("v"))
    if not (isinstance(context, str) and isinstance(key, str)
            and isinstance(verdict, str)):
        return "corrupt", None
    stamp = entry.get("s")
    if stamp is None:
        return "legacy", entry
    if stamp != _checksum(context, key, verdict):
        return "corrupt", None
    return "valid", entry


class RefinementMemo:
    """Verdict memo keyed by canonical function hash, scoped to one
    context string."""

    def __init__(self, context: str, disk_dir: Optional[str] = None):
        self.context = context
        self.disk_dir = disk_dir
        self._table: Dict[str, str] = {}
        self._fresh: List[Tuple[str, str]] = []
        #: per-file byte offset of the next unread disk entry.
        self._offsets: Dict[str, int] = {}
        #: per-file count of records quarantined by checksum/parse.
        self._corrupt: Dict[str, int] = {}
        self._flush_failures = 0
        #: True once the disk layer is abandoned after repeated I/O
        #: errors; the memo keeps serving warm in-memory hits.
        self.degraded = False
        self._lock = threading.Lock()
        if disk_dir:
            self._load_disk(disk_dir)

    def __len__(self) -> int:
        return len(self._table)

    # -- queries -----------------------------------------------------------
    def lookup(self, key: str) -> Optional[str]:
        """The memoized verdict for canonical hash ``key``, or None."""
        with self._lock:
            verdict = self._table.get(key)
        if verdict is None:
            MEMO_MISSES.inc()
        else:
            MEMO_HITS.inc()
        return verdict

    def record(self, key: str, verdict: str) -> None:
        """Memoize a freshly computed verdict (no-op for "failed")."""
        if verdict not in _CACHEABLE:
            return
        with self._lock:
            if key in self._table:
                return
            self._table[key] = verdict
            self._fresh.append((key, verdict))

    def quarantined(self) -> Dict[str, int]:
        """Per-file counts of records this memo has quarantined."""
        with self._lock:
            return dict(self._corrupt)

    # -- the on-disk layer -------------------------------------------------
    def flush(self) -> int:
        """Append this process's fresh entries to its own JSONL file.

        Returns the number of entries written.  Call at natural
        boundaries (end of a shard, end of a request batch); append-only
        writes by one process per file keep concurrent workers safe
        without locking.

        A write failure is contained, not fatal: the entries go back on
        the fresh queue (still served from memory), the error is
        counted, and after :data:`_MAX_FLUSH_FAILURES` consecutive
        failures the memo goes :attr:`degraded` and stops touching
        disk."""
        with self._lock:
            fresh, self._fresh = self._fresh, []
        if not self.disk_dir or self.degraded or not fresh:
            return len(fresh)
        try:
            with span("memo-flush", cat="perf") as sp:
                os.makedirs(self.disk_dir, exist_ok=True)
                path = os.path.join(self.disk_dir,
                                    f"memo-{os.getpid()}.jsonl")
                with open(path, "ab") as fh:
                    fh.write(b"".join(
                        _encode_record(self.context, key, verdict)
                        for key, verdict in fresh))
                sp.set(entries=len(fresh))
        except OSError as e:
            MEMO_DISK_ERRORS.inc()
            with self._lock:
                # Preserve order: the failed batch precedes anything
                # recorded while the write was in flight.
                self._fresh[:0] = fresh
                self._flush_failures += 1
                if self._flush_failures >= _MAX_FLUSH_FAILURES:
                    self.degraded = True
            if self.degraded:
                logger.error(
                    "memo disk layer degraded after %d consecutive "
                    "flush failures (last: %s); continuing in-memory "
                    "only", self._flush_failures, e)
            else:
                logger.warning("memo flush to %s failed: %s",
                               self.disk_dir, e)
            return 0
        with self._lock:
            self._flush_failures = 0
        return len(fresh)

    def refresh(self) -> int:
        """Incrementally pick up entries other processes appended since
        construction (or the last refresh).  Returns entries adopted.

        Safe to call from any thread at any time; cheap when nothing
        changed (one ``listdir`` + one ``stat``-sized read per file)."""
        if not self.disk_dir:
            return 0
        loaded = self._load_disk_files(self.disk_dir)
        MEMO_DISK_LOADED.inc(loaded)
        return loaded

    def _load_disk(self, disk_dir: str) -> None:
        if not os.path.isdir(disk_dir):
            return
        with span("memo-load-disk", cat="perf") as sp:
            loaded = self._load_disk_files(disk_dir)
            sp.set(entries=loaded)
        MEMO_DISK_LOADED.inc(loaded)

    def _load_disk_files(self, disk_dir: str) -> int:
        if not os.path.isdir(disk_dir):
            return 0
        loaded = 0
        for name in sorted(os.listdir(disk_dir)):
            if not (name.startswith("memo-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(disk_dir, name)
            try:
                loaded += self._load_one_file(path)
            except OSError:
                MEMO_DISK_ERRORS.inc()
                continue
        return loaded

    def _load_one_file(self, path: str) -> int:
        """Parse complete lines from ``path`` past the remembered
        offset; a torn final line (no trailing newline yet) stays
        unread until its writer completes it."""
        offset = self._offsets.get(path, 0)
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
        if not data:
            return 0
        end = data.rfind(b"\n")
        if end < 0:
            return 0  # only a torn tail so far; retry next refresh
        complete, consumed = data[:end + 1], offset + end + 1
        loaded = quarantined = 0
        with self._lock:
            self._offsets[path] = consumed
            for line in complete.splitlines():
                line = line.strip()
                if not line:
                    continue
                kind, entry = _classify(line)
                if kind == "corrupt":
                    # Checksum mismatch or unparsable write: quarantine
                    # the record (skip + count), never adopt it.
                    quarantined += 1
                    self._corrupt[path] = self._corrupt.get(path, 0) + 1
                    continue
                if entry.get("c") != self.context:
                    continue
                verdict = entry.get("v")
                key = entry.get("k")
                if key and verdict in _CACHEABLE:
                    if key not in self._table:
                        self._table[key] = verdict
                        loaded += 1
        if quarantined:
            MEMO_QUARANTINED.inc(quarantined)
            logger.warning("memo: quarantined %d corrupt record(s) in "
                           "%s", quarantined, path)
        return loaded


# -- offline maintenance: fsck and compact -----------------------------------
def _memo_files(disk_dir: str) -> List[str]:
    return sorted(
        os.path.join(disk_dir, name)
        for name in os.listdir(disk_dir)
        if name.startswith("memo-") and name.endswith(".jsonl"))


def fsck(disk_dir: str) -> dict:
    """Audit every memo file under ``disk_dir`` without mutating it.

    Returns a report dict: per-file ``valid``/``legacy``/``corrupt``
    record counts plus whether the file ends in a torn (unterminated)
    tail, and store-wide totals.  ``ok`` is True iff no corruption and
    no read errors were found (torn tails are not corruption — they are
    an append in progress)."""
    report: dict = {"dir": disk_dir, "files": [], "ok": True,
                    "valid": 0, "legacy": 0, "corrupt": 0,
                    "torn_tails": 0, "read_errors": 0}
    if not os.path.isdir(disk_dir):
        return report
    for path in _memo_files(disk_dir):
        entry = {"file": os.path.basename(path), "valid": 0,
                 "legacy": 0, "corrupt": 0, "torn_tail": False}
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as e:
            MEMO_DISK_ERRORS.inc()
            entry["error"] = str(e)
            report["read_errors"] += 1
            report["ok"] = False
            report["files"].append(entry)
            continue
        if data and not data.endswith(b"\n"):
            entry["torn_tail"] = True
            report["torn_tails"] += 1
            data = data[:data.rfind(b"\n") + 1] if b"\n" in data else b""
        for line in data.splitlines():
            line = line.strip()
            if not line:
                continue
            kind, _ = _classify(line)
            entry[kind] += 1
            report[kind] += 1
        if entry["corrupt"]:
            report["ok"] = False
        report["files"].append(entry)
    return report


def compact(disk_dir: str) -> dict:
    """Rewrite the store as one deduplicated, fully checksummed file.

    Reads every ``memo-*.jsonl``, keeps valid and legacy records (first
    occurrence of each ``(context, key)`` wins — matching reader
    adoption order), drops corrupt records and torn tails, writes the
    survivors (with fresh checksums, legacy included) to
    ``memo-compacted.jsonl`` via a temp file + atomic rename, then
    removes the input files.  Offline maintenance only: run it while no
    writer is appending."""
    report = fsck(disk_dir)
    result = {"dir": disk_dir, "kept": 0,
              "dropped_corrupt": report["corrupt"],
              "dropped_duplicates": 0,
              "files_removed": 0, "ok": report["read_errors"] == 0}
    if not os.path.isdir(disk_dir):
        return result
    survivors: Dict[Tuple[str, str], str] = {}
    inputs = []
    for path in _memo_files(disk_dir):
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            MEMO_DISK_ERRORS.inc()
            continue
        inputs.append(path)
        if data and not data.endswith(b"\n"):
            data = data[:data.rfind(b"\n") + 1] if b"\n" in data else b""
        for line in data.splitlines():
            line = line.strip()
            if not line:
                continue
            kind, entry = _classify(line)
            if kind == "corrupt":
                continue
            pair = (entry["c"], entry["k"])
            if pair in survivors:
                result["dropped_duplicates"] += 1
                continue
            survivors[pair] = entry["v"]
    out = os.path.join(disk_dir, "memo-compacted.jsonl")
    tmp = out + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(b"".join(
                _encode_record(context, key, verdict)
                for (context, key), verdict in sorted(survivors.items())))
        os.replace(tmp, out)
        for path in inputs:
            if path != out:
                os.unlink(path)
                result["files_removed"] += 1
    except OSError as e:
        MEMO_DISK_ERRORS.inc()
        result["ok"] = False
        result["error"] = str(e)
        return result
    result["kept"] = len(survivors)
    return result
