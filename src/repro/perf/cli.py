"""``python -m repro memo`` — offline maintenance of the on-disk
verdict store.

Two subcommands over a ``--dir`` of ``memo-*.jsonl`` files::

    python -m repro memo fsck --dir /tmp/memo           # audit
    python -m repro memo compact --dir /tmp/memo        # rebuild

``fsck`` is read-only: it reports per-file valid/legacy/corrupt record
counts and torn tails, exiting 65 when corruption (or an unreadable
file) was found so scripts can gate on it.  ``compact`` rewrites every
surviving record — deduplicated, all checksummed — into one file and
removes the inputs; run it only while no server or campaign is
appending to the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .memo import compact, fsck

#: exit codes: 0 clean, 65 corruption found (fsck), 70 compact failed.
EXIT_CORRUPT = 65
EXIT_FAILED = 70


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro memo",
        description="Audit or rebuild the on-disk refinement-verdict "
                    "store.")
    sub = p.add_subparsers(dest="cmd", required=True)
    for name, doc in (("fsck", "audit the store (read-only)"),
                      ("compact", "rewrite the store as one "
                                  "deduplicated, checksummed file")):
        sp = sub.add_parser(name, help=doc)
        sp.add_argument("--dir", required=True, dest="memo_dir",
                        help="memo store directory")
        sp.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    return p


def _print_fsck(report: dict) -> None:
    print(f"memo fsck: {report['dir']}")
    for entry in report["files"]:
        torn = " +torn-tail" if entry.get("torn_tail") else ""
        if "error" in entry:
            print(f"  {entry['file']}: READ ERROR: {entry['error']}")
            continue
        print(f"  {entry['file']}: {entry['valid']} valid, "
              f"{entry['legacy']} legacy, {entry['corrupt']} "
              f"corrupt{torn}")
    print(f"total: {report['valid']} valid, {report['legacy']} legacy, "
          f"{report['corrupt']} corrupt, {report['torn_tails']} torn "
          f"tail(s), {report['read_errors']} read error(s)")
    print("status: " + ("clean" if report["ok"] else "CORRUPTION FOUND"))


def _print_compact(result: dict) -> None:
    print(f"memo compact: {result['dir']}")
    print(f"  kept {result['kept']} record(s); dropped "
          f"{result['dropped_corrupt']} corrupt, "
          f"{result['dropped_duplicates']} duplicate(s); removed "
          f"{result['files_removed']} input file(s)")
    if not result["ok"]:
        why = result.get("error", "read errors during scan")
        print(f"  FAILED: {why}", file=sys.stderr)


def memo_main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.cmd == "fsck":
        report = fsck(args.memo_dir)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            _print_fsck(report)
        return 0 if report["ok"] else EXIT_CORRUPT
    result = compact(args.memo_dir)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _print_compact(result)
    return 0 if result["ok"] else EXIT_FAILED
