"""Performance layer: memoization for the validation hot path.

The expensive artifacts of a refinement check are pure functions of
hashable inputs, so each gets a cache at its own layer:

* :class:`RefinementMemo` (this package) — whole-check verdicts, keyed
  by canonical IR hash × campaign context, with an optional on-disk
  layer shared across shards and runs;
* :class:`repro.semantics.interp.PlanCache` — compiled execution plans,
  shared across the inputs and oracle paths of one check;
* :class:`repro.smt.solver.SolverSession` — bit-blasted circuits and
  learned clauses, shared across a sequence of SMT queries.
"""

from .memo import (
    MEMO_DISK_ERRORS,
    MEMO_DISK_LOADED,
    MEMO_HITS,
    MEMO_MISSES,
    MEMO_QUARANTINED,
    RefinementMemo,
    compact,
    fsck,
)

__all__ = [
    "MEMO_DISK_ERRORS",
    "MEMO_DISK_LOADED",
    "MEMO_HITS",
    "MEMO_MISSES",
    "MEMO_QUARANTINED",
    "RefinementMemo",
    "compact",
    "fsck",
]
