"""Bit-precise memory model (Figure 5's ``Mem``).

Memory partially maps 32-bit byte addresses to bytes of 8 bits, each bit
in ``{0, 1, poison, undef}``.  Uninitialized bits read as undef (OLD
semantics) or poison (NEW semantics) — the distinction at the core of
the bit-field lowering problem (Section 5.3).

Accesses must fall entirely within an allocated block; anything else is
immediate UB (reported by returning ``None`` / ``False``, mapped to UB by
the interpreter — mirroring Figure 5's failing ``Load``/``Store``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .domains import Bit, Bits, PBIT, UBIT


class Block:
    __slots__ = ("addr", "size", "name")

    def __init__(self, addr: int, size: int, name: str = ""):
        self.addr = addr
        self.size = size  # bytes
        self.name = name

    def contains(self, addr: int, nbytes: int) -> bool:
        return self.addr <= addr and addr + nbytes <= self.addr + self.size

    def __repr__(self) -> str:
        return f"<Block {self.name or hex(self.addr)}: {self.size}B>"


class Memory:
    """Byte-addressed, bit-granular memory with block-based validity."""

    BASE = 0x1000
    ALIGN = 16

    def __init__(self, uninit_bit: Bit):
        self._bytes: Dict[int, Tuple[Bit, ...]] = {}
        self._blocks: List[Block] = []
        self._next = self.BASE
        self._uninit_bit = uninit_bit

    # -- allocation ----------------------------------------------------------
    def alloc(self, size_bytes: int, name: str = "") -> int:
        size_bytes = max(1, size_bytes)
        addr = self._next
        self._next = (addr + size_bytes + self.ALIGN - 1) & ~(self.ALIGN - 1)
        self._blocks.append(Block(addr, size_bytes, name))
        return addr

    def free_block(self, addr: int) -> None:
        """Deallocate (used when a stack frame is popped)."""
        self._blocks = [b for b in self._blocks if b.addr != addr]

    def block_at(self, addr: int, nbytes: int) -> Optional[Block]:
        for block in self._blocks:
            if block.contains(addr, nbytes):
                return block
        return None

    def is_valid(self, addr: int, nbits: int) -> bool:
        nbytes = (nbits + 7) // 8
        return self.block_at(addr, nbytes) is not None

    # -- raw byte access ---------------------------------------------------------
    def _get_byte(self, addr: int) -> Tuple[Bit, ...]:
        byte = self._bytes.get(addr)
        if byte is None:
            byte = (self._uninit_bit,) * 8
        return byte

    # -- typed access (sizes in bits, like Figure 5) ------------------------------
    def load_bits(self, addr: int, nbits: int) -> Optional[Bits]:
        """``Load(M, p, sz)``: ``None`` means the access fails (=> UB)."""
        if not self.is_valid(addr, nbits):
            return None
        out: List[Bit] = []
        nbytes = (nbits + 7) // 8
        for i in range(nbytes):
            out.extend(self._get_byte(addr + i))
        return tuple(out[:nbits])

    def store_bits(self, addr: int, bits: Bits) -> bool:
        """``Store(M, p, b)``: ``False`` means the access fails (=> UB).

        A store of a non-byte-multiple width leaves the trailing padding
        bits of the final byte untouched."""
        nbits = len(bits)
        if not self.is_valid(addr, nbits):
            return False
        nbytes = (nbits + 7) // 8
        flat: List[Bit] = list(bits)
        # Preserve existing padding bits in the last byte.
        total = nbytes * 8
        if total > nbits:
            last = self._get_byte(addr + nbytes - 1)
            flat.extend(last[nbits % 8:])
        for i in range(nbytes):
            self._bytes[addr + i] = tuple(flat[i * 8:(i + 1) * 8])
        return True

    # -- observation -----------------------------------------------------------
    def snapshot_block(self, addr: int) -> Optional[Bits]:
        block = self.block_at(addr, 1)
        if block is None:
            return None
        out: List[Bit] = []
        for i in range(block.size):
            out.extend(self._get_byte(block.addr + i))
        return tuple(out)

    def clone(self) -> "Memory":
        m = Memory(self._uninit_bit)
        m._bytes = dict(self._bytes)
        m._blocks = list(self._blocks)
        m._next = self._next
        return m


def uninit_bit_for(uninit_is_undef: bool) -> Bit:
    return UBIT if uninit_is_undef else PBIT
