"""Concrete evaluation of individual operations, with the poison rules.

These functions operate on *expanded* scalar operands: Python ints or
:data:`~repro.semantics.domains.POISON` (undef has already been
concretized by the interpreter's per-use expansion).  They return a
scalar result, or raise :class:`UBError` for immediate UB (division by
zero, etc.), or return an undef/poison scalar for deferred UB.

Because behavior enumeration executes the same instruction millions of
times across inputs × oracle paths, the module also exposes
*specializers* — :func:`binop_evaluator`, :func:`icmp_evaluator`,
:func:`cast_evaluator` — that bake the opcode, bitwidth, flags, and
semantics-config decisions into a closure once per instruction.  The
interpreter's execution plan (:mod:`repro.semantics.interp`) resolves
these at function entry, so the per-step cost is one call with no
opcode chain, flag test, or config lookup.
"""

from __future__ import annotations

from typing import Callable, Union

from ..ir.instructions import IcmpPred, Opcode
from .config import SemanticsConfig, ShiftOutOfRange
from .domains import POISON, PartialUndef, Scalar, full_undef


class UBError(Exception):
    """Immediate undefined behavior was executed."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _to_signed(v: int, width: int) -> int:
    if v >= 1 << (width - 1):
        return v - (1 << width)
    return v


def _wrap(v: int, width: int) -> int:
    return v & ((1 << width) - 1)


def _signed_overflows(v: int, width: int) -> bool:
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return not (lo <= v <= hi)


def eval_binop(opcode: Opcode, a: Scalar, b: Scalar, width: int,
               config: SemanticsConfig, nsw: bool = False, nuw: bool = False,
               exact: bool = False) -> Scalar:
    """Evaluate one binary operation on expanded scalars.

    Division-family checks come first because a zero or poison divisor is
    *immediate* UB even when the dividend is poison."""
    if opcode in (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM):
        return _eval_division(opcode, a, b, width, exact)

    if a is POISON or b is POISON:
        return POISON
    assert isinstance(a, int) and isinstance(b, int)

    if opcode is Opcode.ADD:
        result = a + b
        if nuw and result >= (1 << width):
            return POISON
        if nsw and _signed_overflows(_to_signed(a, width) + _to_signed(b, width),
                                     width):
            return POISON
        return _wrap(result, width)

    if opcode is Opcode.SUB:
        result = a - b
        if nuw and result < 0:
            return POISON
        if nsw and _signed_overflows(_to_signed(a, width) - _to_signed(b, width),
                                     width):
            return POISON
        return _wrap(result, width)

    if opcode is Opcode.MUL:
        result = a * b
        if nuw and result >= (1 << width):
            return POISON
        if nsw and _signed_overflows(_to_signed(a, width) * _to_signed(b, width),
                                     width):
            return POISON
        return _wrap(result, width)

    if opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        return _eval_shift(opcode, a, b, width, config, nsw, nuw, exact)

    if opcode is Opcode.AND:
        return a & b
    if opcode is Opcode.OR:
        return a | b
    if opcode is Opcode.XOR:
        return a ^ b

    raise NotImplementedError(f"eval_binop: {opcode}")


def _eval_division(opcode: Opcode, a: Scalar, b: Scalar, width: int,
                   exact: bool) -> Scalar:
    if b is POISON:
        raise UBError(f"{opcode.value} by poison")
    assert isinstance(b, int)
    if b == 0:
        raise UBError(f"{opcode.value} by zero")
    if a is POISON:
        return POISON
    assert isinstance(a, int)

    if opcode is Opcode.UDIV:
        q = a // b
        if exact and a % b != 0:
            return POISON
        return q
    if opcode is Opcode.UREM:
        return a % b

    sa, sb = _to_signed(a, width), _to_signed(b, width)
    if sa == -(1 << (width - 1)) and sb == -1:
        raise UBError(f"{opcode.value} overflow (INT_MIN / -1)")
    # C-style truncating division.
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    r = sa - q * sb
    if opcode is Opcode.SDIV:
        if exact and r != 0:
            return POISON
        return _wrap(q, width)
    return _wrap(r, width)


def _eval_shift(opcode: Opcode, a: int, b: int, width: int,
                config: SemanticsConfig, nsw: bool, nuw: bool,
                exact: bool) -> Scalar:
    if b >= width:
        # Section 2.3: out-of-range shifts are deferred UB because
        # hardware disagrees about them.  OLD: undef; NEW: poison.
        if config.shift_oob is ShiftOutOfRange.UNDEF:
            return full_undef(width)
        return POISON

    if opcode is Opcode.SHL:
        result = _wrap(a << b, width)
        if nuw and (a << b) >= (1 << width):
            return POISON
        if nsw:
            # Poison unless the shift preserves the signed value:
            # all shifted-out bits must equal the resulting sign bit.
            if _to_signed(result, width) >> b != _to_signed(a, width):
                return POISON
        return result
    if opcode is Opcode.LSHR:
        if exact and (a & ((1 << b) - 1)) != 0:
            return POISON
        return a >> b
    if opcode is Opcode.ASHR:
        if exact and (a & ((1 << b) - 1)) != 0:
            return POISON
        return _wrap(_to_signed(a, width) >> b, width)
    raise NotImplementedError(f"eval_shift: {opcode}")


def eval_icmp(pred: IcmpPred, a: Scalar, b: Scalar, width: int) -> Scalar:
    if a is POISON or b is POISON:
        return POISON
    assert isinstance(a, int) and isinstance(b, int)
    if pred.is_signed:
        a, b = _to_signed(a, width), _to_signed(b, width)
    table = {
        IcmpPred.EQ: a == b,
        IcmpPred.NE: a != b,
        IcmpPred.UGT: a > b,
        IcmpPred.UGE: a >= b,
        IcmpPred.ULT: a < b,
        IcmpPred.ULE: a <= b,
        IcmpPred.SGT: a > b,
        IcmpPred.SGE: a >= b,
        IcmpPred.SLT: a < b,
        IcmpPred.SLE: a <= b,
    }
    return int(table[pred])


def eval_cast(opcode: Opcode, a: Scalar, src_width: int,
              dest_width: int) -> Scalar:
    if a is POISON:
        return POISON
    assert isinstance(a, int)
    if opcode is Opcode.ZEXT:
        return a
    if opcode is Opcode.SEXT:
        return _wrap(_to_signed(a, src_width), dest_width)
    if opcode is Opcode.TRUNC:
        return _wrap(a, dest_width)
    if opcode in (Opcode.PTRTOINT, Opcode.INTTOPTR):
        return _wrap(a, dest_width)
    raise NotImplementedError(f"eval_cast: {opcode}")


# ---------------------------------------------------------------------------
# Specializers: per-instruction closures for the interpreter fast path.
# Each returned callable must be semantically identical to the generic
# eval_* function it specializes (the tests cross-check them).
# ---------------------------------------------------------------------------

#: an evaluator over two expanded scalars
BinopFn = Callable[[Scalar, Scalar], Scalar]

_DIVISION_OPS = (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM)
_SHIFT_OPS = (Opcode.SHL, Opcode.LSHR, Opcode.ASHR)


def binop_evaluator(opcode: Opcode, width: int, config: SemanticsConfig,
                    nsw: bool = False, nuw: bool = False,
                    exact: bool = False) -> BinopFn:
    """A closure computing ``eval_binop(opcode, ·, ·, width, config,
    flags)`` with every static decision resolved up front."""
    if opcode in _DIVISION_OPS:
        def div(a: Scalar, b: Scalar) -> Scalar:
            return _eval_division(opcode, a, b, width, exact)
        return div
    if opcode in _SHIFT_OPS:
        def shift(a: Scalar, b: Scalar) -> Scalar:
            if a is POISON or b is POISON:
                return POISON
            return _eval_shift(opcode, a, b, width, config, nsw, nuw, exact)
        return shift

    mask = (1 << width) - 1
    if not nsw and not nuw:
        # The hot no-flags cases: straight wrap-around arithmetic.
        if opcode is Opcode.ADD:
            def add(a, b):
                if a is POISON or b is POISON:
                    return POISON
                return (a + b) & mask
            return add
        if opcode is Opcode.SUB:
            def sub(a, b):
                if a is POISON or b is POISON:
                    return POISON
                return (a - b) & mask
            return sub
        if opcode is Opcode.MUL:
            def mul(a, b):
                if a is POISON or b is POISON:
                    return POISON
                return (a * b) & mask
            return mul
    if opcode is Opcode.AND:
        def and_(a, b):
            if a is POISON or b is POISON:
                return POISON
            return a & b
        return and_
    if opcode is Opcode.OR:
        def or_(a, b):
            if a is POISON or b is POISON:
                return POISON
            return a | b
        return or_
    if opcode is Opcode.XOR:
        def xor(a, b):
            if a is POISON or b is POISON:
                return POISON
            return a ^ b
        return xor

    def generic(a: Scalar, b: Scalar) -> Scalar:
        return eval_binop(opcode, a, b, width, config,
                          nsw=nsw, nuw=nuw, exact=exact)
    return generic


_UNSIGNED_ICMP = {
    IcmpPred.EQ: lambda a, b: a == b,
    IcmpPred.NE: lambda a, b: a != b,
    IcmpPred.UGT: lambda a, b: a > b,
    IcmpPred.UGE: lambda a, b: a >= b,
    IcmpPred.ULT: lambda a, b: a < b,
    IcmpPred.ULE: lambda a, b: a <= b,
}

_SIGNED_ICMP = {
    IcmpPred.SGT: lambda a, b: a > b,
    IcmpPred.SGE: lambda a, b: a >= b,
    IcmpPred.SLT: lambda a, b: a < b,
    IcmpPred.SLE: lambda a, b: a <= b,
}


def icmp_evaluator(pred: IcmpPred, width: int) -> BinopFn:
    """A closure computing ``eval_icmp(pred, ·, ·, width)``."""
    cmp = _UNSIGNED_ICMP.get(pred)
    if cmp is not None:
        def unsigned(a, b):
            if a is POISON or b is POISON:
                return POISON
            return int(cmp(a, b))
        return unsigned
    scmp = _SIGNED_ICMP[pred]
    half = 1 << (width - 1)
    full = 1 << width

    def signed(a, b):
        if a is POISON or b is POISON:
            return POISON
        if a >= half:
            a -= full
        if b >= half:
            b -= full
        return int(scmp(a, b))
    return signed


def cast_evaluator(opcode: Opcode, src_width: int,
                   dest_width: int) -> Callable[[Scalar], Scalar]:
    """A closure computing ``eval_cast(opcode, ·, src_w, dest_w)``."""
    if opcode is Opcode.ZEXT:
        def zext(a):
            return POISON if a is POISON else a
        return zext
    if opcode is Opcode.TRUNC or opcode in (Opcode.PTRTOINT,
                                            Opcode.INTTOPTR):
        mask = (1 << dest_width) - 1

        def trunc(a):
            return POISON if a is POISON else a & mask
        return trunc
    if opcode is Opcode.SEXT:
        half = 1 << (src_width - 1)
        full = 1 << src_width
        mask = (1 << dest_width) - 1

        def sext(a):
            if a is POISON:
                return POISON
            if a >= half:
                a -= full
            return a & mask
        return sext

    def generic(a: Scalar) -> Scalar:
        return eval_cast(opcode, a, src_width, dest_width)
    return generic
