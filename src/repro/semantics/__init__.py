"""Operational semantics: value domains, memory, interpreter, configs."""

from .config import (
    ALL_CONFIGS,
    NEW,
    OLD,
    OLD_GVN_VIEW,
    OLD_UNSWITCH_VIEW,
    BranchOnPoison,
    SelectSemantics,
    SemanticsConfig,
    ShiftOutOfRange,
)
from .domains import (
    Bits,
    PBIT,
    POISON,
    UBIT,
    PartialUndef,
    RuntimeValue,
    Scalar,
    bits_to_scalar,
    bits_to_value,
    format_value,
    full_undef,
    is_concrete,
    is_poison,
    is_undef,
    poison_value,
    scalar_to_bits,
    scalar_width,
    undef_value,
    value_to_bits,
)
from .eval import UBError, eval_binop, eval_cast, eval_icmp
from .interp import (
    Behavior,
    FuelExhausted,
    Interpreter,
    Oracle,
    PathLimitExceeded,
    enumerate_behaviors,
    run_once,
)
from .memory import Memory
from .vector import (
    VectorIneligible,
    VectorPlan,
    numpy_available,
    vector_binop_kernel,
    vector_cast_kernel,
    vector_icmp_kernel,
)

__all__ = [
    "ALL_CONFIGS", "NEW", "OLD", "OLD_GVN_VIEW", "OLD_UNSWITCH_VIEW",
    "BranchOnPoison", "SelectSemantics", "SemanticsConfig", "ShiftOutOfRange",
    "Bits", "PBIT", "POISON", "UBIT", "PartialUndef", "RuntimeValue",
    "Scalar", "bits_to_scalar", "bits_to_value", "format_value", "full_undef",
    "is_concrete", "is_poison", "is_undef", "poison_value", "scalar_to_bits",
    "scalar_width", "undef_value", "value_to_bits",
    "UBError", "eval_binop", "eval_cast", "eval_icmp",
    "Behavior", "FuelExhausted", "Interpreter", "Oracle", "PathLimitExceeded",
    "enumerate_behaviors", "run_once",
    "Memory",
    "VectorIneligible", "VectorPlan", "numpy_available",
    "vector_binop_kernel", "vector_cast_kernel", "vector_icmp_kernel",
]
