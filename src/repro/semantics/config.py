"""Semantics configuration: OLD (undef + poison) vs NEW (poison + freeze).

The paper's Section 3 shows that the OLD semantics was not one semantics
but a family of mutually inconsistent readings, each assumed by different
LLVM passes.  We therefore expose the contested choice points as knobs:

* ``branch_on_poison`` — UB (what GVN assumed) or a nondeterministic
  choice (what loop unswitching assumed);
* ``select_semantics`` — how ``select`` treats poison: like arithmetic
  (poison if *any* input is poison, what the LangRef implied and the
  select→or rewrite needs), conditional (only the chosen arm matters,
  what the phi→select rewrite needs), or UB on a poison condition (what
  branch→select equivalence under branch-on-poison-UB needs);
* ``shift_oob`` — out-of-range shift amounts give undef (OLD) or poison.

:data:`OLD` is LLVM-as-documented circa 2016; the variants
:data:`OLD_GVN_VIEW` and :data:`OLD_UNSWITCH_VIEW` are the two
incompatible readings from Section 3.3.  :data:`NEW` is the paper's
proposal (Section 4): no undef, branch-on-poison is UB, select is
conditional with a poison condition yielding poison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class BranchOnPoison(enum.Enum):
    UB = "ub"
    NONDET = "nondet"


class SelectSemantics(enum.Enum):
    #: poison if any of cond / both arms is poison (select ≡ arithmetic).
    ARITHMETIC = "arithmetic"
    #: poison cond => poison result; otherwise only the chosen arm matters
    #: (Figure 5 of the paper).
    CONDITIONAL = "conditional"
    #: poison cond => immediate UB (select ≡ branch when branch-on-poison
    #: is UB).
    UB_COND = "ub_cond"
    #: poison cond => nondeterministically pick an arm.
    NONDET_COND = "nondet_cond"


class ShiftOutOfRange(enum.Enum):
    UNDEF = "undef"
    POISON = "poison"


@dataclass(frozen=True)
class SemanticsConfig:
    """One point in the space of UB semantics."""

    name: str
    #: whether the undef value exists at all
    has_undef: bool
    branch_on_poison: BranchOnPoison
    select_semantics: SelectSemantics
    shift_oob: ShiftOutOfRange
    #: loads of uninitialized memory yield undef bits (OLD) or poison bits
    uninit_is_undef: bool

    def with_(self, **kwargs) -> "SemanticsConfig":
        return replace(self, **kwargs)

    @property
    def is_new(self) -> bool:
        return not self.has_undef


#: LLVM's documented pre-paper semantics, with the LangRef reading of
#: select and the loop-unswitching reading of branches.
OLD = SemanticsConfig(
    name="old",
    has_undef=True,
    branch_on_poison=BranchOnPoison.NONDET,
    select_semantics=SelectSemantics.ARITHMETIC,
    shift_oob=ShiftOutOfRange.UNDEF,
    uninit_is_undef=True,
)

#: The reading GVN needs: branch on poison is UB (Section 3.3).
OLD_GVN_VIEW = OLD.with_(
    name="old-gvn-view",
    branch_on_poison=BranchOnPoison.UB,
    select_semantics=SelectSemantics.UB_COND,
)

#: The reading loop unswitching needs: branch on poison is a
#: nondeterministic choice (Section 3.3).
OLD_UNSWITCH_VIEW = OLD.with_(name="old-unswitch-view")

#: The paper's proposal (Section 4).
NEW = SemanticsConfig(
    name="new",
    has_undef=False,
    branch_on_poison=BranchOnPoison.UB,
    select_semantics=SelectSemantics.CONDITIONAL,
    shift_oob=ShiftOutOfRange.POISON,
    uninit_is_undef=False,
)

ALL_CONFIGS = (OLD, OLD_GVN_VIEW, OLD_UNSWITCH_VIEW, NEW)
