"""Runtime value domains for the operational semantics (Figure 5).

Scalar runtime values are one of:

* a Python ``int`` in ``[0, 2^w)`` — a fully defined value;
* :data:`POISON` — the deferred-UB taint value;
* :class:`PartialUndef` — OLD-semantics only: a value some of whose bits
  are indeterminate.  ``PartialUndef(0, full_mask)`` is LLVM's ``undef``;
  partial masks arise from loading partially-initialized memory.  Each
  *computational use* of a ``PartialUndef`` picks fresh concrete bits
  (Section 3.1's "each use of undef can yield a different result").

Vector runtime values are tuples of scalar values, one per lane — this
per-lane structure is exactly what makes vector-based load widening sound
under the new semantics (Section 5.4).

Bit-level representation (the paper's ``ty↓`` / ``ty↑``): a bit is
``0``, ``1``, :data:`PBIT` (poison) or :data:`UBIT` (undef).  Memory
holds bits, so partially-poisoned / partially-undef words round-trip
exactly as in Figure 5.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from ..ir.types import IntType, PointerType, Type, VectorType


class _Poison:
    """Singleton scalar poison value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "poison"


POISON = _Poison()


class PartialUndef:
    """A scalar whose bits at positions in ``mask`` are undef.

    ``value`` holds the defined bits (undef positions are stored as 0).
    The all-bits-undef case represents LLVM's ``undef`` constant.
    """

    __slots__ = ("value", "mask", "width")

    def __init__(self, value: int, mask: int, width: int):
        if mask == 0:
            raise ValueError("PartialUndef requires a nonzero undef mask")
        full = (1 << width) - 1
        self.width = width
        self.mask = mask & full
        self.value = value & full & ~mask

    @property
    def is_fully_undef(self) -> bool:
        return self.mask == (1 << self.width) - 1

    def concretize(self, undef_bits: int) -> int:
        """Fill the undef positions with bits drawn from ``undef_bits``
        (compacted: bit i of ``undef_bits`` goes to the i-th set position
        of ``mask``)."""
        result = self.value
        j = 0
        m = self.mask
        pos = 0
        while m:
            if m & 1:
                if (undef_bits >> j) & 1:
                    result |= 1 << pos
                j += 1
            m >>= 1
            pos += 1
        return result

    def num_undef_bits(self) -> int:
        return bin(self.mask).count("1")

    def __repr__(self) -> str:
        if self.is_fully_undef:
            return "undef"
        return f"undef(value={self.value:#x}, mask={self.mask:#x})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PartialUndef)
            and other.value == self.value
            and other.mask == self.mask
            and other.width == self.width
        )

    def __hash__(self) -> int:
        return hash((PartialUndef, self.value, self.mask, self.width))


#: A scalar runtime value.
Scalar = Union[int, _Poison, PartialUndef]
#: Any runtime value (vectors are tuples of scalars).
RuntimeValue = Union[Scalar, Tuple[Scalar, ...]]


def full_undef(width: int) -> PartialUndef:
    return PartialUndef(0, (1 << width) - 1, width)


def is_poison(v: RuntimeValue) -> bool:
    return v is POISON


def is_undef(v: RuntimeValue) -> bool:
    return isinstance(v, PartialUndef)


def is_concrete(v: RuntimeValue) -> bool:
    return isinstance(v, int)


def scalar_width(ty: Type) -> int:
    if isinstance(ty, IntType):
        return ty.bits
    if isinstance(ty, PointerType):
        return PointerType.ADDRESS_BITS
    raise TypeError(f"{ty} is not a scalar type")


# ---------------------------------------------------------------------------
# Bit-level representation: the paper's ty↓ / ty↑ (Figure 5).
# ---------------------------------------------------------------------------

class _PoisonBit:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "p"


class _UndefBit:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "u"


PBIT = _PoisonBit()
UBIT = _UndefBit()

#: A single memory/representation bit.
Bit = Union[int, _PoisonBit, _UndefBit]
Bits = Tuple[Bit, ...]


def scalar_to_bits(value: Scalar, width: int) -> Bits:
    """``ty↓`` for scalar types: poison becomes all-poison bits; defined
    values take their standard two's-complement representation (bit 0 is
    the LSB); partial undef becomes undef bits at the masked positions."""
    if value is POISON:
        return (PBIT,) * width
    if isinstance(value, PartialUndef):
        return tuple(
            UBIT if (value.mask >> i) & 1 else (value.value >> i) & 1
            for i in range(width)
        )
    return tuple((value >> i) & 1 for i in range(width))


def bits_to_scalar(bits: Bits) -> Scalar:
    """``ty↑`` for scalar types: any poison bit makes the whole scalar
    poison (Figure 5); otherwise undef bits make it partially undef."""
    if any(b is PBIT for b in bits):
        return POISON
    mask = 0
    value = 0
    for i, b in enumerate(bits):
        if b is UBIT:
            mask |= 1 << i
        elif b:
            value |= 1 << i
    if mask:
        return PartialUndef(value, mask, len(bits))
    return value


def value_to_bits(value: RuntimeValue, ty: Type) -> Bits:
    """``ty↓``: vectors convert element-wise and concatenate."""
    if isinstance(ty, VectorType):
        assert isinstance(value, tuple) and len(value) == ty.count
        out: list = []
        w = scalar_width(ty.elem)
        for lane in value:
            out.extend(scalar_to_bits(lane, w))
        return tuple(out)
    return scalar_to_bits(value, scalar_width(ty))


def bits_to_value(bits: Bits, ty: Type) -> RuntimeValue:
    """``ty↑``: vectors convert element-wise, so a poison bit only taints
    its own lane — the property Section 5.4's load widening relies on."""
    if isinstance(ty, VectorType):
        w = scalar_width(ty.elem)
        assert len(bits) == ty.count * w
        return tuple(
            bits_to_scalar(bits[i * w:(i + 1) * w]) for i in range(ty.count)
        )
    assert len(bits) == scalar_width(ty)
    return bits_to_scalar(bits)


def poison_value(ty: Type) -> RuntimeValue:
    if isinstance(ty, VectorType):
        return (POISON,) * ty.count
    return POISON


def undef_value(ty: Type) -> RuntimeValue:
    if isinstance(ty, VectorType):
        return tuple(full_undef(scalar_width(ty.elem)) for _ in range(ty.count))
    return full_undef(scalar_width(ty))


def format_scalar(v: Scalar, width: int) -> str:
    if v is POISON:
        return "poison"
    if isinstance(v, PartialUndef):
        return repr(v)
    hi = 1 << (width - 1)
    signed = v - (1 << width) if width > 1 and v >= hi else v
    return str(signed) if signed != v else str(v)


def format_value(v: RuntimeValue, ty: Type) -> str:
    if isinstance(ty, VectorType):
        w = scalar_width(ty.elem)
        return "<" + ", ".join(format_scalar(x, w) for x in v) + ">"
    return format_scalar(v, scalar_width(ty))
