"""Numpy lowering of loop-free functions into lane-parallel array programs.

The exhaustive checker's scaling axis is raw checks/sec (Section 6: the
paper validated every small function over tiny bitwidths), and the
scalar interpreter pays Python dispatch once per (input, oracle path,
instruction).  For the corpus shapes opt-fuzz actually generates —
loop-free functions with at most a handful of acyclic paths — the whole
input space fits in one set of numpy arrays, so every instruction can
execute over *all* input tuples at once:

* **value lanes** — one ``int64`` array per SSA value, lane ``i``
  holding the value on input tuple ``i``;
* **poison lanes** — a parallel boolean array (poison is whole-scalar
  in this IR, so one bit per lane suffices; the bit-level ``ty↓`` view
  is recovered only when a behavior must be materialized);
* **UB mask** — a boolean accumulator of lanes whose execution hit
  immediate UB (division by zero, branch on poison, ``unreachable``);
  once set it overrides whatever the value lanes contain.

Nondeterminism is handled outside the array program: ``freeze`` of a
poison lane is the only choice point a lowered function can contain
(undef does not exist under eligible configs), so the driver enumerates
the small cross product of freeze choices and runs the plan once per
combination — the union over combinations is exactly the behavior set
the scalar oracle enumerates.

Branching functions are lowered path-at-a-time: every acyclic
entry→exit path becomes straight-line code executed under an *active*
lane mask (the conjunction of its branch conditions); each lane follows
exactly one path per choice combination, and a poison branch condition
marks the lane UB, mirroring the fixed semantics.

Everything outside this fragment — loops, memory, calls, vectors,
undef-bearing configs — raises :class:`VectorIneligible`, and the
caller falls back to the scalar interpreter, which remains the
differential oracle (``repro.refine`` cross-checks the two engines).

numpy is an optional dependency (the ``[vector]`` extra): when it is
missing, :func:`numpy_available` is ``False`` and every lowering raises
``VectorIneligible("numpy-unavailable")`` — the scalar path keeps the
stack fully functional.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..diag import Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    UnreachableInst,
)
from ..ir.types import IntType, Type
from ..ir.values import ConstantInt, PoisonValue, UndefValue, Value
from .config import BranchOnPoison, SelectSemantics, SemanticsConfig, ShiftOutOfRange

NUM_PLANS_LOWERED = Statistic(
    "vector", "num-plans-lowered",
    "Functions lowered into numpy-vectorized execution plans")
NUM_PLAN_RUNS = Statistic(
    "vector", "num-plan-runs",
    "Vector plan executions (one per freeze-choice combination)")

#: widest integer the kernels handle without int64 overflow risk
#: (mul/shl of two w-bit values must fit: 2w + 1 < 63).
MAX_WIDTH = 16
#: acyclic entry→exit paths beyond this are not worth lowering.
MAX_PATHS = 8
#: cap on the freeze-choice cross product one check may enumerate.
MAX_FREEZE_COMBOS = 64

_DIVISION_OPS = (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM)
_SHIFT_OPS = (Opcode.SHL, Opcode.LSHR, Opcode.ASHR)


def numpy_available() -> bool:
    return _np is not None


class VectorIneligible(Exception):
    """This (function, config) pair cannot be vector-lowered.

    ``reason`` is a short stable slug (suitable as a stat suffix);
    the message carries the human detail.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


def _require_numpy() -> None:
    if _np is None:
        raise VectorIneligible(
            "numpy-unavailable",
            "numpy is not installed (pip install 'repro[vector]')")


def _signed(val, width: int):
    """Two's-complement reinterpretation of lanes in ``[0, 2^w)``."""
    half = 1 << (width - 1)
    full = 1 << width
    return val - (val >= half) * full


# ---------------------------------------------------------------------------
# Per-opcode kernels, mirroring the eval.py specializers lane-wise.
#
# A kernel maps operand lanes ``(aval, apois[, bval, bpois])`` to
# ``(val, pois, ub)`` where ``ub`` is None for opcodes that cannot
# trigger immediate UB.  Value lanes are always masked into [0, 2^w),
# so garbage under poison/UB lanes stays bounded; the caller masks
# ``ub`` with its active-lane mask before accumulating.
# ---------------------------------------------------------------------------

#: (val, pois, ub) lane triple.
KernelResult = Tuple[object, object, Optional[object]]
BinopKernel = Callable[[object, object, object, object], KernelResult]


def vector_binop_kernel(opcode: Opcode, width: int,
                        config: SemanticsConfig,
                        nsw: bool = False, nuw: bool = False,
                        exact: bool = False) -> BinopKernel:
    """Lane-parallel analog of :func:`repro.semantics.eval.binop_evaluator`.

    Must agree with ``eval_binop`` on every lane (the hypothesis suite
    in ``tests/semantics/test_vector_kernels.py`` holds the two to
    element-wise equality over random widths, flags, and poison lanes).
    """
    _require_numpy()
    np = _np
    mask = (1 << width) - 1
    half = 1 << (width - 1)
    full = 1 << width

    if opcode in _DIVISION_OPS:
        signed_op = opcode in (Opcode.SDIV, Opcode.SREM)

        def div(aval, apois, bval, bpois):
            # A zero or poison divisor is immediate UB even when the
            # dividend is poison (eval._eval_division's ordering).
            ub = bpois | (bval == 0)
            if signed_op:
                sa = _signed(aval, width)
                sb = _signed(bval, width)
                ub = ub | (~ub & ~apois & (sa == -half) & (sb == -1))
                sb_safe = np.where(ub, 1, sb)
                q_abs = np.abs(sa) // np.abs(sb_safe)
                q = np.where((sa < 0) != (sb_safe < 0), -q_abs, q_abs)
                r = sa - q * sb_safe
                pois = apois
                if opcode is Opcode.SDIV:
                    if exact:
                        pois = pois | (r != 0)
                    val = q & mask
                else:
                    val = r & mask
            else:
                b_safe = np.where(ub, 1, bval)
                pois = apois
                if opcode is Opcode.UDIV:
                    if exact:
                        pois = pois | (aval % b_safe != 0)
                    val = aval // b_safe
                else:
                    val = aval % b_safe
            return np.where(pois | ub, 0, val), pois, ub
        return div

    if opcode in _SHIFT_OPS:
        if config.shift_oob is ShiftOutOfRange.UNDEF:
            # Out-of-range shifts yield *undef* under this config; the
            # lane model has no undef, so the whole config is
            # vector-ineligible for shift-bearing functions.
            raise VectorIneligible(
                "shift-oob-undef",
                "out-of-range shifts produce undef under "
                f"config {config.name!r}")

        def shift(aval, apois, bval, bpois):
            oob = bval >= width
            pois = apois | bpois | oob
            b_safe = np.where(oob, 0, bval)
            if opcode is Opcode.SHL:
                raw = aval << b_safe
                val = raw & mask
                if nuw:
                    pois = pois | (raw >= full)
                if nsw:
                    pois = pois | (
                        (_signed(val, width) >> b_safe)
                        != _signed(aval, width))
            else:
                if exact:
                    pois = pois | ((aval & ((1 << b_safe) - 1)) != 0)
                if opcode is Opcode.LSHR:
                    val = aval >> b_safe
                else:
                    val = (_signed(aval, width) >> b_safe) & mask
            return np.where(pois, 0, val), pois, None
        return shift

    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
        def arith(aval, apois, bval, bpois):
            pois = apois | bpois
            if opcode is Opcode.ADD:
                raw = aval + bval
                if nuw:
                    pois = pois | (raw >= full)
            elif opcode is Opcode.SUB:
                raw = aval - bval
                if nuw:
                    pois = pois | (raw < 0)
            else:
                raw = aval * bval
                if nuw:
                    pois = pois | (raw >= full)
            if nsw:
                sa = _signed(aval, width)
                sb = _signed(bval, width)
                if opcode is Opcode.ADD:
                    s = sa + sb
                elif opcode is Opcode.SUB:
                    s = sa - sb
                else:
                    s = sa * sb
                pois = pois | (s < -half) | (s > half - 1)
            return np.where(pois, 0, raw & mask), pois, None
        return arith

    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
        def bitwise(aval, apois, bval, bpois):
            pois = apois | bpois
            if opcode is Opcode.AND:
                val = aval & bval
            elif opcode is Opcode.OR:
                val = aval | bval
            else:
                val = aval ^ bval
            return np.where(pois, 0, val), pois, None
        return bitwise

    raise VectorIneligible("unsupported-op",
                           f"no vector kernel for {opcode.value}")


def vector_icmp_kernel(pred: IcmpPred, width: int) -> BinopKernel:
    """Lane-parallel analog of :func:`repro.semantics.eval.icmp_evaluator`."""
    _require_numpy()
    np = _np

    def icmp(aval, apois, bval, bpois):
        pois = apois | bpois
        a, b = aval, bval
        if pred.is_signed:
            a = _signed(a, width)
            b = _signed(b, width)
        if pred in (IcmpPred.EQ,):
            bits = a == b
        elif pred in (IcmpPred.NE,):
            bits = a != b
        elif pred in (IcmpPred.UGT, IcmpPred.SGT):
            bits = a > b
        elif pred in (IcmpPred.UGE, IcmpPred.SGE):
            bits = a >= b
        elif pred in (IcmpPred.ULT, IcmpPred.SLT):
            bits = a < b
        else:
            bits = a <= b
        return np.where(pois, 0, bits * 1), pois, None
    return icmp


def vector_cast_kernel(opcode: Opcode, src_width: int,
                       dest_width: int) -> Callable[[object, object],
                                                    KernelResult]:
    """Lane-parallel analog of :func:`repro.semantics.eval.cast_evaluator`."""
    _require_numpy()
    np = _np
    dest_mask = (1 << dest_width) - 1

    if opcode is Opcode.ZEXT:
        def zext(aval, apois):
            return np.where(apois, 0, aval), apois, None
        return zext
    if opcode is Opcode.TRUNC:
        def trunc(aval, apois):
            return np.where(apois, 0, aval & dest_mask), apois, None
        return trunc
    if opcode is Opcode.SEXT:
        def sext(aval, apois):
            return np.where(apois, 0,
                            _signed(aval, src_width) & dest_mask), apois, None
        return sext
    raise VectorIneligible("unsupported-op",
                           f"no vector kernel for cast {opcode.value}")


# ---------------------------------------------------------------------------
# Lowering: Function -> VectorPlan (straight-line programs per acyclic path).
# ---------------------------------------------------------------------------

class _LaneState:
    """Mutable per-path execution state."""

    __slots__ = ("active", "ub")

    def __init__(self, active, ub):
        self.active = active
        self.ub = ub


def _int_width(ty: Type, what: str) -> int:
    if not isinstance(ty, IntType):
        raise VectorIneligible("non-int-type",
                               f"{what} has non-integer type {ty}")
    if ty.bits > MAX_WIDTH:
        raise VectorIneligible("width",
                               f"{what} is {ty.bits} bits wide "
                               f"(vector cap {MAX_WIDTH})")
    return ty.bits


def _compile_fetch(op: Value, config: SemanticsConfig):
    """``fetch(env) -> (val, pois)`` for one operand; constants fold to
    broadcastable Python scalars."""
    if isinstance(op, ConstantInt):
        # numpy scalars, not Python ints/bools: ``~`` on a Python bool
        # is integer complement (``~False == -1``), which silently
        # turns downstream masks into int64 lanes.
        const = _np.int64(op.value)

        def fetch_const(env):
            return const, _np.False_
        return fetch_const
    if isinstance(op, (PoisonValue, UndefValue)):
        # Eligible configs have no undef, so an undef constant executes
        # as poison (the Section 4 migration story — exactly what the
        # scalar interpreter does when config.has_undef is False).
        def fetch_poison(env):
            return _np.int64(0), _np.True_
        return fetch_poison

    def fetch_reg(env):
        return env[op]
    return fetch_reg


class _PathProgram:
    """One acyclic entry→exit path, compiled to closures."""

    __slots__ = ("steps", "ret_fetch", "unreachable")

    def __init__(self):
        #: ``step(env, state) -> None`` closures, in execution order.
        self.steps: List[Callable] = []
        #: fetch for the returned value; None for ``ret void`` paths.
        self.ret_fetch: Optional[Callable] = None
        #: path ends at ``unreachable`` (active lanes are UB).
        self.unreachable = False


class VectorPlan:
    """A function lowered for one semantics configuration.

    ``run`` executes one freeze-choice combination over all lanes;
    drivers enumerate :attr:`freeze_spaces` combinations and union the
    per-lane outcomes.
    """

    __slots__ = ("fn", "config", "paths", "freeze_spaces", "ret_width",
                 "max_path_steps")

    def __init__(self, fn: Function, config: SemanticsConfig,
                 max_choices: int = 24, fuel: int = 10_000):
        _require_numpy()
        self.fn = fn
        self.config = config
        _check_config(fn, config)
        #: choice cardinality per freeze instruction, in block order.
        self.freeze_spaces: List[int] = []
        freeze_index: Dict[Instruction, int] = {}
        for block in fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, FreezeInst):
                    w = _int_width(inst.type, f"freeze {inst.ref()}")
                    freeze_index[inst] = len(self.freeze_spaces)
                    self.freeze_spaces.append(1 << w)
        if len(self.freeze_spaces) > max_choices:
            raise VectorIneligible(
                "choice-points",
                f"{len(self.freeze_spaces)} freeze choice points exceed "
                f"max_choices={max_choices}")

        self.ret_width = (None if fn.return_type.is_void
                          else _int_width(fn.return_type, "return"))
        for arg in fn.args:
            _int_width(arg.type, f"argument {arg.ref()}")

        block_paths = _enumerate_paths(fn)
        self.paths = [_compile_path(p, config, freeze_index)
                      for p in block_paths]
        self.max_path_steps = max(
            sum(len(b.instructions) - len(b.phis()) for b in p)
            for p in block_paths
        )
        if self.max_path_steps >= fuel:
            raise VectorIneligible(
                "fuel", f"longest path needs {self.max_path_steps} steps "
                        f"with fuel={fuel}")
        NUM_PLANS_LOWERED.inc()

    def run(self, arg_vals: Sequence, arg_pois: Sequence,
            choices: Sequence[int]):
        """Execute all lanes under one freeze-choice vector.

        Returns ``(ret_val, ret_pois, ub)`` int64/bool/bool arrays; for
        void functions ``ret_val``/``ret_pois`` are all-zero (every
        non-UB lane observes the same ``ret void`` behavior).
        """
        np = _np
        NUM_PLAN_RUNS.inc()
        n = len(arg_vals[0]) if arg_vals else 1
        base_env: Dict[Value, Tuple[object, object]] = {}
        for arg, val, pois in zip(self.fn.args, arg_vals, arg_pois):
            base_env[arg] = (val, pois)
        ub = np.zeros(n, dtype=bool)
        ret_val = np.zeros(n, dtype=np.int64)
        ret_pois = np.zeros(n, dtype=bool)
        covered = np.zeros(n, dtype=bool)
        for path in self.paths:
            env = dict(base_env)
            env["__choices__"] = choices
            state = _LaneState(np.ones(n, dtype=bool),
                               np.zeros(n, dtype=bool))
            for step in path.steps:
                step(env, state)
            ub |= state.ub
            if path.unreachable:
                ub |= state.active
                continue
            take = state.active
            covered |= take
            if path.ret_fetch is not None:
                val, pois = path.ret_fetch(env)
                ret_val = np.where(take, val, ret_val)
                ret_pois = np.where(take, pois, ret_pois)
            else:
                covered |= take
        if not bool(np.all(covered | ub)):
            # Every lane must either conclude on some path or be UB; a
            # gap means the lowering missed a control-flow case.  Fall
            # back rather than risk a wrong verdict.
            raise VectorIneligible(
                "lane-coverage",
                f"lowering left lanes of @{self.fn.name} unassigned")
        return ret_val, ret_pois, ub


def _check_config(fn: Function, config: SemanticsConfig) -> None:
    if config.has_undef:
        raise VectorIneligible(
            "config-undef",
            f"config {config.name!r} has undef values (per-use "
            f"expansion is not lane-parallel)")
    module = fn.module
    if module is not None and module.globals:
        raise VectorIneligible(
            "globals", "module has global variables (memory observables)")


def _enumerate_paths(fn: Function) -> List[List[BasicBlock]]:
    """All acyclic entry→exit block sequences, or raise."""
    paths: List[List[BasicBlock]] = []
    stack: List[Tuple[BasicBlock, List[BasicBlock]]] = [(fn.entry, [])]
    while stack:
        block, prefix = stack.pop()
        if block in prefix:
            raise VectorIneligible("cfg-loop",
                                   f"@{fn.name} has a CFG cycle through "
                                   f"%{block.name}")
        path = prefix + [block]
        term = block.instructions[-1] if block.instructions else None
        if isinstance(term, (ReturnInst, UnreachableInst)):
            paths.append(path)
            if len(paths) > MAX_PATHS:
                raise VectorIneligible(
                    "paths", f"@{fn.name} has more than {MAX_PATHS} "
                             f"acyclic paths")
            continue
        if isinstance(term, BranchInst):
            for succ in term.successors():
                stack.append((succ, path))
            continue
        raise VectorIneligible(
            "terminator",
            f"unsupported terminator {term.opcode.value if term else '?'}")
    return paths


def _compile_path(blocks: List[BasicBlock], config: SemanticsConfig,
                  freeze_index: Dict[Instruction, int]) -> _PathProgram:
    program = _PathProgram()
    for i, block in enumerate(blocks):
        pred = blocks[i - 1] if i else None
        phis = block.phis()
        if phis:
            if pred is None:
                raise VectorIneligible("phi-entry", "phi in entry block")
            fetches = []
            for phi in phis:
                incoming = phi.incoming_for_block(pred)
                if incoming is None:
                    raise VectorIneligible(
                        "phi-incoming",
                        f"phi {phi.ref()} has no incoming from "
                        f"%{pred.name}")
                _int_width(phi.type, f"phi {phi.ref()}")
                fetches.append((phi, _compile_fetch(incoming, config)))

            def run_phis(env, state, fetches=tuple(fetches)):
                # simultaneous reads: fetch everything before assigning
                staged = [(phi, fetch(env)) for phi, fetch in fetches]
                for phi, lanes in staged:
                    env[phi] = lanes
            program.steps.append(run_phis)

        for inst in block.instructions[len(phis):]:
            if inst.is_terminator:
                _compile_path_terminator(inst, blocks, i, config, program)
                break
            program.steps.append(
                _compile_vector_instruction(inst, config, freeze_index))
    return program


def _compile_path_terminator(inst: Instruction, blocks: List[BasicBlock],
                             i: int, config: SemanticsConfig,
                             program: _PathProgram) -> None:
    if isinstance(inst, ReturnInst):
        if inst.value is not None:
            program.ret_fetch = _compile_fetch(inst.value, config)
        return
    if isinstance(inst, UnreachableInst):
        program.unreachable = True
        return
    if isinstance(inst, BranchInst):
        if not inst.is_conditional:
            return  # unconditional: no mask refinement
        if config.branch_on_poison is not BranchOnPoison.UB:
            raise VectorIneligible(
                "branch-nondet",
                f"branch on poison is nondeterministic under "
                f"config {config.name!r}")
        taken = blocks[i + 1]
        want_true = taken is inst.true_block
        fetch_cond = _compile_fetch(inst.cond, config)

        def take_edge(env, state, fetch=fetch_cond, want=want_true):
            cval, cpois = fetch(env)
            state.ub |= state.active & cpois
            edge = (cval != 0) if want else (cval == 0)
            state.active = state.active & ~cpois & edge
        program.steps.append(take_edge)
        return
    raise VectorIneligible(
        "terminator", f"unsupported terminator {inst.opcode.value}")


def _compile_vector_instruction(inst: Instruction,
                                config: SemanticsConfig,
                                freeze_index: Dict[Instruction, int]):
    if isinstance(inst, BinaryInst):
        width = _int_width(inst.type, inst.ref())
        kernel = vector_binop_kernel(
            inst.opcode, width, config,
            nsw=inst.nsw, nuw=inst.nuw, exact=inst.exact)
        fetch_a = _compile_fetch(inst.lhs, config)
        fetch_b = _compile_fetch(inst.rhs, config)

        def run_binop(env, state):
            aval, apois = fetch_a(env)
            bval, bpois = fetch_b(env)
            val, pois, ub = kernel(aval, apois, bval, bpois)
            if ub is not None:
                state.ub |= state.active & ub
            env[inst] = (val, pois)
        return run_binop

    if isinstance(inst, IcmpInst):
        width = _int_width(inst.lhs.type, inst.ref())
        kernel = vector_icmp_kernel(inst.pred, width)
        fetch_a = _compile_fetch(inst.lhs, config)
        fetch_b = _compile_fetch(inst.rhs, config)

        def run_icmp(env, state):
            aval, apois = fetch_a(env)
            bval, bpois = fetch_b(env)
            val, pois, _ = kernel(aval, apois, bval, bpois)
            env[inst] = (val, pois)
        return run_icmp

    if isinstance(inst, SelectInst):
        return _compile_vector_select(inst, config)

    if isinstance(inst, CastInst):
        src_w = _int_width(inst.value.type, inst.ref())
        dest_w = _int_width(inst.type, inst.ref())
        kernel = vector_cast_kernel(inst.opcode, src_w, dest_w)
        fetch = _compile_fetch(inst.value, config)

        def run_cast(env, state):
            aval, apois = fetch(env)
            val, pois, _ = kernel(aval, apois)
            env[inst] = (val, pois)
        return run_cast

    if isinstance(inst, FreezeInst):
        index = freeze_index[inst]
        fetch = _compile_fetch(inst.value, config)
        np = _np

        def run_freeze(env, state):
            aval, apois = fetch(env)
            chosen = env["__choices__"][index]
            env[inst] = (np.where(apois, chosen, aval), np.False_)
        return run_freeze

    raise VectorIneligible(
        "unsupported-op",
        f"no vector lowering for {inst.opcode.value}")


def _compile_vector_select(inst: SelectInst, config: SemanticsConfig):
    mode = config.select_semantics
    if mode is SelectSemantics.NONDET_COND:
        raise VectorIneligible(
            "select-nondet",
            f"select on poison is nondeterministic under "
            f"config {config.name!r}")
    _int_width(inst.type, inst.ref())
    fetch_c = _compile_fetch(inst.cond, config)
    fetch_t = _compile_fetch(inst.true_value, config)
    fetch_f = _compile_fetch(inst.false_value, config)
    np = _np

    def run_select(env, state):
        cval, cpois = fetch_c(env)
        tval, tpois = fetch_t(env)
        fval, fpois = fetch_f(env)
        pick_true = cval != 0
        val = np.where(pick_true, tval, fval)
        pois = np.where(pick_true, tpois, fpois)
        if mode is SelectSemantics.ARITHMETIC:
            # poison if cond or *either* arm is poison (Section 3.4's
            # select -> or/and rewrites).
            pois = cpois | tpois | fpois
        elif mode is SelectSemantics.UB_COND:
            state.ub |= state.active & cpois
            pois = pois & ~cpois
        else:  # CONDITIONAL (Figure 5): poison cond poisons the result
            pois = pois | cpois
        env[inst] = (np.where(pois, 0, val), pois)
    return run_select


def freeze_combinations(plan: VectorPlan,
                        max_paths: int = 4096) -> List[Tuple[int, ...]]:
    """Every freeze-choice vector the plan must be run under.

    Raises :class:`VectorIneligible` when the cross product exceeds
    either the engine cap or the scalar checker's ``max_paths`` budget
    (past that budget the scalar oracle would declare the input
    undecided, and the vector engine must not decide what the oracle
    would not)."""
    total = 1
    for space in plan.freeze_spaces:
        total *= space
    if total > MAX_FREEZE_COMBOS or total > max_paths:
        raise VectorIneligible(
            "freeze-combos",
            f"{total} freeze-choice combinations exceed the cap "
            f"(engine {MAX_FREEZE_COMBOS}, max_paths {max_paths})")
    return list(itertools.product(*[range(s) for s in plan.freeze_spaces]))
