"""Nondeterministic interpreter implementing the paper's semantics.

The interpreter executes one path, consulting an :class:`Oracle` at every
nondeterministic choice point:

* each *computational use* of a (partially) undef value picks concrete
  bits (OLD semantics, Section 3.1);
* ``freeze`` of poison/undef picks one value, shared by all uses
  (Section 4);
* branching on poison under the ``NONDET`` reading picks a successor;
* calls to declared-only functions pick a return value.

:func:`enumerate_behaviors` drives the oracle through every choice
sequence (depth-first with an odometer), producing the *set* of
observable behaviors of a function on given inputs — the semantic object
that refinement (:mod:`repro.refine`) is defined over.

An observable behavior is: UB, or (return-value bits, external-call event
trace, final contents of every global).  Undef/poison bits appear in
observables un-expanded; the refinement checker interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..diag import ExecTrace, Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType, PointerType, Type, VectorType
from ..ir.values import (
    Argument,
    ConstantInt,
    ConstantVector,
    GlobalVariable,
    PoisonValue,
    UndefValue,
    Value,
)
from .config import (
    BranchOnPoison,
    SelectSemantics,
    SemanticsConfig,
    NEW,
)
from .domains import (
    Bits,
    POISON,
    PartialUndef,
    RuntimeValue,
    Scalar,
    bits_to_value,
    full_undef,
    poison_value,
    scalar_width,
    undef_value,
    value_to_bits,
)
from .eval import UBError, eval_binop, eval_cast, eval_icmp
from .memory import Memory, uninit_bit_for


NUM_FUEL_EXHAUSTED = Statistic(
    "interp", "num-fuel-exhausted",
    "Executions that ran out of fuel (probable infinite loops)")
NUM_UB_EXECUTIONS = Statistic(
    "interp", "num-ub-executions",
    "Executions that triggered immediate UB")


class PathLimitExceeded(Exception):
    """Behavior enumeration exceeded its path budget."""


class FuelExhausted(Exception):
    """Execution exceeded its step budget (probable infinite loop).

    The message reports the step count and the function/block that was
    executing, so a stuck workload is attributable without a debugger."""


class Oracle:
    """Replays a prefix of recorded choices, then defaults to 0 while
    recording the cardinality of each new choice point."""

    def __init__(self, choices: Optional[List[int]] = None,
                 max_choices: int = 64):
        self.choices: List[int] = list(choices) if choices else []
        self.cards: List[int] = []
        self.index = 0
        self.max_choices = max_choices

    def choose(self, cardinality: int) -> int:
        if cardinality <= 0:
            raise ValueError("choice cardinality must be positive")
        if self.index >= self.max_choices:
            raise PathLimitExceeded(
                f"more than {self.max_choices} choice points on one path"
            )
        if self.index < len(self.choices):
            value = self.choices[self.index]
        else:
            value = 0
            self.choices.append(0)
        self.cards.append(cardinality)
        self.index += 1
        return value

    def next_choice_vector(self) -> Optional[List[int]]:
        """Odometer increment over the recorded choice points; ``None``
        when the space is exhausted."""
        vec = self.choices[: self.index]
        cards = self.cards[: self.index]
        for i in range(len(vec) - 1, -1, -1):
            if vec[i] + 1 < cards[i]:
                return vec[: i] + [vec[i] + 1]
        return None


UB = "ub"
RET = "ret"
TIMEOUT = "timeout"

#: (callee name, per-argument bit tuples, return bits or None)
Event = Tuple[str, Tuple[Bits, ...], Optional[Bits]]


@dataclass(frozen=True)
class Behavior:
    kind: str
    ret: Optional[Bits]
    events: Tuple[Event, ...]
    memory: Tuple[Tuple[str, Bits], ...]
    #: Event counters of the execution that produced this behavior.
    #: Excluded from equality/hashing: two paths observing the same
    #: behavior through different events are still the same behavior.
    trace: Optional[ExecTrace] = field(default=None, compare=False)

    @staticmethod
    def ub(events: Tuple[Event, ...] = (),
           trace: Optional[ExecTrace] = None) -> "Behavior":
        return Behavior(UB, None, events, (), trace)

    @property
    def is_ub(self) -> bool:
        return self.kind == UB

    def __str__(self) -> str:
        if self.kind == UB:
            return "UB"
        parts = []
        if self.ret is not None:
            parts.append("ret=" + _bits_str(self.ret))
        for name, args, ret in self.events:
            s = f"call @{name}(" + ", ".join(_bits_str(a) for a in args) + ")"
            if ret is not None:
                s += " -> " + _bits_str(ret)
            parts.append(s)
        for name, bits in self.memory:
            parts.append(f"@{name}=" + _bits_str(bits))
        return "; ".join(parts) if parts else "ret void"


def _bits_str(bits: Bits) -> str:
    from .domains import PBIT, UBIT

    def one(b) -> str:
        if b is PBIT:
            return "p"
        if b is UBIT:
            return "u"
        return str(b)

    return "".join(one(b) for b in reversed(bits))


class _Return(Exception):
    def __init__(self, value: Optional[RuntimeValue]):
        self.value = value


class Interpreter:
    """Executes one function on one oracle path."""

    def __init__(self, config: SemanticsConfig, oracle: Oracle,
                 fuel: int = 10_000, max_call_depth: int = 16,
                 ext_ret_choices: bool = True):
        self.config = config
        self.oracle = oracle
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        self.ext_ret_choices = ext_ret_choices
        self.memory: Optional[Memory] = None
        self.global_addrs: Dict[str, int] = {}
        self.events: List[Event] = []
        self.steps = 0
        self.trace = ExecTrace()
        #: where execution currently is (FuelExhausted reporting)
        self.current_function: Optional[Function] = None
        self.current_block: Optional[BasicBlock] = None

    # -- setup ------------------------------------------------------------
    def setup_memory(self, fn: Function,
                     global_init: Optional[Dict[str, Bits]] = None) -> None:
        self.memory = Memory(uninit_bit_for(self.config.uninit_is_undef))
        module = fn.module
        if module is None:
            return
        for name, g in sorted(module.globals.items()):
            nbytes = max(1, (g.value_type.bitwidth() + 7) // 8)
            addr = self.memory.alloc(nbytes, name=name)
            self.global_addrs[name] = addr
            init_bits: Optional[Bits] = None
            if global_init and name in global_init:
                init_bits = global_init[name]
            elif g.initializer is not None:
                rv = self._constant_value(g.initializer)
                init_bits = value_to_bits(rv, g.value_type)
            if init_bits is not None:
                self.memory.store_bits(addr, init_bits)

    # -- main entry ----------------------------------------------------------
    def run(self, fn: Function, args: Sequence[RuntimeValue],
            global_init: Optional[Dict[str, Bits]] = None) -> Behavior:
        if self.memory is None:
            self.setup_memory(fn, global_init)
        try:
            ret = self._call_function(fn, list(args), depth=0)
        except UBError as e:
            self.trace.steps = self.steps
            self.trace.ub_triggers += 1
            self.trace.ub_reason = e.reason
            NUM_UB_EXECUTIONS.inc()
            return Behavior.ub(tuple(self.events), trace=self.trace)
        except FuelExhausted:
            self.trace.steps = self.steps
            self.trace.fuel_exhausted += 1
            NUM_FUEL_EXHAUSTED.inc()
            return Behavior(TIMEOUT, None, tuple(self.events), (),
                            self.trace)
        self.trace.steps = self.steps
        ret_bits: Optional[Bits] = None
        if ret is not None and not fn.return_type.is_void:
            ret_bits = value_to_bits(ret, fn.return_type)
        mem_obs = []
        for name in sorted(self.global_addrs):
            snap = self.memory.snapshot_block(self.global_addrs[name])
            if snap is not None:
                mem_obs.append((name, snap))
        return Behavior(RET, ret_bits, tuple(self.events), tuple(mem_obs),
                        self.trace)

    # -- function call machinery ------------------------------------------------
    def _call_function(self, fn: Function, args: List[RuntimeValue],
                       depth: int) -> Optional[RuntimeValue]:
        if depth > self.max_call_depth:
            raise FuelExhausted(
                f"call depth {depth} exceeded entering @{fn.name} "
                f"after {self.steps} steps"
            )
        if fn.is_declaration:
            return self._external_call(fn, args)

        regs: Dict[Value, RuntimeValue] = {}
        for arg, value in zip(fn.args, args):
            regs[arg] = value
        frame_allocas: List[int] = []

        block = fn.entry
        prev_block: Optional[BasicBlock] = None
        try:
            while True:
                block, prev_block = self._run_block(
                    fn, block, prev_block, regs, frame_allocas, depth
                )
        except _Return as r:
            return r.value
        finally:
            for addr in frame_allocas:
                self.memory.free_block(addr)

    def _external_call(self, fn: Function,
                       args: List[RuntimeValue]) -> Optional[RuntimeValue]:
        arg_bits = tuple(
            value_to_bits(v, a.type) for v, a in zip(args, fn.args)
        )
        ret_ty = fn.return_type
        ret_val: Optional[RuntimeValue] = None
        ret_bits: Optional[Bits] = None
        if not ret_ty.is_void:
            width = ret_ty.bitwidth()
            if self.ext_ret_choices and width <= 4:
                chosen = self.oracle.choose(1 << width)
            else:
                chosen = 0
            ret_val = bits_to_value(
                tuple((chosen >> i) & 1 for i in range(width)), ret_ty
            )
            ret_bits = value_to_bits(ret_val, ret_ty)
        self.events.append((fn.name, arg_bits, ret_bits))
        self.trace.external_calls += 1
        return ret_val

    # -- block execution ------------------------------------------------------
    def _run_block(self, fn: Function, block: BasicBlock,
                   prev_block: Optional[BasicBlock],
                   regs: Dict[Value, RuntimeValue],
                   frame_allocas: List[int], depth: int):
        self.current_function = fn
        self.current_block = block
        # Phi nodes read their inputs simultaneously.
        phis = block.phis()
        if phis:
            if prev_block is None:
                raise UBError("phi in entry block")
            staged = []
            for phi in phis:
                incoming = phi.incoming_for_block(prev_block)
                if incoming is None:
                    raise UBError(
                        f"phi {phi.ref()} has no incoming from %{prev_block.name}"
                    )
                staged.append((phi, self._value(incoming, regs)))
            for phi, v in staged:
                regs[phi] = v

        for inst in block.instructions[len(phis):]:
            self.steps += 1
            if self.steps > self.fuel:
                raise FuelExhausted(
                    f"fuel exhausted after {self.steps} steps "
                    f"in @{fn.name}:%{block.name}"
                )
            if inst.is_terminator:
                nxt = self._terminator(inst, regs)
                return nxt, block
            self._execute(inst, regs, frame_allocas, depth)
        raise UBError(f"block %{block.name} fell off the end")

    # -- operand evaluation ------------------------------------------------------
    def _constant_value(self, c) -> RuntimeValue:
        if isinstance(c, ConstantInt):
            return c.value
        if isinstance(c, PoisonValue):
            return poison_value(c.type)
        if isinstance(c, UndefValue):
            if not self.config.has_undef:
                # In NEW-mode execution an undef constant is treated as
                # poison (the migration story of Section 4).
                return poison_value(c.type)
            return undef_value(c.type)
        if isinstance(c, ConstantVector):
            return tuple(self._constant_value(e) for e in c.elements)
        if isinstance(c, GlobalVariable):
            addr = self.global_addrs.get(c.name)
            if addr is None:
                raise UBError(f"global @{c.name} not allocated")
            return addr
        raise NotImplementedError(f"constant {c!r}")

    def _value(self, op: Value, regs: Dict[Value, RuntimeValue]) -> RuntimeValue:
        """The raw register/constant value — no per-use expansion."""
        if isinstance(op, (ConstantInt, PoisonValue, UndefValue,
                           ConstantVector, GlobalVariable)):
            return self._constant_value(op)
        if op in regs:
            return regs[op]
        raise UBError(f"use of undefined register {op.ref()}")

    def _expand_scalar(self, v: Scalar) -> Scalar:
        """Per-use expansion of undef bits (Section 3.1): a computational
        use observes *some* concrete assignment of the undef bits, chosen
        independently at every use."""
        if isinstance(v, PartialUndef):
            k = v.num_undef_bits()
            pick = self.oracle.choose(1 << k)
            self.trace.undef_expansions += 1
            return v.concretize(pick)
        return v

    def _use(self, op: Value, regs: Dict[Value, RuntimeValue]) -> RuntimeValue:
        """Evaluate an operand for a computational use."""
        v = self._value(op, regs)
        if isinstance(v, tuple):
            return tuple(self._expand_scalar(x) for x in v)
        return self._expand_scalar(v)

    # -- instruction execution ----------------------------------------------------
    def _execute(self, inst: Instruction, regs: Dict[Value, RuntimeValue],
                 frame_allocas: List[int], depth: int) -> None:
        result = self._compute(inst, regs, frame_allocas, depth)
        if not inst.type.is_void:
            if result is POISON or (
                type(result) is tuple
                and any(x is POISON for x in result)
            ):
                self.trace.poison_created += 1
            regs[inst] = result

    def _compute(self, inst: Instruction, regs, frame_allocas, depth):
        if isinstance(inst, BinaryInst):
            return self._binary(inst, regs)
        if isinstance(inst, IcmpInst):
            return self._icmp(inst, regs)
        if isinstance(inst, SelectInst):
            return self._select(inst, regs)
        if isinstance(inst, FreezeInst):
            return self._freeze(inst, regs)
        if isinstance(inst, CastInst):
            return self._cast(inst, regs)
        if isinstance(inst, GepInst):
            return self._gep(inst, regs)
        if isinstance(inst, AllocaInst):
            nbytes = max(1, (inst.allocated_type.bitwidth() + 7) // 8)
            addr = self.memory.alloc(nbytes, name=inst.name or "alloca")
            frame_allocas.append(addr)
            return addr
        if isinstance(inst, LoadInst):
            return self._load(inst, regs)
        if isinstance(inst, StoreInst):
            return self._store(inst, regs)
        if isinstance(inst, ExtractElementInst):
            return self._extractelement(inst, regs)
        if isinstance(inst, InsertElementInst):
            return self._insertelement(inst, regs)
        if isinstance(inst, CallInst):
            args = [self._value(a, regs) for a in inst.args]
            return self._call_function(inst.callee, args, depth + 1)
        raise NotImplementedError(f"interpret {inst.opcode}")

    def _lanes(self, ty: Type):
        if isinstance(ty, VectorType):
            return ty.count, ty.elem
        return None, ty

    def _binary(self, inst: BinaryInst, regs):
        a = self._use(inst.lhs, regs)
        b = self._use(inst.rhs, regs)
        count, elem = self._lanes(inst.type)
        width = scalar_width(elem)

        def one(x, y):
            return eval_binop(inst.opcode, x, y, width, self.config,
                              nsw=inst.nsw, nuw=inst.nuw, exact=inst.exact)

        if count is None:
            return one(a, b)
        return tuple(one(x, y) for x, y in zip(a, b))

    def _icmp(self, inst: IcmpInst, regs):
        a = self._use(inst.lhs, regs)
        b = self._use(inst.rhs, regs)
        count, elem = self._lanes(inst.lhs.type)
        width = scalar_width(elem)
        if count is None:
            return eval_icmp(inst.pred, a, b, width)
        return tuple(eval_icmp(inst.pred, x, y, width) for x, y in zip(a, b))

    def _select(self, inst: SelectInst, regs):
        mode = self.config.select_semantics
        cond = self._use(inst.cond, regs)  # expands undef conditions
        tv = self._value(inst.true_value, regs)
        fv = self._value(inst.false_value, regs)

        if cond is POISON:
            if mode is SelectSemantics.UB_COND:
                raise UBError("select on poison condition")
            if mode is SelectSemantics.NONDET_COND:
                cond = self.oracle.choose(2)
            else:
                # ARITHMETIC and CONDITIONAL: poison condition poisons
                # the result.
                return poison_value(inst.type)

        chosen = tv if cond else fv
        if mode is SelectSemantics.ARITHMETIC:
            # Result is poison if *either* arm is poison, mirroring the
            # select -> or/and rewrites (Section 3.4).
            if _any_poison(tv) or _any_poison(fv):
                return poison_value(inst.type)
        return chosen

    def _freeze(self, inst: FreezeInst, regs):
        v = self._value(inst.value, regs)
        count, elem = self._lanes(inst.type)
        width = scalar_width(elem)

        def one(x: Scalar) -> Scalar:
            if x is POISON:
                self.trace.freeze_resolutions += 1
                return self.oracle.choose(1 << width)
            if isinstance(x, PartialUndef):
                pick = self.oracle.choose(1 << x.num_undef_bits())
                self.trace.freeze_resolutions += 1
                return x.concretize(pick)
            return x

        if count is None:
            return one(v)
        return tuple(one(x) for x in v)

    def _cast(self, inst: CastInst, regs):
        if inst.opcode is Opcode.BITCAST:
            v = self._value(inst.value, regs)  # pure re-interpretation
            bits = value_to_bits(v, inst.value.type)
            return bits_to_value(bits, inst.type)
        a = self._use(inst.value, regs)
        count, elem = self._lanes(inst.type)
        src_w = scalar_width(inst.value.type.scalar)
        dst_w = scalar_width(elem)
        if count is None:
            return eval_cast(inst.opcode, a, src_w, dst_w)
        return tuple(eval_cast(inst.opcode, x, src_w, dst_w) for x in a)

    def _gep(self, inst: GepInst, regs):
        base = self._use(inst.pointer, regs)
        index = self._use(inst.index, regs)
        if base is POISON or index is POISON:
            return POISON
        iw = scalar_width(inst.index.type)
        signed_index = index - (1 << iw) if index >= (1 << (iw - 1)) else index
        offset = signed_index * inst.elem_size_bytes
        addr = (base + offset) & 0xFFFFFFFF
        if inst.inbounds:
            block = self.memory.block_at(base, 1)
            if block is not None:
                # inbounds requires the result to stay within the object
                # (one-past-the-end allowed); otherwise poison.
                if not (block.addr <= base + offset <= block.addr + block.size):
                    return POISON
            elif base + offset != addr or base + offset < 0:
                return POISON
        return addr

    def _load(self, inst: LoadInst, regs):
        addr = self._use(inst.pointer, regs)
        self.trace.loads += 1
        if addr is POISON:
            raise UBError("load from poison address")
        bits = self.memory.load_bits(addr, inst.type.bitwidth())
        if bits is None:
            raise UBError(f"invalid load of {inst.type} at {addr:#x}")
        return bits_to_value(bits, inst.type)

    def _store(self, inst: StoreInst, regs):
        addr = self._use(inst.pointer, regs)
        self.trace.stores += 1
        if addr is POISON:
            raise UBError("store to poison address")
        value = self._value(inst.value, regs)  # store does not expand
        bits = value_to_bits(value, inst.value.type)
        if not self.memory.store_bits(addr, bits):
            raise UBError(f"invalid store of {inst.value.type} at {addr:#x}")
        return None

    def _extractelement(self, inst: ExtractElementInst, regs):
        vec = self._value(inst.vector, regs)
        idx = self._use(inst.index, regs)
        count = inst.vector.type.count
        if idx is POISON or not isinstance(idx, int) or idx >= count:
            return POISON
        return vec[idx]

    def _insertelement(self, inst: InsertElementInst, regs):
        vec = self._value(inst.vector, regs)
        elem = self._value(inst.element, regs)
        idx = self._use(inst.index, regs)
        count = inst.vector.type.count
        if idx is POISON or not isinstance(idx, int) or idx >= count:
            return poison_value(inst.type)
        out = list(vec)
        out[idx] = elem
        return tuple(out)

    # -- terminators ------------------------------------------------------------
    def _terminator(self, inst: Instruction, regs) -> BasicBlock:
        if isinstance(inst, ReturnInst):
            value = None
            if inst.value is not None:
                value = self._value(inst.value, regs)
            raise _Return(value)
        if isinstance(inst, BranchInst):
            if not inst.is_conditional:
                return inst.targets[0]
            cond = self._use(inst.cond, regs)
            if cond is POISON:
                if self.config.branch_on_poison is BranchOnPoison.UB:
                    raise UBError("branch on poison")
                cond = self.oracle.choose(2)
            return inst.true_block if cond else inst.false_block
        if isinstance(inst, SwitchInst):
            value = self._use(inst.value, regs)
            if value is POISON:
                if self.config.branch_on_poison is BranchOnPoison.UB:
                    raise UBError("switch on poison")
                succs = inst.successors()
                return succs[self.oracle.choose(len(succs))]
            for const, block in inst.cases:
                if const.value == value:
                    return block
            return inst.default
        if isinstance(inst, UnreachableInst):
            raise UBError("reached unreachable")
        raise NotImplementedError(f"terminator {inst.opcode}")


def _any_poison(v: RuntimeValue) -> bool:
    if isinstance(v, tuple):
        return any(x is POISON for x in v)
    return v is POISON


def run_once(fn: Function, args: Sequence[RuntimeValue],
             config: SemanticsConfig = NEW,
             choices: Optional[List[int]] = None,
             global_init: Optional[Dict[str, Bits]] = None,
             fuel: int = 10_000) -> Behavior:
    """Execute one oracle path (default choices = all zeros)."""
    oracle = Oracle(choices)
    interp = Interpreter(config, oracle, fuel=fuel)
    return interp.run(fn, args, global_init=global_init)


def enumerate_behaviors(fn: Function, args: Sequence[RuntimeValue],
                        config: SemanticsConfig = NEW,
                        global_init: Optional[Dict[str, Bits]] = None,
                        max_paths: int = 4096,
                        max_choices: int = 24,
                        fuel: int = 10_000) -> frozenset:
    """The full set of observable behaviors on the given input."""
    behaviors = set()
    choices: Optional[List[int]] = []
    paths = 0
    while choices is not None:
        paths += 1
        if paths > max_paths:
            raise PathLimitExceeded(
                f"more than {max_paths} paths for @{fn.name}"
            )
        oracle = Oracle(choices, max_choices=max_choices)
        interp = Interpreter(config, oracle, fuel=fuel)
        behaviors.add(interp.run(fn, args, global_init=global_init))
        choices = oracle.next_choice_vector()
    return frozenset(behaviors)
