"""Nondeterministic interpreter implementing the paper's semantics.

The interpreter executes one path, consulting an :class:`Oracle` at every
nondeterministic choice point:

* each *computational use* of a (partially) undef value picks concrete
  bits (OLD semantics, Section 3.1);
* ``freeze`` of poison/undef picks one value, shared by all uses
  (Section 4);
* branching on poison under the ``NONDET`` reading picks a successor;
* calls to declared-only functions pick a return value.

:func:`enumerate_behaviors` drives the oracle through every choice
sequence (depth-first with an odometer), producing the *set* of
observable behaviors of a function on given inputs — the semantic object
that refinement (:mod:`repro.refine`) is defined over.

An observable behavior is: UB, or (return-value bits, external-call event
trace, final contents of every global).  Undef/poison bits appear in
observables un-expanded; the refinement checker interprets them.

Execution plans (the validation hot path)
-----------------------------------------
Behavior enumeration re-executes the same function for every input ×
every oracle path — the per-instruction cost is multiplied millions of
times in a validation campaign.  The interpreter therefore *compiles*
each function once per :class:`~repro.semantics.config.SemanticsConfig`
into an :class:`ExecPlan`: per-block step lists whose operand fetchers,
evaluator closures (:func:`~repro.semantics.eval.binop_evaluator` and
friends), and config decisions are resolved up front, replacing the
per-step ``isinstance`` dispatch chain and dict lookups.  Plans make
*no* nondeterministic choices at compile time, so a planned execution
consults the oracle in exactly the same order as the historical
interpreter — behavior sets are unchanged, only faster to enumerate.
A :class:`PlanCache` shares plans across paths and inputs; it is only
valid while the compiled functions are not mutated (the refinement
checker builds one per check, after the pipeline under test has run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..diag import ExecTrace, Statistic, phase
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType, PointerType, Type, VectorType
from ..ir.values import (
    Argument,
    ConstantInt,
    ConstantVector,
    GlobalVariable,
    PoisonValue,
    UndefValue,
    Value,
)
from .config import (
    BranchOnPoison,
    SelectSemantics,
    SemanticsConfig,
    NEW,
)
from .domains import (
    Bits,
    POISON,
    PartialUndef,
    RuntimeValue,
    Scalar,
    bits_to_value,
    full_undef,
    poison_value,
    scalar_width,
    undef_value,
    value_to_bits,
)
from .eval import (
    UBError,
    binop_evaluator,
    cast_evaluator,
    eval_binop,
    eval_cast,
    eval_icmp,
    icmp_evaluator,
)
from .memory import Memory, uninit_bit_for


NUM_FUEL_EXHAUSTED = Statistic(
    "interp", "num-fuel-exhausted",
    "Executions that ran out of fuel (probable infinite loops)")
NUM_UB_EXECUTIONS = Statistic(
    "interp", "num-ub-executions",
    "Executions that triggered immediate UB")
NUM_PLANS_COMPILED = Statistic(
    "interp", "num-plans-compiled",
    "Functions compiled into execution plans")


class PathLimitExceeded(Exception):
    """Behavior enumeration exceeded its path budget."""


class FuelExhausted(Exception):
    """Execution exceeded its step budget (probable infinite loop).

    The message reports the step count and the function/block that was
    executing, so a stuck workload is attributable without a debugger."""


class Oracle:
    """Replays a prefix of recorded choices, then defaults to 0 while
    recording the cardinality of each new choice point."""

    def __init__(self, choices: Optional[List[int]] = None,
                 max_choices: int = 64):
        self.choices: List[int] = list(choices) if choices else []
        self.cards: List[int] = []
        self.index = 0
        self.max_choices = max_choices

    def choose(self, cardinality: int) -> int:
        if cardinality <= 0:
            raise ValueError("choice cardinality must be positive")
        if self.index >= self.max_choices:
            raise PathLimitExceeded(
                f"more than {self.max_choices} choice points on one path"
            )
        if self.index < len(self.choices):
            value = self.choices[self.index]
        else:
            value = 0
            self.choices.append(0)
        self.cards.append(cardinality)
        self.index += 1
        return value

    def next_choice_vector(self) -> Optional[List[int]]:
        """Odometer increment over the recorded choice points; ``None``
        when the space is exhausted."""
        vec = self.choices[: self.index]
        cards = self.cards[: self.index]
        for i in range(len(vec) - 1, -1, -1):
            if vec[i] + 1 < cards[i]:
                return vec[: i] + [vec[i] + 1]
        return None


UB = "ub"
RET = "ret"
TIMEOUT = "timeout"

#: (callee name, per-argument bit tuples, return bits or None)
Event = Tuple[str, Tuple[Bits, ...], Optional[Bits]]


@dataclass(frozen=True)
class Behavior:
    kind: str
    ret: Optional[Bits]
    events: Tuple[Event, ...]
    memory: Tuple[Tuple[str, Bits], ...]
    #: Event counters of the execution that produced this behavior.
    #: Excluded from equality/hashing: two paths observing the same
    #: behavior through different events are still the same behavior.
    trace: Optional[ExecTrace] = field(default=None, compare=False)

    def __post_init__(self):
        # Invariant: memory observables are sorted by region name, so
        # equality/hashing and positional comparison are independent of
        # construction order (the refinement checker additionally
        # matches regions by name; see refine.refinement).
        mem = self.memory
        if len(mem) > 1 and any(
            mem[i][0] > mem[i + 1][0] for i in range(len(mem) - 1)
        ):
            object.__setattr__(
                self, "memory", tuple(sorted(mem, key=lambda r: r[0]))
            )

    @staticmethod
    def ub(events: Tuple[Event, ...] = (),
           trace: Optional[ExecTrace] = None) -> "Behavior":
        return Behavior(UB, None, events, (), trace)

    @property
    def is_ub(self) -> bool:
        return self.kind == UB

    def __str__(self) -> str:
        if self.kind == UB:
            return "UB"
        parts = []
        if self.ret is not None:
            parts.append("ret=" + _bits_str(self.ret))
        for name, args, ret in self.events:
            s = f"call @{name}(" + ", ".join(_bits_str(a) for a in args) + ")"
            if ret is not None:
                s += " -> " + _bits_str(ret)
            parts.append(s)
        for name, bits in self.memory:
            parts.append(f"@{name}=" + _bits_str(bits))
        return "; ".join(parts) if parts else "ret void"


def _bits_str(bits: Bits) -> str:
    from .domains import PBIT, UBIT

    def one(b) -> str:
        if b is PBIT:
            return "p"
        if b is UBIT:
            return "u"
        return str(b)

    return "".join(one(b) for b in reversed(bits))


class _Return(Exception):
    def __init__(self, value: Optional[RuntimeValue]):
        self.value = value


# ---------------------------------------------------------------------------
# Plan compilation: pre-resolve operands, evaluators, and config decisions.
# ---------------------------------------------------------------------------

#: compile-time marker: the operand's value needs the running interpreter
_DYNAMIC = object()


def _static_constant(op: Value, config: SemanticsConfig):
    """The operand's runtime value when it is fully determined at
    compile time; :data:`_DYNAMIC` otherwise."""
    if isinstance(op, ConstantInt):
        return op.value
    if isinstance(op, PoisonValue):
        return poison_value(op.type)
    if isinstance(op, UndefValue):
        if not config.has_undef:
            # In NEW-mode execution an undef constant is treated as
            # poison (the migration story of Section 4).
            return poison_value(op.type)
        return undef_value(op.type)
    if isinstance(op, ConstantVector):
        elems = tuple(_static_constant(e, config) for e in op.elements)
        if any(e is _DYNAMIC for e in elems):
            return _DYNAMIC
        return elems
    return _DYNAMIC


def _contains_undef(v: RuntimeValue) -> bool:
    if type(v) is tuple:
        return any(type(x) is PartialUndef for x in v)
    return type(v) is PartialUndef


def _compile_operand(op: Value, config: SemanticsConfig):
    """A ``fetch(interp, regs) -> RuntimeValue`` closure for the raw
    (un-expanded) value of ``op``."""
    const = _static_constant(op, config)
    if const is not _DYNAMIC:
        def fetch_const(interp, regs, _v=const):
            return _v
        return fetch_const
    if isinstance(op, GlobalVariable):
        name = op.name

        def fetch_global(interp, regs):
            addr = interp.global_addrs.get(name)
            if addr is None:
                raise UBError(f"global @{name} not allocated")
            return addr
        return fetch_global
    if isinstance(op, (ConstantInt, PoisonValue, UndefValue,
                       ConstantVector)):
        def fetch_slow(interp, regs):  # pragma: no cover - exotic consts
            return interp._constant_value(op)
        return fetch_slow

    def fetch_reg(interp, regs):
        try:
            return regs[op]
        except KeyError:
            raise UBError(f"use of undefined register {op.ref()}") from None
    return fetch_reg


def _compile_use(op: Value, config: SemanticsConfig):
    """A ``use(interp, regs)`` closure: fetch plus per-use undef
    expansion (Section 3.1) when the value can carry undef bits."""
    fetch = _compile_operand(op, config)
    const = _static_constant(op, config)
    if const is not _DYNAMIC and not _contains_undef(const):
        return fetch
    if not config.has_undef:
        # NEW semantics has no undef values at all: registers can only
        # hold ints, poison, or tuples thereof — nothing to expand.
        return fetch

    def use(interp, regs):
        v = fetch(interp, regs)
        if type(v) is PartialUndef:
            return interp._expand_scalar(v)
        if type(v) is tuple:
            return tuple(interp._expand_scalar(x) for x in v)
        return v
    return use


def _lanes(ty: Type):
    if isinstance(ty, VectorType):
        return ty.count, ty.elem
    return None, ty


def _compile_binary(inst: BinaryInst, config: SemanticsConfig):
    use_a = _compile_use(inst.lhs, config)
    use_b = _compile_use(inst.rhs, config)
    count, elem = _lanes(inst.type)
    ev = binop_evaluator(inst.opcode, scalar_width(elem), config,
                         nsw=inst.nsw, nuw=inst.nuw, exact=inst.exact)
    if count is None:
        def ex(interp, regs, frame_allocas, depth):
            return ev(use_a(interp, regs), use_b(interp, regs))
        return ex

    def ex_vec(interp, regs, frame_allocas, depth):
        a = use_a(interp, regs)
        b = use_b(interp, regs)
        return tuple(ev(x, y) for x, y in zip(a, b))
    return ex_vec


def _compile_icmp(inst: IcmpInst, config: SemanticsConfig):
    use_a = _compile_use(inst.lhs, config)
    use_b = _compile_use(inst.rhs, config)
    count, elem = _lanes(inst.lhs.type)
    ev = icmp_evaluator(inst.pred, scalar_width(elem))
    if count is None:
        def ex(interp, regs, frame_allocas, depth):
            return ev(use_a(interp, regs), use_b(interp, regs))
        return ex

    def ex_vec(interp, regs, frame_allocas, depth):
        a = use_a(interp, regs)
        b = use_b(interp, regs)
        return tuple(ev(x, y) for x, y in zip(a, b))
    return ex_vec


def _compile_select(inst: SelectInst, config: SemanticsConfig):
    mode = config.select_semantics
    use_cond = _compile_use(inst.cond, config)  # expands undef conditions
    fetch_t = _compile_operand(inst.true_value, config)
    fetch_f = _compile_operand(inst.false_value, config)
    ty = inst.type

    if mode is SelectSemantics.ARITHMETIC:
        def ex_arith(interp, regs, frame_allocas, depth):
            cond = use_cond(interp, regs)
            tv = fetch_t(interp, regs)
            fv = fetch_f(interp, regs)
            if cond is POISON:
                return poison_value(ty)
            # Result is poison if *either* arm is poison, mirroring the
            # select -> or/and rewrites (Section 3.4).
            if _any_poison(tv) or _any_poison(fv):
                return poison_value(ty)
            return tv if cond else fv
        return ex_arith

    if mode is SelectSemantics.UB_COND:
        def ex_ub(interp, regs, frame_allocas, depth):
            cond = use_cond(interp, regs)
            tv = fetch_t(interp, regs)
            fv = fetch_f(interp, regs)
            if cond is POISON:
                raise UBError("select on poison condition")
            return tv if cond else fv
        return ex_ub

    if mode is SelectSemantics.NONDET_COND:
        def ex_nondet(interp, regs, frame_allocas, depth):
            cond = use_cond(interp, regs)
            tv = fetch_t(interp, regs)
            fv = fetch_f(interp, regs)
            if cond is POISON:
                cond = interp.oracle.choose(2)
            return tv if cond else fv
        return ex_nondet

    # CONDITIONAL: poison condition poisons the result.
    def ex_cond(interp, regs, frame_allocas, depth):
        cond = use_cond(interp, regs)
        tv = fetch_t(interp, regs)
        fv = fetch_f(interp, regs)
        if cond is POISON:
            return poison_value(ty)
        return tv if cond else fv
    return ex_cond


def _compile_freeze(inst: FreezeInst, config: SemanticsConfig):
    fetch = _compile_operand(inst.value, config)
    count, elem = _lanes(inst.type)
    space = 1 << scalar_width(elem)

    def one(interp, x: Scalar) -> Scalar:
        if x is POISON:
            interp.trace.freeze_resolutions += 1
            return interp.oracle.choose(space)
        if type(x) is PartialUndef:
            pick = interp.oracle.choose(1 << x.num_undef_bits())
            interp.trace.freeze_resolutions += 1
            return x.concretize(pick)
        return x

    if count is None:
        def ex(interp, regs, frame_allocas, depth):
            return one(interp, fetch(interp, regs))
        return ex

    def ex_vec(interp, regs, frame_allocas, depth):
        return tuple(one(interp, x) for x in fetch(interp, regs))
    return ex_vec


def _compile_cast(inst: CastInst, config: SemanticsConfig):
    if inst.opcode is Opcode.BITCAST:
        fetch = _compile_operand(inst.value, config)
        src_ty = inst.value.type
        dst_ty = inst.type

        def ex_bitcast(interp, regs, frame_allocas, depth):
            # pure re-interpretation: no per-use expansion
            bits = value_to_bits(fetch(interp, regs), src_ty)
            return bits_to_value(bits, dst_ty)
        return ex_bitcast

    use = _compile_use(inst.value, config)
    count, elem = _lanes(inst.type)
    ev = cast_evaluator(inst.opcode, scalar_width(inst.value.type.scalar),
                        scalar_width(elem))
    if count is None:
        def ex(interp, regs, frame_allocas, depth):
            return ev(use(interp, regs))
        return ex

    def ex_vec(interp, regs, frame_allocas, depth):
        return tuple(ev(x) for x in use(interp, regs))
    return ex_vec


def _compile_gep(inst: GepInst, config: SemanticsConfig):
    use_base = _compile_use(inst.pointer, config)
    use_index = _compile_use(inst.index, config)
    iw = scalar_width(inst.index.type)
    half = 1 << (iw - 1)
    full = 1 << iw
    elem_size = inst.elem_size_bytes
    inbounds = inst.inbounds

    def ex(interp, regs, frame_allocas, depth):
        base = use_base(interp, regs)
        index = use_index(interp, regs)
        if base is POISON or index is POISON:
            return POISON
        signed_index = index - full if index >= half else index
        offset = signed_index * elem_size
        addr = (base + offset) & 0xFFFFFFFF
        if inbounds:
            block = interp.memory.block_at(base, 1)
            if block is not None:
                # inbounds requires the result to stay within the object
                # (one-past-the-end allowed); otherwise poison.
                if not (block.addr <= base + offset
                        <= block.addr + block.size):
                    return POISON
            elif base + offset != addr or base + offset < 0:
                return POISON
        return addr
    return ex


def _compile_alloca(inst: AllocaInst, config: SemanticsConfig):
    nbytes = max(1, (inst.allocated_type.bitwidth() + 7) // 8)
    name = inst.name or "alloca"

    def ex(interp, regs, frame_allocas, depth):
        addr = interp.memory.alloc(nbytes, name=name)
        frame_allocas.append(addr)
        return addr
    return ex


def _compile_load(inst: LoadInst, config: SemanticsConfig):
    use_ptr = _compile_use(inst.pointer, config)
    nbits = inst.type.bitwidth()
    ty = inst.type

    def ex(interp, regs, frame_allocas, depth):
        addr = use_ptr(interp, regs)
        interp.trace.loads += 1
        if addr is POISON:
            raise UBError("load from poison address")
        bits = interp.memory.load_bits(addr, nbits)
        if bits is None:
            raise UBError(f"invalid load of {ty} at {addr:#x}")
        return bits_to_value(bits, ty)
    return ex


def _compile_store(inst: StoreInst, config: SemanticsConfig):
    use_ptr = _compile_use(inst.pointer, config)
    fetch_value = _compile_operand(inst.value, config)  # store does not expand
    value_ty = inst.value.type

    def ex(interp, regs, frame_allocas, depth):
        addr = use_ptr(interp, regs)
        interp.trace.stores += 1
        if addr is POISON:
            raise UBError("store to poison address")
        bits = value_to_bits(fetch_value(interp, regs), value_ty)
        if not interp.memory.store_bits(addr, bits):
            raise UBError(f"invalid store of {value_ty} at {addr:#x}")
        return None
    return ex


def _compile_extractelement(inst: ExtractElementInst,
                            config: SemanticsConfig):
    fetch_vec = _compile_operand(inst.vector, config)
    use_idx = _compile_use(inst.index, config)
    count = inst.vector.type.count

    def ex(interp, regs, frame_allocas, depth):
        vec = fetch_vec(interp, regs)
        idx = use_idx(interp, regs)
        if idx is POISON or not isinstance(idx, int) or idx >= count:
            return POISON
        return vec[idx]
    return ex


def _compile_insertelement(inst: InsertElementInst,
                           config: SemanticsConfig):
    fetch_vec = _compile_operand(inst.vector, config)
    fetch_elem = _compile_operand(inst.element, config)
    use_idx = _compile_use(inst.index, config)
    count = inst.vector.type.count
    poison_result = poison_value(inst.type)

    def ex(interp, regs, frame_allocas, depth):
        vec = fetch_vec(interp, regs)
        elem = fetch_elem(interp, regs)
        idx = use_idx(interp, regs)
        if idx is POISON or not isinstance(idx, int) or idx >= count:
            return poison_result
        out = list(vec)
        out[idx] = elem
        return tuple(out)
    return ex


def _compile_call(inst: CallInst, config: SemanticsConfig):
    arg_fetchers = [_compile_operand(a, config) for a in inst.args]
    callee = inst.callee

    def ex(interp, regs, frame_allocas, depth):
        args = [fetch(interp, regs) for fetch in arg_fetchers]
        return interp._call_function(callee, args, depth + 1)
    return ex


_COMPILERS = {
    BinaryInst: _compile_binary,
    IcmpInst: _compile_icmp,
    SelectInst: _compile_select,
    FreezeInst: _compile_freeze,
    CastInst: _compile_cast,
    GepInst: _compile_gep,
    AllocaInst: _compile_alloca,
    LoadInst: _compile_load,
    StoreInst: _compile_store,
    ExtractElementInst: _compile_extractelement,
    InsertElementInst: _compile_insertelement,
    CallInst: _compile_call,
}


def _compile_instruction(inst: Instruction, config: SemanticsConfig):
    compiler = _COMPILERS.get(type(inst))
    if compiler is None:
        # Defer the failure to execution time, matching the historical
        # interpreter (an unsupported instruction on a dead path never
        # fired).
        msg = f"interpret {inst.opcode}"

        def ex_unsupported(interp, regs, frame_allocas, depth):
            raise NotImplementedError(msg)
        return ex_unsupported
    return compiler(inst, config)


def _compile_terminator(inst: Instruction, config: SemanticsConfig):
    """A ``term(interp, regs) -> BasicBlock`` closure (raises
    :class:`_Return` to leave the function)."""
    if isinstance(inst, ReturnInst):
        if inst.value is None:
            def term_void(interp, regs):
                raise _Return(None)
            return term_void
        fetch = _compile_operand(inst.value, config)

        def term_ret(interp, regs):
            raise _Return(fetch(interp, regs))
        return term_ret

    if isinstance(inst, BranchInst):
        if not inst.is_conditional:
            target = inst.targets[0]

            def term_jump(interp, regs):
                return target
            return term_jump
        use_cond = _compile_use(inst.cond, config)
        tb, fb = inst.true_block, inst.false_block
        poison_is_ub = config.branch_on_poison is BranchOnPoison.UB

        def term_br(interp, regs):
            cond = use_cond(interp, regs)
            if cond is POISON:
                if poison_is_ub:
                    raise UBError("branch on poison")
                cond = interp.oracle.choose(2)
            return tb if cond else fb
        return term_br

    if isinstance(inst, SwitchInst):
        use_value = _compile_use(inst.value, config)
        cases = tuple((const.value, block) for const, block in inst.cases)
        default = inst.default
        succs = tuple(inst.successors())
        poison_is_ub = config.branch_on_poison is BranchOnPoison.UB

        def term_switch(interp, regs):
            value = use_value(interp, regs)
            if value is POISON:
                if poison_is_ub:
                    raise UBError("switch on poison")
                return succs[interp.oracle.choose(len(succs))]
            for case_value, block in cases:
                if case_value == value:
                    return block
            return default
        return term_switch

    if isinstance(inst, UnreachableInst):
        def term_unreachable(interp, regs):
            raise UBError("reached unreachable")
        return term_unreachable

    msg = f"terminator {inst.opcode}"

    def term_unsupported(interp, regs):
        raise NotImplementedError(msg)
    return term_unsupported


class _BlockPlan:
    """One basic block, compiled."""

    __slots__ = ("block", "phis", "steps", "terminate")

    def __init__(self, block: BasicBlock, config: SemanticsConfig):
        self.block = block
        phis = block.phis()
        self.phis = [
            (phi, {pred: _compile_operand(value, config)
                   for value, pred in phi.incoming})
            for phi in phis
        ]
        #: (instruction, exec closure, has a register result)
        self.steps: List[tuple] = []
        self.terminate = None
        for inst in block.instructions[len(phis):]:
            if inst.is_terminator:
                self.terminate = _compile_terminator(inst, config)
                break
            self.steps.append((inst, _compile_instruction(inst, config),
                               not inst.type.is_void))


class ExecPlan:
    """A function compiled for one semantics configuration."""

    __slots__ = ("fn", "config", "blocks")

    def __init__(self, fn: Function, config: SemanticsConfig):
        self.fn = fn
        self.config = config
        self.blocks: Dict[BasicBlock, _BlockPlan] = {
            block: _BlockPlan(block, config) for block in fn.blocks
        }
        NUM_PLANS_COMPILED.inc()


class PlanCache:
    """Execution plans keyed by function, for one config.

    A cache is valid only while the functions it compiled are not
    mutated.  The refinement checker builds one per function under
    check (after the pipeline under test has run) and reuses it across
    every input and oracle path of the check.
    """

    __slots__ = ("config", "_plans")

    def __init__(self, config: SemanticsConfig):
        self.config = config
        self._plans: Dict[Function, ExecPlan] = {}

    def plan_for(self, fn: Function) -> ExecPlan:
        plan = self._plans.get(fn)
        if plan is None:
            # a phase, not a span: plans compile twice per checked
            # function, and a full record each was 40% of all span
            # traffic (the E12 overhead gate)
            with phase("plan-compile"):
                plan = ExecPlan(fn, self.config)
            self._plans[fn] = plan
        return plan


class Interpreter:
    """Executes one function on one oracle path."""

    def __init__(self, config: SemanticsConfig, oracle: Oracle,
                 fuel: int = 10_000, max_call_depth: int = 16,
                 ext_ret_choices: bool = True,
                 plans: Optional[PlanCache] = None):
        self.config = config
        self.oracle = oracle
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        self.ext_ret_choices = ext_ret_choices
        if plans is not None and plans.config != config:
            raise ValueError("plan cache was compiled for another config")
        self.plans = plans if plans is not None else PlanCache(config)
        self.memory: Optional[Memory] = None
        self.global_addrs: Dict[str, int] = {}
        self.events: List[Event] = []
        self.steps = 0
        self.trace = ExecTrace()
        #: where execution currently is (FuelExhausted reporting)
        self.current_function: Optional[Function] = None
        self.current_block: Optional[BasicBlock] = None

    # -- setup ------------------------------------------------------------
    def setup_memory(self, fn: Function,
                     global_init: Optional[Dict[str, Bits]] = None) -> None:
        self.memory = Memory(uninit_bit_for(self.config.uninit_is_undef))
        module = fn.module
        if module is None:
            return
        for name, g in sorted(module.globals.items()):
            nbytes = max(1, (g.value_type.bitwidth() + 7) // 8)
            addr = self.memory.alloc(nbytes, name=name)
            self.global_addrs[name] = addr
            init_bits: Optional[Bits] = None
            if global_init and name in global_init:
                init_bits = global_init[name]
            elif g.initializer is not None:
                rv = self._constant_value(g.initializer)
                init_bits = value_to_bits(rv, g.value_type)
            if init_bits is not None:
                self.memory.store_bits(addr, init_bits)

    # -- main entry ----------------------------------------------------------
    def run(self, fn: Function, args: Sequence[RuntimeValue],
            global_init: Optional[Dict[str, Bits]] = None) -> Behavior:
        if self.memory is None:
            self.setup_memory(fn, global_init)
        try:
            ret = self._call_function(fn, list(args), depth=0)
        except UBError as e:
            self.trace.steps = self.steps
            self.trace.ub_triggers += 1
            self.trace.ub_reason = e.reason
            NUM_UB_EXECUTIONS.inc()
            return Behavior.ub(tuple(self.events), trace=self.trace)
        except FuelExhausted:
            self.trace.steps = self.steps
            self.trace.fuel_exhausted += 1
            NUM_FUEL_EXHAUSTED.inc()
            return Behavior(TIMEOUT, None, tuple(self.events), (),
                            self.trace)
        self.trace.steps = self.steps
        ret_bits: Optional[Bits] = None
        if ret is not None and not fn.return_type.is_void:
            ret_bits = value_to_bits(ret, fn.return_type)
        mem_obs = []
        for name in sorted(self.global_addrs):
            snap = self.memory.snapshot_block(self.global_addrs[name])
            if snap is not None:
                mem_obs.append((name, snap))
        return Behavior(RET, ret_bits, tuple(self.events), tuple(mem_obs),
                        self.trace)

    # -- function call machinery ------------------------------------------------
    def _call_function(self, fn: Function, args: List[RuntimeValue],
                       depth: int) -> Optional[RuntimeValue]:
        if depth > self.max_call_depth:
            raise FuelExhausted(
                f"call depth {depth} exceeded entering @{fn.name} "
                f"after {self.steps} steps"
            )
        if fn.is_declaration:
            return self._external_call(fn, args)

        plan = self.plans.plan_for(fn)
        regs: Dict[Value, RuntimeValue] = {}
        for arg, value in zip(fn.args, args):
            regs[arg] = value
        frame_allocas: List[int] = []

        blocks = plan.blocks
        bplan = blocks[fn.entry]
        prev_block: Optional[BasicBlock] = None
        try:
            while True:
                next_block, prev_block = self._run_block(
                    fn, bplan, prev_block, regs, frame_allocas, depth
                )
                bplan = blocks[next_block]
        except _Return as r:
            return r.value
        finally:
            for addr in frame_allocas:
                self.memory.free_block(addr)

    def _external_call(self, fn: Function,
                       args: List[RuntimeValue]) -> Optional[RuntimeValue]:
        arg_bits = tuple(
            value_to_bits(v, a.type) for v, a in zip(args, fn.args)
        )
        ret_ty = fn.return_type
        ret_val: Optional[RuntimeValue] = None
        ret_bits: Optional[Bits] = None
        if not ret_ty.is_void:
            width = ret_ty.bitwidth()
            if self.ext_ret_choices and width <= 4:
                chosen = self.oracle.choose(1 << width)
            else:
                chosen = 0
            ret_val = bits_to_value(
                tuple((chosen >> i) & 1 for i in range(width)), ret_ty
            )
            ret_bits = value_to_bits(ret_val, ret_ty)
        self.events.append((fn.name, arg_bits, ret_bits))
        self.trace.external_calls += 1
        return ret_val

    # -- block execution ------------------------------------------------------
    def _run_block(self, fn: Function, bplan: _BlockPlan,
                   prev_block: Optional[BasicBlock],
                   regs: Dict[Value, RuntimeValue],
                   frame_allocas: List[int], depth: int):
        block = bplan.block
        self.current_function = fn
        self.current_block = block
        # Phi nodes read their inputs simultaneously.
        if bplan.phis:
            if prev_block is None:
                raise UBError("phi in entry block")
            staged = []
            for phi, incoming in bplan.phis:
                fetch = incoming.get(prev_block)
                if fetch is None:
                    raise UBError(
                        f"phi {phi.ref()} has no incoming from "
                        f"%{prev_block.name}"
                    )
                staged.append((phi, fetch(self, regs)))
            for phi, v in staged:
                regs[phi] = v

        fuel = self.fuel
        for inst, execute, has_result in bplan.steps:
            self.steps += 1
            if self.steps > fuel:
                raise FuelExhausted(
                    f"fuel exhausted after {self.steps} steps "
                    f"in @{fn.name}:%{block.name}"
                )
            result = execute(self, regs, frame_allocas, depth)
            if has_result:
                if result is POISON or (
                    type(result) is tuple
                    and any(x is POISON for x in result)
                ):
                    self.trace.poison_created += 1
                regs[inst] = result

        if bplan.terminate is None:
            raise UBError(f"block %{block.name} fell off the end")
        self.steps += 1
        if self.steps > fuel:
            raise FuelExhausted(
                f"fuel exhausted after {self.steps} steps "
                f"in @{fn.name}:%{block.name}"
            )
        return bplan.terminate(self, regs), block

    # -- operand evaluation ------------------------------------------------------
    def _constant_value(self, c) -> RuntimeValue:
        if isinstance(c, ConstantInt):
            return c.value
        if isinstance(c, PoisonValue):
            return poison_value(c.type)
        if isinstance(c, UndefValue):
            if not self.config.has_undef:
                # In NEW-mode execution an undef constant is treated as
                # poison (the migration story of Section 4).
                return poison_value(c.type)
            return undef_value(c.type)
        if isinstance(c, ConstantVector):
            return tuple(self._constant_value(e) for e in c.elements)
        if isinstance(c, GlobalVariable):
            addr = self.global_addrs.get(c.name)
            if addr is None:
                raise UBError(f"global @{c.name} not allocated")
            return addr
        raise NotImplementedError(f"constant {c!r}")

    def _expand_scalar(self, v: Scalar) -> Scalar:
        """Per-use expansion of undef bits (Section 3.1): a computational
        use observes *some* concrete assignment of the undef bits, chosen
        independently at every use."""
        if isinstance(v, PartialUndef):
            k = v.num_undef_bits()
            pick = self.oracle.choose(1 << k)
            self.trace.undef_expansions += 1
            return v.concretize(pick)
        return v


def _any_poison(v: RuntimeValue) -> bool:
    if isinstance(v, tuple):
        return any(x is POISON for x in v)
    return v is POISON


def run_once(fn: Function, args: Sequence[RuntimeValue],
             config: SemanticsConfig = NEW,
             choices: Optional[List[int]] = None,
             global_init: Optional[Dict[str, Bits]] = None,
             fuel: int = 10_000,
             plans: Optional[PlanCache] = None) -> Behavior:
    """Execute one oracle path (default choices = all zeros)."""
    oracle = Oracle(choices)
    interp = Interpreter(config, oracle, fuel=fuel, plans=plans)
    return interp.run(fn, args, global_init=global_init)


def enumerate_behaviors(fn: Function, args: Sequence[RuntimeValue],
                        config: SemanticsConfig = NEW,
                        global_init: Optional[Dict[str, Bits]] = None,
                        max_paths: int = 4096,
                        max_choices: int = 24,
                        fuel: int = 10_000,
                        plans: Optional[PlanCache] = None,
                        stop_on_ub: bool = False) -> frozenset:
    """The full set of observable behaviors on the given input.

    ``plans`` shares compiled execution plans across calls (the
    refinement checker passes one per function so compilation happens
    once per check, not once per input).  ``stop_on_ub=True`` stops the
    enumeration as soon as one UB behavior is found — the returned set
    is then a *subset* of the behaviors that is sufficient for callers
    who only need to know that UB is reachable (UB licenses every
    refinement, so the source side of a check never needs more).
    """
    if plans is None or plans.config != config:
        plans = PlanCache(config)
    behaviors = set()
    choices: Optional[List[int]] = []
    paths = 0
    while choices is not None:
        paths += 1
        if paths > max_paths:
            raise PathLimitExceeded(
                f"more than {max_paths} paths for @{fn.name}"
            )
        oracle = Oracle(choices, max_choices=max_choices)
        interp = Interpreter(config, oracle, fuel=fuel, plans=plans)
        behavior = interp.run(fn, args, global_init=global_init)
        behaviors.add(behavior)
        if stop_on_ub and behavior.kind == UB:
            break
        choices = oracle.next_choice_vector()
    return frozenset(behaviors)
