"""``campaign lint-attack``: adversarial validation of the checker stack.

The campaign under this mode inverts the usual arrangement: the *lint
engine and poison-flow analyzer* are the system under test, and the
exact behavior enumerator is the oracle.  Each shard walks a sampled
slice of the opt-fuzz corpus, applies every selected mutator from
:mod:`repro.mutate` to each seed, and classifies every (mutant, rule,
site) observation into the FN/FP/TP/TN taxonomy via
:func:`repro.mutate.classify_mutation`.  Every disagreement (a false
negative or false positive) is reduced to the site's backward slice and
recorded as a replayable ``lint-attack-soundness`` crash bundle.

Campaign mechanics mirror ``campaign run``: a frozen JSON-serializable
:class:`AttackSpec`, index-range sharding that is a pure function of the
spec, fsync'd JSONL checkpoints with last-record-per-shard-id-wins
semantics, and a manifest (tagged ``"kind": "lint-attack"``) that
``campaign resume`` and ``campaign report`` dispatch on.  Shard records
are pure functions of ``(spec, shard)``, so the merged taxonomy is
byte-identical across worker counts and resume boundaries.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..diag import (
    FlightRecorder,
    PassStats,
    PassTiming,
    Statistic,
    set_recorder,
    span,
    stats_snapshot,
)
from ..mutate import (
    VERDICTS,
    ClassifyOptions,
    all_mutator_names,
    classify_mutation,
    mutate_function,
)
from ..opt.resilience import write_bundle
from ..opt.resilience.bundle import make_bundle_payload
from ..semantics.config import NEW, OLD
from .checkpoint import CheckpointStore, save_manifest
from .executor import CRASHES_DIR, ShardExecutor, _errored_record
from .sharding import Shard
from .supervisor import SupervisorPolicy, WorkerSupervisor
from .worker import _maybe_crash, _stats_delta

#: manifest tag the CLI dispatches resume/report on.
MANIFEST_KIND = "lint-attack"

#: crash-bundle kind for recorded disagreements.
BUNDLE_KIND = "lint-attack-soundness"

NUM_SEEDS = Statistic(
    "lint-attack", "num-seeds-attacked",
    "Corpus seed functions run through the mutator library")
NUM_MUTANTS = Statistic(
    "lint-attack", "num-mutants",
    "Mutants generated and classified against ground truth")
NUM_OBSERVATIONS = Statistic(
    "lint-attack", "num-observations",
    "Scored (mutant, rule, site) taxonomy observations")
NUM_ORACLE_EVENTS = Statistic(
    "lint-attack", "num-oracle-events",
    "Raw observation-call events recorded by the exact oracle")
NUM_DISAGREEMENTS = Statistic(
    "lint-attack", "num-disagreements",
    "False-negative/false-positive observations (checker bugs found)")
NUM_UNCLASSIFIED = Statistic(
    "lint-attack", "num-unclassified",
    "Observations the oracle could not classify within budget")

#: (rule, verdict) -> Statistic, created on first booking so the stats
#: namespace only carries rules the campaign actually scored.
_VERDICT_STATS: Dict[Tuple[str, str], Statistic] = {}


def _verdict_stat(rule: str, verdict: str) -> Statistic:
    key = (rule, verdict)
    stat = _VERDICT_STATS.get(key)
    if stat is None:
        stat = _VERDICT_STATS[key] = Statistic(
            "lint-attack", f"num-{rule}-{verdict}",
            f"{verdict} observations for the {rule} rule")
    return stat


@dataclass(frozen=True)
class AttackSpec:
    """Everything needed to reproduce a lint-attack campaign."""

    width: int = 2
    num_instructions: int = 2
    num_args: int = 2
    #: opcode names; empty = SMALL_OPCODES.
    opcodes: Tuple[str, ...] = ()
    include_flags: bool = True
    include_deferred: bool = True
    #: cap on sampled seeds (positions, after striding).
    limit: Optional[int] = 32
    #: first corpus index to sample.
    start: int = 0
    #: sample every Nth corpus index (spreads a bounded limit over the
    #: whole enumeration space, which orders variants systematically).
    stride: int = 1
    #: mutator names; empty = every registered mutator.
    mutators: Tuple[str, ...] = ()
    #: rule IDs to score; empty = every registered rule.
    rules: Tuple[str, ...] = ()
    #: sampled seed positions per shard.
    shard_size: int = 8
    #: oracle budgets (per mutant).
    max_inputs: int = 4096
    max_paths: int = 512
    max_choices: int = 16
    fuel: int = 4000
    #: semantics the lint engine and the oracle agree on.
    semantics_name: str = "new"

    def __post_init__(self):
        from ..ir import Opcode
        from ..lint.rules import RULES
        from ..mutate import MUTATORS

        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.semantics_name not in ("new", "old"):
            raise ValueError(
                f"unknown semantics {self.semantics_name!r}")
        for name in self.opcodes:
            Opcode(name)  # raises ValueError on unknown names
        for name in self.mutators:
            if name not in MUTATORS:
                raise ValueError(f"unknown mutator {name!r}")
        for name in self.rules:
            if name not in RULES:
                raise ValueError(f"unknown lint rule {name!r}")

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> Dict:
        data = asdict(self)
        data["opcodes"] = list(self.opcodes)
        data["mutators"] = list(self.mutators)
        data["rules"] = list(self.rules)
        return data

    @staticmethod
    def from_dict(data: Dict) -> "AttackSpec":
        data = dict(data)
        for key in ("opcodes", "mutators", "rules"):
            if key in data:
                data[key] = tuple(data[key])
        return AttackSpec(**data)

    def with_(self, **changes) -> "AttackSpec":
        return replace(self, **changes)

    # -- resolution --------------------------------------------------------
    def semantics(self):
        return NEW if self.semantics_name == "new" else OLD

    def resolved_opcodes(self):
        from ..fuzz import SMALL_OPCODES
        from ..ir import Opcode

        if self.opcodes:
            return tuple(Opcode(name) for name in self.opcodes)
        return SMALL_OPCODES

    def resolved_mutators(self) -> List[str]:
        return list(self.mutators) if self.mutators else all_mutator_names()

    def resolved_rules(self) -> Optional[List[str]]:
        return list(self.rules) if self.rules else None

    def classify_options(self) -> ClassifyOptions:
        return ClassifyOptions(
            max_inputs=self.max_inputs, max_paths=self.max_paths,
            max_choices=self.max_choices, fuel=self.fuel)

    # -- corpus addressing -------------------------------------------------
    def enumeration_size(self) -> int:
        from ..fuzz.optfuzz import enumeration_size

        return enumeration_size(
            self.num_instructions, width=self.width,
            num_args=self.num_args, opcodes=self.resolved_opcodes(),
            include_deferred=self.include_deferred,
            include_flags=self.include_flags)

    def total_functions(self) -> int:
        """Number of sampled seed *positions* (the sharded unit)."""
        indices = range(self.start, self.enumeration_size(), self.stride)
        n = len(indices)
        if self.limit is not None:
            n = min(n, self.limit)
        return n

    def corpus_index(self, position: int) -> int:
        """Map a sampled position to its raw corpus index."""
        return self.start + position * self.stride

    def seed_at(self, position: int):
        from ..fuzz.optfuzz import function_at_index

        return function_at_index(
            self.corpus_index(position), self.num_instructions,
            width=self.width, num_args=self.num_args,
            opcodes=self.resolved_opcodes(),
            include_deferred=self.include_deferred,
            include_flags=self.include_flags)


def plan_attack_shards(spec: AttackSpec) -> List[Shard]:
    """The full shard plan over sampled positions — a pure function of
    the spec (shards address positions, not raw corpus indices)."""
    total = spec.total_functions()
    return [
        Shard(shard_id, lo, min(lo + spec.shard_size, total))
        for shard_id, lo in enumerate(range(0, total, spec.shard_size))
    ]


def run_attack_shard(spec: AttackSpec, shard: Shard,
                     known_hashes: Optional[Dict[str, str]] = None) -> dict:
    """Attack one shard's seeds; a pure function of ``(spec, shard)``.

    ``known_hashes`` is accepted for executor-interface compatibility
    and ignored (attack shards have no cross-shard dedup: every scored
    observation is wanted, per-rule).
    """
    _maybe_crash(shard.shard_id)
    stats_before = stats_snapshot()
    t0 = time.monotonic()
    semantics = spec.semantics()
    opts = spec.classify_options()
    mutators = spec.resolved_mutators()
    rules = spec.resolved_rules()

    taxonomy: Dict[str, Dict[str, int]] = {}
    disagreements: List[dict] = []
    bundles: List[dict] = []
    seeds = mutants = observations = oracle_events = 0
    with span("attack-shard", cat="campaign") as sp:
        sp.set(shard=shard.shard_id)
        for position in range(shard.start, shard.stop):
            index = spec.corpus_index(position)
            fn = spec.seed_at(position)
            seeds += 1
            NUM_SEEDS.inc()
            for mutation in mutate_function(fn, mutators):
                mutants += 1
                NUM_MUTANTS.inc()
                scored, events = classify_mutation(
                    mutation, semantics, opts, rules=rules)
                oracle_events += events
                NUM_ORACLE_EVENTS.inc(events)
                for obs in scored:
                    observations += 1
                    NUM_OBSERVATIONS.inc()
                    bucket = taxonomy.setdefault(
                        obs.rule, {v: 0 for v in VERDICTS})
                    bucket[obs.verdict] += 1
                    _verdict_stat(obs.rule, obs.verdict).inc()
                    if obs.verdict == "unclassified":
                        NUM_UNCLASSIFIED.inc()
                    if not obs.is_disagreement:
                        continue
                    NUM_DISAGREEMENTS.inc()
                    payload = make_bundle_payload(
                        pre_ir=obs.reduced_ir,
                        pass_name="poison-flow",
                        application=index,
                        kind=BUNDLE_KIND,
                        error=(f"{obs.rule} {obs.verdict} at {obs.site} "
                               f"(mutator {obs.mutator}): {obs.detail}"),
                        traceback_text="",
                        function=f"{mutation.seed}+{mutation.mutator}",
                    )
                    bundles.append(payload)
                    entry = obs.as_dict()
                    entry["index"] = index
                    entry["bundle_id"] = payload.get("bundle_id", "")
                    disagreements.append(entry)

    return {
        "shard_id": shard.shard_id,
        "status": "done",
        "start": shard.start,
        "stop": shard.stop,
        "seeds": seeds,
        "mutants": mutants,
        "observations": observations,
        "oracle_events": oracle_events,
        "taxonomy": taxonomy,
        "disagreements": disagreements,
        "crashes": [],
        "bundles": bundles,
        "wall_seconds": time.monotonic() - t0,
        "stats": _stats_delta(stats_before, stats_snapshot()),
    }


@dataclass
class AttackSummary:
    """Aggregate view over every checkpointed shard of an attack."""

    spec: AttackSpec
    shards_total: int
    shards_run: int
    shards_skipped: int
    shards_errored: List[int]
    seeds: int = 0
    mutants: int = 0
    observations: int = 0
    oracle_events: int = 0
    #: rule -> verdict -> count, merged in shard-id order.
    taxonomy: Dict[str, Dict[str, int]] = field(default_factory=dict)
    disagreements: List[dict] = field(default_factory=list)
    bundle_paths: List[str] = field(default_factory=list)
    worker_restarts: int = 0
    shards_quarantined: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    timing: PassTiming = field(default_factory=PassTiming, repr=False)
    records: Dict[int, dict] = field(default_factory=dict, repr=False)

    @property
    def unclassified(self) -> int:
        return sum(bucket.get("unclassified", 0)
                   for bucket in self.taxonomy.values())

    @property
    def classified(self) -> int:
        return self.observations - self.unclassified

    @property
    def mutants_per_second(self) -> float:
        return self.mutants / self.wall_seconds if self.wall_seconds else 0.0

    def taxonomy_lines(self) -> List[str]:
        """Canonical, worker-count-independent result lines."""
        lines = []
        for rule in sorted(self.taxonomy):
            bucket = self.taxonomy[rule]
            lines.append(
                f"{rule} " + " ".join(
                    f"{v}={bucket.get(v, 0)}" for v in VERDICTS))
        lines.extend(sorted(
            f"disagree {d['rule']} {d['verdict']} seed#{d['index']} "
            f"{d['mutator']} {d['site']}"
            for d in self.disagreements))
        return lines

    def as_dict(self) -> dict:
        return {
            "kind": MANIFEST_KIND,
            "spec": self.spec.as_dict(),
            "shards_total": self.shards_total,
            "shards_run": self.shards_run,
            "shards_skipped": self.shards_skipped,
            "shards_errored": list(self.shards_errored),
            "seeds": self.seeds,
            "mutants": self.mutants,
            "observations": self.observations,
            "oracle_events": self.oracle_events,
            "classified": self.classified,
            "unclassified": self.unclassified,
            "taxonomy": self.taxonomy,
            "disagreements": self.disagreements,
            "bundles": self.bundle_paths,
            "worker_restarts": self.worker_restarts,
            "shards_quarantined": list(self.shards_quarantined),
            "wall_seconds": self.wall_seconds,
            "mutants_per_second": self.mutants_per_second,
            "stats": self.stats,
        }


class AttackRunner:
    """Run (or resume) one lint-attack campaign against an output
    directory; ``out_dir=None`` runs fully in memory (benchmarks)."""

    def __init__(self, spec: AttackSpec, out_dir: Optional[str] = None,
                 workers: int = 1, shard_timeout: Optional[float] = None,
                 use_processes: Optional[bool] = None,
                 supervisor_policy: Optional[SupervisorPolicy] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.out_dir = out_dir
        self.workers = workers
        self.shard_timeout = shard_timeout
        self.use_processes = use_processes
        self.supervisor_policy = supervisor_policy
        self.store = CheckpointStore(out_dir) if out_dir else None

    def run(self, resume: bool = False, stop_after: Optional[int] = None,
            progress: Optional[Callable[[dict], None]] = None
            ) -> AttackSummary:
        shards = plan_attack_shards(self.spec)
        prior: Dict[int, dict] = {}
        if self.store is not None:
            if resume:
                prior = {
                    sid: record
                    for sid, record in self.store.load().items()
                    if record.get("status") == "done"
                }
            else:
                save_manifest(self.out_dir, self.spec,
                              extra={"kind": MANIFEST_KIND,
                                     "shards": len(shards)})

        pending = [s for s in shards if s.shard_id not in prior]
        if stop_after is not None:
            pending = pending[:stop_after]

        new_records: Dict[int, dict] = {}

        def finalize(shard: Shard, record: dict) -> None:
            self._persist_bundles(record)
            new_records[shard.shard_id] = record
            if self.store is not None:
                self.store.append(record)
            if progress is not None:
                progress(record)

        run_processes = (self.use_processes
                         if self.use_processes is not None
                         else self.workers > 1)
        with span("lint-attack-run", cat="campaign") as sp:
            if run_processes:
                self._run_subprocess(pending, finalize)
            else:
                self._run_inprocess(pending, finalize)
            sp.set(shards=len(pending), workers=self.workers,
                   processes=run_processes)

        return self._summarize({**prior, **new_records}, shards,
                               shards_run=len(new_records),
                               shards_skipped=len(prior))

    # -- execution strategies ---------------------------------------------
    def _run_inprocess(self, pending: List[Shard], finalize) -> None:
        for shard in pending:
            recorder = FlightRecorder()
            old_recorder = set_recorder(recorder)
            recorder.install()
            try:
                record = run_attack_shard(self.spec, shard)
            except Exception as e:
                record = _errored_record(shard, repr(e))
                record["flight_recorder"] = recorder.dump()
            finally:
                recorder.uninstall()
                set_recorder(old_recorder)
            finalize(shard, record)

    def _run_subprocess(self, pending: List[Shard], finalize) -> None:
        executor = ShardExecutor(
            workers=self.workers, shard_timeout=self.shard_timeout,
            supervisor=WorkerSupervisor(self.supervisor_policy),
            work=MANIFEST_KIND)
        for shard in pending:
            executor.submit(self.spec, shard)
        for _job_id, shard, record in executor.drain():
            finalize(shard, record)

    def _persist_bundles(self, record: dict) -> None:
        payloads = record.get("bundles") or []
        if not payloads:
            return
        if self.out_dir is None:
            record["bundles"] = [p.get("bundle_id", "") for p in payloads]
            return
        root = os.path.join(self.out_dir, CRASHES_DIR)
        record["bundles"] = [write_bundle(root, p) for p in payloads]

    # -- aggregation -------------------------------------------------------
    def _summarize(self, records: Dict[int, dict], shards: List[Shard],
                   shards_run: int, shards_skipped: int) -> AttackSummary:
        summary = AttackSummary(
            spec=self.spec,
            shards_total=len(shards),
            shards_run=shards_run,
            shards_skipped=shards_skipped,
            shards_errored=[],
            records=records,
        )
        _merge_attack_records(summary, records)
        return summary


def _merge_attack_records(summary: AttackSummary,
                          records: Dict[int, dict]) -> None:
    for sid in sorted(records):
        record = records[sid]
        if record.get("status") == "errored":
            summary.shards_errored.append(sid)
        summary.worker_restarts += record.get("restarts", 0)
        if record.get("quarantined"):
            summary.shards_quarantined.append(sid)
        summary.seeds += record.get("seeds", 0)
        summary.mutants += record.get("mutants", 0)
        summary.observations += record.get("observations", 0)
        summary.oracle_events += record.get("oracle_events", 0)
        for rule, bucket in (record.get("taxonomy") or {}).items():
            dest = summary.taxonomy.setdefault(
                rule, {v: 0 for v in VERDICTS})
            for verdict, n in bucket.items():
                dest[verdict] = dest.get(verdict, 0) + n
        summary.disagreements.extend(record.get("disagreements", []))
        summary.bundle_paths.extend(record.get("bundles", []))
        summary.wall_seconds += record.get("wall_seconds", 0.0)
        for pass_name, counters in (record.get("stats") or {}).items():
            dest = summary.stats.setdefault(pass_name, {})
            for name, value in counters.items():
                dest[name] = dest.get(name, 0) + value
        summary.timing.passes.setdefault(
            "attack-shard", PassStats()
        ).record(f"shard{sid}", record.get("wall_seconds", 0.0),
                 changed=bool(record.get("disagreements")))


def aggregate_attack_records(spec: AttackSpec,
                             records: Dict[int, dict]) -> dict:
    """Report-side aggregation from checkpointed records only."""
    summary = AttackSummary(
        spec=spec, shards_total=0, shards_run=len(records),
        shards_skipped=0, shards_errored=[], records=records)
    summary.shards_total = len(plan_attack_shards(spec))
    _merge_attack_records(summary, records)
    return summary.as_dict()


def render_attack_report(spec: AttackSpec,
                         records: Dict[int, dict]) -> str:
    """Human-readable attack report (see DESIGN, "Adversarial
    validation", for how to read it)."""
    summary = AttackSummary(
        spec=spec, shards_total=len(plan_attack_shards(spec)),
        shards_run=len(records), shards_skipped=0, shards_errored=[],
        records=records)
    _merge_attack_records(summary, records)
    lines = [
        (f"lint-attack: width={spec.width} "
         f"instructions={spec.num_instructions} "
         f"seeds sampled={spec.total_functions()} "
         f"stride={spec.stride}"),
        (f"  shards: {len(records)}/{summary.shards_total} recorded, "
         f"{len(summary.shards_errored)} errored"),
        (f"  {summary.seeds} seed(s) -> {summary.mutants} mutant(s), "
         f"{summary.observations} observation(s) "
         f"({summary.oracle_events} oracle events)"),
        (f"  classified: {summary.classified}, "
         f"unclassified: {summary.unclassified}"),
        "",
        "  rule                           tp    fp    fn    tn  uncl",
    ]
    for rule in sorted(summary.taxonomy):
        b = summary.taxonomy[rule]
        lines.append(
            f"  {rule:<28} {b.get('tp', 0):>5} {b.get('fp', 0):>5} "
            f"{b.get('fn', 0):>5} {b.get('tn', 0):>5} "
            f"{b.get('unclassified', 0):>5}")
    if summary.disagreements:
        lines.append("")
        lines.append(f"  {len(summary.disagreements)} disagreement(s) "
                     f"— checker bugs, bundled for replay:")
        for d in summary.disagreements[:10]:
            lines.append(f"    {d['rule']} {d['verdict']} on "
                         f"seed#{d['index']} via {d['mutator']} at "
                         f"{d['site']}")
        if len(summary.disagreements) > 10:
            lines.append(
                f"    ... {len(summary.disagreements) - 10} more")
    else:
        lines.append("  no disagreements: every fired/silent verdict "
                     "consistent with the exact semantics")
    if summary.shards_errored:
        lines.append(f"  errored shards (will retry on resume): "
                     f"{summary.shards_errored}")
    return "\n".join(lines)


def run_attack(spec: AttackSpec, out_dir: Optional[str] = None,
               workers: int = 1, resume: bool = False,
               shard_timeout: Optional[float] = None,
               stop_after: Optional[int] = None) -> AttackSummary:
    """One-call convenience wrapper around :class:`AttackRunner`."""
    runner = AttackRunner(spec, out_dir=out_dir, workers=workers,
                          shard_timeout=shard_timeout)
    return runner.run(resume=resume, stop_after=stop_after)
