"""Canonical IR text and hashing for the dedup cache.

Two functions that differ only in value names, block labels, or the
function's own name are the *same* test case for a validation campaign:
optimizing and refinement-checking both wastes a full checker run.
:func:`canonical_text` alpha-renames a function into a fixed namespace —
arguments become ``%c0, %c1, ...`` in signature order, blocks ``b0,
b1, ...`` in layout order, instruction results ``%t0, %t1, ...`` in
program order — and :func:`canonical_hash` is the SHA-256 of that text.
Renaming happens on a freshly parsed copy, so the input function is
never mutated.

The guarantee the campaign engine relies on (and the property tests
enforce): the printed IR round-trips through the parser, and canonical
hashing is invariant under any consistent renaming of values and blocks.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Union

from ..ir import Function, ParseError, parse_function, parse_module, print_function, print_module


def _fresh_copy(fn: Union[Function, str]) -> Function:
    """Parse a private copy of ``fn`` that is safe to mutate."""
    if isinstance(fn, str):
        return parse_function(fn)
    try:
        return parse_function(print_function(fn))
    except (ParseError, ValueError):
        # The function references module-level entities (declarations,
        # globals); reparse the whole module and pick the function out.
        if fn.module is None:
            raise
        copy = parse_module(print_module(fn.module)).get_function(fn.name)
        if copy is None:  # pragma: no cover - printer/parser disagree
            raise
        return copy


def canonical_function(fn: Union[Function, str]) -> Function:
    """A freshly parsed copy of ``fn`` renamed into the canonical
    namespace (``%cN`` args, ``bN`` blocks, ``%tN`` results)."""
    copy = _fresh_copy(fn)
    copy.name = "f"
    for i, arg in enumerate(copy.args):
        arg.name = f"c{i}"
    for i, block in enumerate(copy.blocks):
        block.name = f"b{i}"
    n = 0
    for inst in copy.instructions():
        if not inst.type.is_void:
            inst.name = f"t{n}"
            n += 1
    return copy


def canonical_text(fn: Union[Function, str]) -> str:
    """The function's text with canonical value/block/function names."""
    return print_function(canonical_function(fn))


def canonical_hash(fn: Union[Function, str]) -> str:
    """SHA-256 (hex) of :func:`canonical_text`; the dedup-cache key."""
    return hashlib.sha256(canonical_text(fn).encode("utf-8")).hexdigest()


class DedupCache:
    """Hash → verdict map with hit/miss accounting.

    The campaign coordinator preloads it with every hash recorded by
    earlier runs (the persisted dedup log) before shards launch, so the
    preloaded set is identical no matter how many workers execute the
    shards — a requirement for worker-count-independent verdict sets.
    Shards then add their own discoveries locally.
    """

    def __init__(self, known: Optional[Dict[str, str]] = None):
        self._verdicts: Dict[str, str] = dict(known or {})
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._verdicts)

    def __contains__(self, h: str) -> bool:
        return h in self._verdicts

    def lookup(self, h: str) -> Optional[str]:
        """The cached verdict, counting the probe as a hit or miss."""
        verdict = self._verdicts.get(h)
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def add(self, h: str, verdict: str) -> None:
        self._verdicts[h] = verdict

    def as_dict(self) -> Dict[str, str]:
        return dict(self._verdicts)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
