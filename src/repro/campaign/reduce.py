"""Counterexample reduction: shrink a failing pair to a minimal repro.

The llvm-reduce analog for campaign findings.  Given the *source* text
of a function the pipeline miscompiles, greedily apply shrinking steps —
delete an instruction (rerouting its uses to an operand or a constant),
replace an operand with a simpler value (0, 1, -1, poison, undef),
collapse a conditional branch and drop the unreachable blocks, merge
straight-line blocks — and
keep a step only if the reduced function still *fails* refinement after
re-optimizing it.  The oracle re-runs the exact pipeline + checker the
campaign used, so the final reproducer demonstrably exhibits the same
class of miscompilation, just smaller.

Every candidate is built on a freshly parsed copy (functions are cheap
to parse at this size), which keeps mutations isolated and guarantees
the reducer can never corrupt the original counterexample.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, List

from ..ir import (
    BranchInst,
    ConstantInt,
    Function,
    IntType,
    ParseError,
    PoisonValue,
    SwitchInst,
    UndefValue,
    parse_function,
    print_function,
    verify_function,
)
from ..refine import check_refinement
from .spec import CampaignSpec

Oracle = Callable[[str], bool]


def make_failure_oracle(spec: CampaignSpec) -> Oracle:
    """``oracle(text)`` — does the spec's pipeline still miscompile it?

    False for anything that fails to parse, verify, or optimize: an
    interestingness test must reject broken candidates, not crash.
    """
    options = spec.check_options()
    semantics = spec.semantics()

    def still_fails(text: str) -> bool:
        try:
            fn = parse_function(text)
            before = parse_function(text)
            spec.make_pipeline().run_on_function(fn)
            verify_function(fn)
        except Exception:
            return False
        return check_refinement(before, fn, semantics,
                                options=options).failed

    return still_fails


@dataclass
class ReductionResult:
    """Outcome of reducing one counterexample."""

    original: str
    reduced: str
    original_instructions: int
    reduced_instructions: int
    rounds: int
    candidates_tried: int
    seconds: float
    #: True iff the *final* text still fails the oracle (always the case
    #: when the original failed; False means the input wasn't failing).
    still_failing: bool = True
    steps: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "original": self.original,
            "reduced": self.reduced,
            "original_instructions": self.original_instructions,
            "reduced_instructions": self.reduced_instructions,
            "rounds": self.rounds,
            "candidates_tried": self.candidates_tried,
            "seconds": self.seconds,
            "still_failing": self.still_failing,
            "steps": self.steps,
        }


def _num_instructions(text: str) -> int:
    try:
        return parse_function(text).num_instructions()
    except (ParseError, ValueError):
        return 0


def _replacement_values(ty) -> List:
    """Simpler stand-ins for a value of type ``ty`` (int types only)."""
    values: List = []
    if isinstance(ty, IntType):
        values.append(ConstantInt(ty, 0))
        if ty.bits > 1:
            values.append(ConstantInt(ty, 1))
            values.append(ConstantInt(ty, (1 << ty.bits) - 1))
        values.append(PoisonValue(ty))
        values.append(UndefValue(ty))
    return values


def _candidates(text: str) -> Iterator[tuple]:
    """Yield ``(description, candidate_text)`` pairs, best-first: block
    drops, then instruction deletions, then operand simplifications."""

    def fresh() -> Function:
        return parse_function(text)

    base = fresh()
    num_blocks = len(base.blocks)
    num_insts = base.num_instructions()

    # 1) Collapse a conditional terminator to one successor and drop the
    #    blocks that become unreachable.
    if num_blocks > 1:
        for block_idx, block in enumerate(base.blocks):
            term = block.terminator
            targets = []
            if isinstance(term, BranchInst) and term.is_conditional:
                targets = [0, 1]
            elif isinstance(term, SwitchInst):
                targets = list(range(len(term.targets)))
            for t in targets:
                fn = fresh()
                b = fn.blocks[block_idx]
                old = b.terminator
                succ = old.targets[t]
                b.erase(old)
                b.append(BranchInst(target=succ))
                _drop_unreachable(fn)
                yield (f"collapse %{b.name} terminator to "
                       f"%{succ.name}", print_function(fn))

    # 2) Merge a block that ends in an unconditional branch into its
    #    successor when the successor has no other predecessors (the
    #    shape step 1 leaves behind).
    if num_blocks > 1:
        for block_idx, block in enumerate(base.blocks):
            term = block.terminator
            if not (isinstance(term, BranchInst)
                    and not term.is_conditional):
                continue
            succ = term.targets[0]
            if succ is block or succ.predecessors() != [block]:
                continue
            fn = fresh()
            b = fn.blocks[block_idx]
            s = b.terminator.targets[0]
            b.erase(b.terminator)
            for phi in list(s.phis()):
                phi.replace_all_uses_with(phi.incoming_for_block(b))
                s.erase(phi)
            for inst in list(s.instructions):
                s.remove(inst)
                b.append(inst)
            fn.remove_block(s)
            yield (f"merge %{s.name} into %{b.name}",
                   print_function(fn))

    # 3) Delete one instruction, rerouting its uses.
    for inst_idx in range(num_insts):
        target = list(base.instructions())[inst_idx]
        if target.parent is not None and target is target.parent.terminator:
            continue
        plain_delete = target.type.is_void or not list(target.users())
        if plain_delete:
            n_options = 1
        else:
            n_options = (
                sum(1 for op in target.operands if op.type is target.type)
                + len(_replacement_values(target.type)))
        for r_idx in range(n_options):
            fn = fresh()
            victim = list(fn.instructions())[inst_idx]
            if plain_delete:
                desc = f"delete {victim.opcode.value}"
            else:
                pool = [op for op in victim.operands
                        if op.type is victim.type]
                pool += _replacement_values(victim.type)
                repl = pool[r_idx]
                victim.replace_all_uses_with(repl)
                desc = f"delete {victim.opcode.value}, uses -> {repl.ref()}"
            victim.parent.erase(victim)
            yield (desc, print_function(fn))

    # 4) Replace one operand with a simpler value.
    for inst_idx in range(num_insts):
        insts = list(base.instructions())
        target = insts[inst_idx]
        for op_idx, op in enumerate(target.operands):
            if op.is_constant or op.is_poison:
                continue
            for v_idx, _ in enumerate(_replacement_values(op.type)):
                fn = fresh()
                victim = list(fn.instructions())[inst_idx]
                values = _replacement_values(victim.operand(op_idx).type)
                if v_idx >= len(values):
                    continue
                victim.set_operand(op_idx, values[v_idx])
                yield (f"operand {op_idx} of {victim.opcode.value} -> "
                       f"{values[v_idx].ref()}", print_function(fn))


def _drop_unreachable(fn: Function) -> None:
    """Remove blocks unreachable from entry, fixing phi edges."""
    reachable = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        stack.extend(block.successors())
    dead = [b for b in fn.blocks if id(b) not in reachable]
    for block in dead:
        for inst in list(block.instructions):
            block.erase(inst)
    for block in fn.blocks:
        if id(block) not in reachable:
            continue
        for phi in block.phis():
            for pred in [b for b in phi.incoming_blocks
                         if id(b) not in reachable]:
                phi.remove_incoming(pred)
    for block in dead:
        fn.remove_block(block)


def reduce_failure(src_text: str, oracle: Oracle,
                   max_rounds: int = 32) -> ReductionResult:
    """Greedy fixpoint reduction of ``src_text`` under ``oracle``.

    Each round scans the candidate list and restarts from the first
    candidate that still fails; the loop ends when a full scan finds
    nothing (a 1-minimal reproducer for these step kinds) or after
    ``max_rounds``.
    """
    start = time.perf_counter()
    original = src_text
    # Normalize through the printer so size comparisons are meaningful.
    try:
        current = print_function(parse_function(src_text))
    except (ParseError, ValueError):
        current = src_text

    if not oracle(current):
        return ReductionResult(
            original=original, reduced=current,
            original_instructions=_num_instructions(current),
            reduced_instructions=_num_instructions(current),
            rounds=0, candidates_tried=0,
            seconds=time.perf_counter() - start, still_failing=False,
        )

    tried = 0
    rounds = 0
    steps: List[str] = []
    progressed = True
    while progressed and rounds < max_rounds:
        progressed = False
        rounds += 1
        for desc, candidate in _candidates(current):
            if candidate == current:
                continue
            tried += 1
            if oracle(candidate):
                current = candidate
                steps.append(desc)
                progressed = True
                break

    return ReductionResult(
        original=original, reduced=current,
        original_instructions=_num_instructions(original),
        reduced_instructions=_num_instructions(current),
        rounds=rounds, candidates_tried=tried,
        seconds=time.perf_counter() - start, still_failing=True,
        steps=steps,
    )


def reduce_counterexamples(counterexamples: List[dict],
                           spec: CampaignSpec,
                           max_rounds: int = 32) -> List[dict]:
    """Reduce each unique counterexample (by canonical hash); returns
    JSONL-ready records pairing the original finding with its minimal
    reproducer."""
    oracle = make_failure_oracle(spec)
    seen = set()
    out = []
    for cex in counterexamples:
        key = cex.get("hash") or cex.get("source")
        if key in seen:
            continue
        seen.add(key)
        result = reduce_failure(cex["source"], oracle,
                                max_rounds=max_rounds)
        record = dict(cex)
        record.update(result.as_dict())
        out.append(record)
    return out
