"""Campaign reporting: aggregate checkpointed shards into diag output.

``campaign report`` reconstructs a :class:`CampaignSummary`-shaped view
purely from the on-disk checkpoint (no re-execution), rebuilds a
:class:`StatsRegistry` and a :class:`PassTiming` from the records, and
renders them with the same formatters the compiler CLI uses — the
classic ``-stats`` table and the ``-time-passes`` table, one row per
shard.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..diag import PassStats, PassTiming, StatsRegistry
from .spec import CampaignSpec


def aggregate_records(spec: CampaignSpec,
                      records: Dict[int, dict]) -> dict:
    """Campaign-wide totals from a checkpoint's shard records."""
    agg = {
        "spec": spec.as_dict(),
        "shards_done": 0,
        "shards_errored": [],
        "checked": 0,
        "dedup_hits": 0,
        "verified": 0,
        "sampled_verified": 0,
        "failed": 0,
        "inconclusive": 0,
        "timeout": 0,
        "recoveries": 0,
        "crashes": [],
        "bundles": [],
        "wall_seconds": 0.0,
        "counterexamples": [],
        "verdicts": {},
        #: per-rule lint fire counts over the shards' functions.
        "lint_findings": {},
        #: per-reason counts of checks the vector engine declined.
        "vector_ineligible": {},
    }
    for sid in sorted(records):
        record = records[sid]
        if record.get("status") == "errored":
            agg["shards_errored"].append(
                {"shard_id": sid, "error": record.get("error", "")})
        else:
            agg["shards_done"] += 1
        # Errored shards still contribute their partial results: with a
        # guarded pipeline, a shard with per-function crashes reports
        # everything that did conclude.
        agg["checked"] += record.get("checked", 0)
        agg["dedup_hits"] += record.get("dedup_hits", 0)
        verdicts = record.get("verdicts", {})
        agg["verified"] += verdicts.get("verified", 0)
        agg["sampled_verified"] += record.get("sampled_verified", 0)
        agg["failed"] += verdicts.get("failed", 0)
        agg["inconclusive"] += verdicts.get("inconclusive", 0)
        agg["timeout"] += verdicts.get("timeout", 0)
        agg["recoveries"] += record.get("recoveries", 0)
        agg["crashes"].extend(record.get("crashes", []))
        agg["bundles"].extend(record.get("bundles", []))
        agg["wall_seconds"] += record.get("wall_seconds", 0.0)
        agg["counterexamples"].extend(record.get("counterexamples", []))
        for h, v in sorted(record.get("hashes", {}).items()):
            agg["verdicts"].setdefault(h, v)
        stats = record.get("stats") or {}
        for name, value in stats.get("lint", {}).items():
            if name == "num-functions-linted":
                continue
            rule = name[len("num-"):] if name.startswith("num-") else name
            agg["lint_findings"][rule] = (
                agg["lint_findings"].get(rule, 0) + value)
        prefix = "num-vector-ineligible-"
        for name, value in stats.get("refine", {}).items():
            if name.startswith(prefix):
                reason = name[len(prefix):]
                agg["vector_ineligible"][reason] = (
                    agg["vector_ineligible"].get(reason, 0) + value)
    total = agg["checked"] + agg["dedup_hits"]
    agg["dedup_hit_rate"] = agg["dedup_hits"] / total if total else 0.0
    return agg


def build_diag(records: Dict[int, dict]
               ) -> Tuple[StatsRegistry, PassTiming]:
    """A private StatsRegistry + PassTiming reconstructed from shard
    records — the checkpointed form of what a live run feeds into the
    process-wide diag layer."""
    registry = StatsRegistry()
    timing = PassTiming()
    for sid in sorted(records):
        record = records[sid]
        if record.get("status") == "errored":
            registry.add("campaign", "num-shards-errored")
        else:
            registry.add("campaign", "num-shards-done")
        registry.add("campaign", "num-functions-checked",
                     record.get("checked", 0))
        registry.add("campaign", "num-dedup-hits",
                     record.get("dedup_hits", 0))
        registry.add("campaign", "num-refinement-failures",
                     record.get("verdicts", {}).get("failed", 0))
        registry.add("campaign", "num-timeout-verdicts",
                     record.get("verdicts", {}).get("timeout", 0))
        registry.add("campaign", "num-pass-recoveries",
                     record.get("recoveries", 0))
        registry.add("campaign", "num-pass-crashes",
                     len(record.get("crashes", [])))
        for pass_name, counters in record.get("stats", {}).items():
            for name, value in counters.items():
                registry.add(pass_name, name, value)
        timing.passes.setdefault("campaign-shard", PassStats()).record(
            f"shard{sid}", record.get("wall_seconds", 0.0),
            changed=bool(record.get("verdicts", {}).get("failed")))
    return registry, timing


def render_report(spec: CampaignSpec, records: Dict[int, dict]) -> str:
    """The human-readable ``campaign report`` body."""
    agg = aggregate_records(spec, records)
    registry, timing = build_diag(records)

    corpus = (f"enumerate x{spec.num_instructions} i{spec.width}"
              if spec.mode == "enumerate"
              else f"random({spec.count}) x{spec.num_instructions} "
                   f"i{spec.width} seed={spec.seed}")
    lines: List[str] = [
        f"campaign: {spec.pipeline} pipeline, {spec.opt_config} config, "
        f"{corpus}",
        f"  shards:       {agg['shards_done']} done, "
        f"{len(agg['shards_errored'])} errored",
        f"  functions:    {agg['checked']} checked, "
        f"{agg['dedup_hits']} dedup hits "
        f"({agg['dedup_hit_rate'] * 100:.1f}%)",
        f"  verdicts:     {agg['verified']} verified"
        + (f" ({agg['sampled_verified']} sampled)"
           if agg["sampled_verified"] else "")
        + f", {agg['failed']} failed, {agg['inconclusive']} inconclusive, "
        f"{agg['timeout']} timeout",
        f"  shard wall:   {agg['wall_seconds']:.3f}s total",
    ]
    if agg["recoveries"] or agg["crashes"]:
        lines.append(
            f"  resilience:   {agg['recoveries']} pass failure(s) "
            f"recovered, {len(agg['crashes'])} function(s) crashed")
    if agg["lint_findings"]:
        findings = ", ".join(
            f"{rule}: {n}"
            for rule, n in sorted(agg["lint_findings"].items()))
        lines.append(f"  lint fires:   {findings}")
    if agg["vector_ineligible"]:
        reasons = ", ".join(
            f"{reason}: {n}"
            for reason, n in sorted(agg["vector_ineligible"].items()))
        lines.append(f"  vector decl.: {reasons} "
                     f"(checks routed to the scalar engine)")
    for bundle in agg["bundles"]:
        lines.append(f"  crash bundle: {bundle}")
    for err in agg["shards_errored"]:
        lines.append(f"  errored shard {err['shard_id']}: {err['error']}")
    if agg["counterexamples"]:
        lines.append("")
        lines.append(f"  {len(agg['counterexamples'])} refinement "
                     f"failure(s); first:")
        first = agg["counterexamples"][0]
        for text_line in first["source"].strip().splitlines():
            lines.append(f"    {text_line}")
        lines.append(f"    -- {first['counterexample'].strip().splitlines()[0].strip()}")
    lines.append("")
    lines.append(timing.report(per_function=True,
                               title="Campaign shard timing"))
    lines.append("")
    lines.append(registry.format_text())
    return "\n".join(lines)
