"""Differential validation of the poison dataflow against the semantics.

The lint rules are pure functions of the fixpoint facts, so the whole
checker is sound exactly when the facts are: a ``MustNotPoison`` claim
must mean the value is *never* poison/undef in any execution, and a
``MustPoison`` claim must mean it always is.  This module checks both
against the executable semantics, exhaustively, over the opt-fuzz
corpus.

The oracle is the observation-call trick: for every claimed value we
insert ``call void @__lint_obs_K(%v)`` right after its definition in a
parsed copy of the function.  External calls record their argument
*bits* (including poison/undef bit markers) as events, so
``enumerate_behaviors`` hands us the exact runtime value of ``%v`` on
every path of every input — including inputs that are themselves poison
— while conditional execution is handled for free (a value is only
observed when its definition actually runs).

Any contradiction is an analyzer soundness bug: it is reduced to the
claimed value's backward slice and written as a crash bundle
(``kind: lint-audit-soundness``) for offline triage, and the audit
exits nonzero.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.poison_flow import (
    MUST_NOT_POISON,
    MUST_POISON,
    analyze_poison_flow,
)
from ..diag import Statistic
from ..fuzz import enumerate_functions
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    Instruction,
    Opcode,
    PhiInst,
)
from ..ir.parser import parse_module
from ..ir.printer import print_function, print_instruction
from ..ir.types import FunctionType, VoidType
from ..opt.resilience.bundle import make_bundle_payload, write_bundle
from ..refine.exhaustive import input_candidates
from ..semantics.domains import PBIT, UBIT
from ..semantics.interp import enumerate_behaviors

NUM_FUNCTIONS_AUDITED = Statistic(
    "lint-audit", "num-functions-audited",
    "Corpus functions differentially audited")
NUM_CLAIMS_CHECKED = Statistic(
    "lint-audit", "num-claims-checked",
    "MustNotPoison / MustPoison claims validated against the semantics")
NUM_OBSERVATIONS = Statistic(
    "lint-audit", "num-observations",
    "Individual value observations compared against claims")
NUM_CONTRADICTIONS = Statistic(
    "lint-audit", "num-contradictions",
    "Analyzer claims contradicted by the executable semantics")

_OBS_PREFIX = "__lint_obs_"

_DIVISIONS = (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM)


@dataclass
class AuditOptions:
    max_inputs: int = 4096
    max_paths: int = 512
    max_choices: int = 16
    fuel: int = 2000
    bundle_dir: Optional[str] = None


@dataclass
class Contradiction:
    """One refuted claim: the analyzer bug record."""

    function: str
    index: int
    claim: str           # "must-not-poison" | "must-poison"
    value_ref: str
    inputs: Tuple
    observed_bits: str
    reduced_ir: str
    bundle_path: str = ""

    def as_dict(self) -> Dict:
        return {
            "function": self.function,
            "index": self.index,
            "claim": self.claim,
            "value": self.value_ref,
            "inputs": [str(v) for v in self.inputs],
            "observed_bits": self.observed_bits,
            "reduced_ir": self.reduced_ir,
            "bundle": self.bundle_path,
        }


def _bits_str(bits) -> str:
    def one(b) -> str:
        if b is PBIT:
            return "p"
        if b is UBIT:
            return "u"
        return str(b)

    return "".join(one(b) for b in reversed(bits))


def _is_poisoned(bits) -> bool:
    return any(b is PBIT or b is UBIT for b in bits)


def _is_all_poison(bits) -> bool:
    return all(b is PBIT for b in bits)


def _collect_claims(fn: Function, semantics) -> List[Tuple[Instruction, str]]:
    """(instruction, claim) pairs the fixpoint commits to on ``fn``."""
    flow = analyze_poison_flow(fn, semantics)
    claims: List[Tuple[Instruction, str]] = []
    for block in fn.blocks:
        for inst in block.instructions:
            if inst.type.is_void or inst.is_terminator:
                continue
            fact = flow.fact_of(inst)
            if fact.is_must_not_poison:
                claims.append((inst, MUST_NOT_POISON))
            elif fact.is_must_poison:
                claims.append((inst, MUST_POISON))
    return claims


def _instrument(fn: Function,
                claims: List[Tuple[Instruction, str]]) -> Dict[str, str]:
    """Insert one observation call per claim; returns obs-name -> claim."""
    module = fn.module
    void = VoidType()
    obs_map: Dict[str, str] = {}
    for k, (inst, claim) in enumerate(claims):
        name = f"{_OBS_PREFIX}{k}"
        callee = module.declare(name, FunctionType(void, (inst.type,)))
        call = CallInst(callee, [inst])
        block = inst.parent
        insts = block.instructions
        anchor = insts[insts.index(inst) + 1]
        while isinstance(anchor, PhiInst):  # keep phis contiguous
            anchor = insts[insts.index(anchor) + 1]
        block.insert_before(anchor, call)
        obs_map[name] = claim
    return obs_map


def _slice_refs(inst: Instruction) -> List[Instruction]:
    """Backward slice of ``inst`` over instruction operands, in a
    deterministic def-before-use order."""
    seen = {id(inst)}
    out = [inst]
    work = [inst]
    while work:
        cur = work.pop()
        for op in cur.operands:
            if isinstance(op, Instruction) and id(op) not in seen:
                seen.add(id(op))
                out.append(op)
                work.append(op)
    block = inst.parent
    order = {id(i): n for n, i in enumerate(block.instructions)}
    out.sort(key=lambda i: order.get(id(i), 0))
    return out


def _reduce_claim(fn: Function, inst: Instruction, claim: str) -> str:
    """Minimal single-block reproducer for a refuted claim: the claimed
    value's backward slice plus its observation call."""
    if len(fn.blocks) != 1:
        return print_function(fn)  # multi-block: keep the whole body
    width = inst.type.bitwidth()
    args = ", ".join(f"{a.type} {a.ref()}" for a in fn.args)
    lines = [f"declare void @__lint_obs(i{width})", "",
             f"define void @reduced({args}) {{", "entry:"]
    for sliced in _slice_refs(inst):
        lines.append(f"  {print_instruction(sliced)}")
    lines.append(f"  call void @__lint_obs({inst.type} {inst.ref()})")
    lines.append("  ret void")
    lines.append("}")
    text = "\n".join(lines) + "\n"
    try:  # the reducer must never produce unparsable output
        parse_module(text)
    except Exception:
        return print_function(fn)
    return text


def audit_function(fn: Function, semantics, opts: AuditOptions,
                   index: int = 0) -> Tuple[List[Contradiction], Dict]:
    """Differentially validate every fixpoint claim on one function.

    Returns the contradictions plus a small tally (claims checked,
    observations made, silent lint verdicts validated).
    """
    NUM_FUNCTIONS_AUDITED.inc()
    # Work on a parsed copy so instrumentation never mutates the input.
    module = parse_module(print_function(fn))
    copy = module.get_function(fn.name)
    claims = _collect_claims(copy, semantics)
    tally = {
        "claims": len(claims),
        "must_not": sum(1 for _, c in claims if c == MUST_NOT_POISON),
        "must": sum(1 for _, c in claims if c == MUST_POISON),
        "observations": 0,
        "silent_verdicts": _count_silent_verdicts(copy, claims),
    }
    if not claims:
        return [], tally

    refs = {f"{_OBS_PREFIX}{k}": inst.ref()
            for k, (inst, _) in enumerate(claims)}
    insts = {f"{_OBS_PREFIX}{k}": inst
             for k, (inst, _) in enumerate(claims)}
    obs_map = _instrument(copy, claims)
    NUM_CLAIMS_CHECKED.inc(len(claims))

    pools = [input_candidates(a.type, semantics) for a in copy.args]
    contradictions: List[Contradiction] = []
    refuted = set()
    n_inputs = 0
    for combo in itertools.product(*pools) if pools else [()]:
        n_inputs += 1
        if n_inputs > opts.max_inputs:
            break
        behaviors = enumerate_behaviors(
            copy, list(combo), config=semantics,
            max_paths=opts.max_paths, max_choices=opts.max_choices,
            fuel=opts.fuel)
        for behavior in behaviors:
            for name, arg_bits, _ret in behavior.events:
                claim = obs_map.get(name)
                if claim is None or name in refuted:
                    continue
                bits = arg_bits[0]
                NUM_OBSERVATIONS.inc()
                tally["observations"] += 1
                bad = (_is_poisoned(bits) if claim == MUST_NOT_POISON
                       else not _is_all_poison(bits))
                if bad:
                    refuted.add(name)
                    NUM_CONTRADICTIONS.inc()
                    contradictions.append(Contradiction(
                        function=fn.name, index=index, claim=claim,
                        value_ref=refs[name], inputs=combo,
                        observed_bits=_bits_str(bits),
                        reduced_ir=_reduce_claim(copy, insts[name], claim),
                    ))
    for c in contradictions:
        c.bundle_path = _bundle(c, opts)
    return contradictions, tally


def _count_silent_verdicts(fn: Function,
                           claims: List[Tuple[Instruction, str]]) -> int:
    """Claims whose validation directly justifies a *silent* lint
    verdict: a division divisor or branch condition the analysis proved
    never-poison (so ub-sink / branch-on-poison said nothing)."""
    proven = {id(inst) for inst, c in claims if c == MUST_NOT_POISON}
    count = 0
    for block in fn.blocks:
        for inst in block.instructions:
            if (isinstance(inst, BinaryInst) and inst.opcode in _DIVISIONS
                    and id(inst.rhs) in proven):
                count += 1
            if (isinstance(inst, BranchInst) and inst.is_conditional
                    and id(inst.cond) in proven):
                count += 1
    return count


def _bundle(c: Contradiction, opts: AuditOptions) -> str:
    if opts.bundle_dir is None:
        return ""
    payload = make_bundle_payload(
        pre_ir=c.reduced_ir,
        pass_name="poison-flow",
        application=c.index,
        kind="lint-audit-soundness",
        error=(f"claim {c.claim} on {c.value_ref} refuted: observed "
               f"bits {c.observed_bits} on inputs "
               f"({', '.join(str(v) for v in c.inputs)})"),
        traceback_text="",
        function=c.function,
    )
    return write_bundle(opts.bundle_dir, payload)


def run_lint_audit(width: int = 2, instructions: int = 2,
                   num_args: int = 2, opcodes=(),
                   include_flags: bool = True,
                   include_deferred: bool = True,
                   limit: Optional[int] = None, start: int = 0,
                   stride: int = 1,
                   semantics=None,
                   opts: Optional[AuditOptions] = None,
                   progress=None) -> Dict:
    """Audit the analyzer over an exhaustive opt-fuzz corpus slice.

    ``stride > 1`` samples every stride-th corpus index instead of a
    contiguous window, so a bounded ``limit`` still covers the whole
    enumeration space (the space orders flag variants and operand kinds
    systematically, so contiguous windows are locally homogeneous).

    Also runs the lint rules over every corpus function, so the report
    doubles as a census of what the checker says about the space.
    """
    from ..fuzz.optfuzz import SMALL_OPCODES, enumeration_size, function_at_index
    from ..ir import Opcode as _Op
    from ..lint import lint_function
    from ..semantics.config import NEW

    semantics = semantics if semantics is not None else NEW
    opts = opts or AuditOptions()
    resolved = (tuple(_Op(o) for o in opcodes) if opcodes
                else SMALL_OPCODES)

    def corpus():
        if stride <= 1:
            yield from ((start + i, fn) for i, fn in enumerate(
                enumerate_functions(
                    instructions, width=width, num_args=num_args,
                    opcodes=resolved, include_deferred=include_deferred,
                    include_flags=include_flags, limit=limit,
                    start=start)))
            return
        total = enumeration_size(
            instructions, width=width, num_args=num_args,
            opcodes=resolved, include_deferred=include_deferred,
            include_flags=include_flags)
        indices = range(start, total, stride)
        if limit is not None:
            indices = indices[:limit]
        for idx in indices:
            yield idx, function_at_index(
                idx, instructions, width=width, num_args=num_args,
                opcodes=resolved, include_deferred=include_deferred,
                include_flags=include_flags)

    totals = {"functions": 0, "claims": 0, "must_not": 0, "must": 0,
              "observations": 0, "silent_verdicts": 0}
    findings_by_rule: Dict[str, int] = {}
    contradictions: List[Contradiction] = []
    for index, (corpus_index, fn) in enumerate(corpus()):
        found, tally = audit_function(fn, semantics, opts,
                                      index=corpus_index)
        contradictions.extend(found)
        totals["functions"] += 1
        for key in ("claims", "must_not", "must", "observations",
                    "silent_verdicts"):
            totals[key] += tally[key]
        for diag in lint_function(fn, semantics=semantics):
            findings_by_rule[diag.rule_id] = (
                findings_by_rule.get(diag.rule_id, 0) + 1)
        if progress is not None and (index + 1) % 50 == 0:
            progress(index + 1, len(contradictions))

    return {
        "spec": {
            "width": width, "instructions": instructions,
            "num_args": num_args,
            "opcodes": [o.value for o in resolved],
            "include_flags": include_flags,
            "include_deferred": include_deferred,
            "limit": limit, "start": start, "stride": stride,
        },
        "totals": totals,
        "lint_findings": dict(sorted(findings_by_rule.items())),
        "contradictions": [c.as_dict() for c in contradictions],
    }
