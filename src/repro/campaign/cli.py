"""``python -m repro campaign`` — the campaign engine's CLI surface.

Four subcommands over one campaign directory::

    python -m repro campaign run --width 2 --instructions 3 --workers 4
    python -m repro campaign resume --out campaign-out --workers 4
    python -m repro campaign reduce --out campaign-out
    python -m repro campaign report --out campaign-out [--json]

``run`` writes a manifest + JSONL checkpoint under ``--out``;
``resume`` reloads the manifest and finishes (or retries) the shards the
checkpoint doesn't mark done; ``reduce`` shrinks every recorded
counterexample to a minimal reproducer (``reduced.jsonl``); ``report``
renders the aggregate — verdict totals, dedup hit rate, per-shard
timing, and the stats registry — without re-running anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .checkpoint import (
    CheckpointStore,
    load_manifest,
    load_manifest_payload,
    manifest_kind,
)
from .executor import CampaignRunner
from .report import aggregate_records, render_report
from .reduce import reduce_counterexamples
from .spec import CampaignSpec

DEFAULT_OUT = "campaign-out"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Parallel sharded opt-fuzz x refinement-checking "
                    "campaigns with checkpoint/resume and a "
                    "counterexample reducer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start a fresh campaign")
    run.add_argument("--mode", choices=["enumerate", "random"],
                     default="enumerate")
    run.add_argument("--width", type=int, default=2,
                     help="integer bitwidth (default: 2)")
    run.add_argument("--instructions", type=int, default=1,
                     help="instructions per generated function")
    run.add_argument("--num-args", type=int, default=2, dest="num_args")
    run.add_argument("--opcodes", default="",
                     help="comma-separated opcode names "
                          "(default: the mode's standard set)")
    run.add_argument("--include-flags", action="store_true",
                     dest="include_flags",
                     help="enumerate nsw-flagged variants too")
    run.add_argument("--no-deferred", action="store_false",
                     dest="include_deferred",
                     help="exclude undef/poison from operand pools")
    run.add_argument("--count", type=int, default=256,
                     help="random mode: total functions to draw")
    run.add_argument("--seed", type=int, default=0,
                     help="random mode: campaign base seed")
    run.add_argument("--pipeline", default="o2",
                     help="o2, quick, or a single pass name "
                          "(default: o2)")
    run.add_argument("--opt-config", choices=["fixed", "legacy"],
                     default="fixed", dest="opt_config")
    run.add_argument("--shard-size", type=int, default=64,
                     dest="shard_size")
    run.add_argument("--limit", type=int, default=None,
                     help="enumerate mode: cap on corpus indices covered")
    run.add_argument("--start", type=int, default=0,
                     help="enumerate mode: first corpus index")
    run.add_argument("--max-choices", type=int, default=20,
                     dest="max_choices")
    run.add_argument("--fuel", type=int, default=600)
    run.add_argument("--sample-inputs", type=int, default=None,
                     dest="sample_inputs", metavar="N",
                     help="when a function's input space exceeds the "
                          "max-inputs budget, check N deterministically-"
                          "sampled inputs instead of giving up (verdicts "
                          "become 'verified (sampled)')")
    run.add_argument("--engine", choices=["auto", "scalar", "vector"],
                     default="auto",
                     help="refinement engine: auto/vector use the numpy "
                          "lane-parallel engine where eligible, with "
                          "transparent scalar fallback; scalar forces "
                          "the interpreter (default: auto)")
    run.add_argument("--cross-check", action="store_true",
                     dest="cross_check",
                     help="run every vector-eligible check under both "
                          "engines and record any verdict drift as a "
                          "per-function crash (disables the memo cache)")
    run.add_argument("--policy",
                     choices=["none", "strict", "recover", "quarantine"],
                     default="recover",
                     help="pipeline recovery policy: none = unguarded "
                          "(a pass crash kills the shard), strict = "
                          "per-function crash records, recover/"
                          "quarantine = roll back and continue "
                          "(default: recover)")
    run.add_argument("--verify-each", action="store_true",
                     dest="verify_each",
                     help="verify after every pass application")
    run.add_argument("--chaos-seed", type=int, default=None,
                     dest="chaos_seed",
                     help="enable chaos fault injection with this seed")
    run.add_argument("--chaos-rate", type=float, default=0.05,
                     dest="chaos_rate")
    run.add_argument("--chaos-mode",
                     choices=["raise", "corrupt", "mixed"],
                     default="mixed", dest="chaos_mode")
    run.add_argument("--no-cache", action="store_false", dest="use_cache",
                     help="disable the behavior-set memo cache (verdicts "
                          "are byte-identical either way; this only "
                          "re-does work)")
    run.add_argument("--cache-dir", default=None, dest="cache_dir",
                     help="shared on-disk memo directory (default: "
                          "<out>/memo)")

    for p in (run, sub.add_parser("resume",
                                  help="finish an interrupted campaign")):
        p.add_argument("--out", default=DEFAULT_OUT,
                       help=f"campaign directory (default: {DEFAULT_OUT})")
        p.add_argument("--workers", type=int, default=1,
                       help="parallel shard workers (default: 1)")
        p.add_argument("--shard-timeout", type=float, default=None,
                       dest="shard_timeout",
                       help="per-shard wall timeout in seconds "
                            "(workers > 1 only)")
        p.add_argument("--stop-after", type=int, default=None,
                       dest="stop_after",
                       help="stop after N completed shards (graceful "
                            "interrupt; resume finishes the rest)")
        p.add_argument("--trace-out", nargs="?", const="", default=None,
                       dest="trace_out", metavar="FILE",
                       help="trace this run: workers stream spans + "
                            "metric snapshots under <out>/spans, merged "
                            "after the run into a Chrome-trace FILE "
                            "(default: <out>/trace.json) — load it in "
                            "Perfetto or feed it to `repro diag top`")
        p.add_argument("--json", action="store_true",
                       help="emit the summary as JSON")

    red = sub.add_parser("reduce",
                         help="shrink recorded counterexamples to "
                              "minimal reproducers")
    red.add_argument("--out", default=DEFAULT_OUT)
    red.add_argument("--max-rounds", type=int, default=32,
                     dest="max_rounds")
    red.add_argument("--json", action="store_true")

    rep = sub.add_parser("report",
                         help="render the campaign aggregate from the "
                              "checkpoint")
    rep.add_argument("--out", default=DEFAULT_OUT)
    rep.add_argument("--json", action="store_true")

    audit = sub.add_parser(
        "lint-audit",
        help="differentially validate the poison dataflow (and hence "
             "every lint verdict) against the executable semantics")
    audit.add_argument("--width", type=int, default=2)
    audit.add_argument("--instructions", type=int, default=2)
    audit.add_argument("--num-args", type=int, default=2,
                       dest="num_args")
    audit.add_argument("--opcodes", default="add,mul,udiv,shl",
                       help="comma-separated opcode names (default "
                            "covers flag carriers, shifts, divisions)")
    audit.add_argument("--include-flags", action="store_true",
                       dest="include_flags", default=True)
    audit.add_argument("--no-flags", action="store_false",
                       dest="include_flags")
    audit.add_argument("--no-deferred", action="store_false",
                       dest="include_deferred",
                       help="exclude undef/poison literals from "
                            "operand pools")
    audit.add_argument("--limit", type=int, default=500,
                       help="functions to audit (default: 500)")
    audit.add_argument("--start", type=int, default=0)
    audit.add_argument("--stride", type=int, default=0,
                       help="sample every Nth corpus index; 0 picks a "
                            "stride spreading --limit over the whole "
                            "space (default)")
    audit.add_argument("--bundle-dir", default=None, dest="bundle_dir",
                       help="write contradiction bundles here "
                            "(default: <out>/lint-audit-bundles)")
    audit.add_argument("--out", default=DEFAULT_OUT)
    audit.add_argument("--json", action="store_true")

    attack = sub.add_parser(
        "lint-attack",
        help="fuzz the lint engine and poison-flow analyzer with "
             "semantics-aware mutators, scoring every fired/silent "
             "verdict against exact behavior enumeration")
    attack.add_argument("--width", type=int, default=2)
    attack.add_argument("--instructions", type=int, default=2)
    attack.add_argument("--num-args", type=int, default=2,
                        dest="num_args")
    attack.add_argument("--opcodes", default="",
                        help="comma-separated opcode names (default: "
                             "the small enumeration set)")
    attack.add_argument("--include-flags", action="store_true",
                        dest="include_flags", default=True)
    attack.add_argument("--no-flags", action="store_false",
                        dest="include_flags")
    attack.add_argument("--no-deferred", action="store_false",
                        dest="include_deferred",
                        help="exclude undef/poison literals from "
                             "operand pools")
    attack.add_argument("--limit", type=int, default=32,
                        help="seed functions to attack (default: 32)")
    attack.add_argument("--start", type=int, default=0)
    attack.add_argument("--stride", type=int, default=0,
                        help="sample every Nth corpus index; 0 picks a "
                             "stride spreading --limit over the whole "
                             "space (default)")
    attack.add_argument("--mutators", default="",
                        help="comma-separated mutator names "
                             "(default: all; see --list-mutators)")
    attack.add_argument("--rules", default="",
                        help="comma-separated lint rule IDs to score "
                             "(default: all)")
    attack.add_argument("--shard-size", type=int, default=8,
                        dest="shard_size",
                        help="seed functions per shard (default: 8)")
    attack.add_argument("--max-inputs", type=int, default=4096,
                        dest="max_inputs",
                        help="oracle input-combination budget per mutant")
    attack.add_argument("--max-paths", type=int, default=512,
                        dest="max_paths")
    attack.add_argument("--fuel", type=int, default=4000)
    attack.add_argument("--list-mutators", action="store_true",
                        dest="list_mutators",
                        help="print the mutator library and exit")
    attack.add_argument("--out", default=DEFAULT_OUT,
                        help=f"campaign directory (default: "
                             f"{DEFAULT_OUT})")
    attack.add_argument("--workers", type=int, default=1)
    attack.add_argument("--shard-timeout", type=float, default=None,
                        dest="shard_timeout")
    attack.add_argument("--stop-after", type=int, default=None,
                        dest="stop_after",
                        help="stop after N completed shards (graceful "
                             "interrupt; resume finishes the rest)")
    attack.add_argument("--json", action="store_true")
    return parser


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    opcodes = tuple(
        name.strip() for name in args.opcodes.split(",") if name.strip()
    )
    return CampaignSpec(
        mode=args.mode,
        width=args.width,
        num_instructions=args.instructions,
        num_args=args.num_args,
        opcodes=opcodes,
        include_deferred=args.include_deferred,
        include_flags=args.include_flags,
        count=args.count,
        seed=args.seed,
        pipeline=args.pipeline,
        opt_config=args.opt_config,
        shard_size=args.shard_size,
        limit=args.limit,
        start=args.start,
        max_choices=args.max_choices,
        fuel=args.fuel,
        sample_inputs=args.sample_inputs,
        engine=args.engine,
        cross_check=args.cross_check,
        policy=args.policy,
        verify_each=args.verify_each,
        chaos_seed=args.chaos_seed,
        chaos_rate=args.chaos_rate,
        chaos_mode=args.chaos_mode,
        use_cache=args.use_cache,
        cache_dir=args.cache_dir,
    )


def _spans_dir(out: str) -> str:
    import os

    return os.path.join(out, "spans")


def _apply_trace(spec: CampaignSpec, args: argparse.Namespace
                 ) -> CampaignSpec:
    """Tracing is per-invocation: ``--trace-out`` turns it on for this
    run/resume; its absence turns it off even if the manifest recorded
    a traced earlier run."""
    trace_dir = (_spans_dir(args.out)
                 if getattr(args, "trace_out", None) is not None else None)
    return spec.with_(trace_dir=trace_dir)


def _finish_trace(args: argparse.Namespace) -> None:
    """Merge the per-shard span files into one trace.json."""
    import os

    from ..diag.trace_export import merge_trace

    trace_path = args.trace_out or os.path.join(args.out, "trace.json")
    trace = merge_trace(_spans_dir(args.out), trace_path)
    events = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    pids = len({e.get("pid") for e in trace["traceEvents"]})
    # under --json stdout is the machine-readable summary; keep it pure
    sink = sys.stderr if getattr(args, "json", False) else sys.stdout
    print(f"trace: {events} span(s) from {pids} worker(s) merged into "
          f"{trace_path} (Perfetto-loadable; see `repro diag top "
          f"--trace {trace_path}`)", file=sink)


def _print_summary(summary, as_json: bool) -> None:
    if as_json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
        return
    print(f"campaign: {summary.shards_run} shard(s) run, "
          f"{summary.shards_skipped} skipped (already done), "
          f"{len(summary.shards_errored)} errored")
    print(f"  {summary.checked} functions checked, "
          f"{summary.dedup_hits} dedup hits "
          f"({summary.dedup_hit_rate * 100:.1f}%)")
    sampled = (f" ({summary.sampled_verified} sampled)"
               if summary.sampled_verified else "")
    print(f"  verdicts: {summary.verified} verified{sampled}, "
          f"{summary.failed} failed, "
          f"{summary.inconclusive} inconclusive, "
          f"{summary.timeout} timeout")
    if summary.recoveries or summary.crashes:
        print(f"  resilience: {summary.recoveries} pass failure(s) "
              f"recovered, {len(summary.crashes)} function(s) crashed"
              + (f", {len(summary.bundle_paths)} crash bundle(s)"
                 if summary.bundle_paths else ""))
    if summary.failed:
        print(f"  {len(summary.counterexamples)} counterexample(s) "
              f"recorded; run `campaign reduce` to shrink them")
    if summary.shards_errored:
        print(f"  errored shards (will retry on resume): "
              f"{summary.shards_errored}")


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    spec = _apply_trace(spec, args)
    runner = CampaignRunner(spec, out_dir=args.out, workers=args.workers,
                            shard_timeout=args.shard_timeout)
    summary = runner.run(stop_after=args.stop_after)
    _print_summary(summary, args.json)
    if args.trace_out is not None:
        _finish_trace(args)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    try:
        if manifest_kind(args.out) == "lint-attack":
            return _resume_attack(args)
        spec, _ = load_manifest(args.out)
    except FileNotFoundError:
        print(f"error: no campaign manifest under {args.out!r} "
              f"(run `campaign run --out {args.out}` first)",
              file=sys.stderr)
        return 1
    spec = _apply_trace(spec, args)
    runner = CampaignRunner(spec, out_dir=args.out, workers=args.workers,
                            shard_timeout=args.shard_timeout)
    summary = runner.run(resume=True, stop_after=args.stop_after)
    _print_summary(summary, args.json)
    if args.trace_out is not None:
        _finish_trace(args)
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    try:
        if manifest_kind(args.out) == "lint-attack":
            print("error: `campaign reduce` applies to refine "
                  "campaigns; lint-attack disagreements are already "
                  "reduced and bundled under <out>/crashes",
                  file=sys.stderr)
            return 1
        spec, _ = load_manifest(args.out)
    except FileNotFoundError:
        print(f"error: no campaign manifest under {args.out!r}",
              file=sys.stderr)
        return 1
    store = CheckpointStore(args.out)
    agg = aggregate_records(spec, store.load())
    counterexamples = agg["counterexamples"]
    if not counterexamples:
        print("no counterexamples recorded; nothing to reduce")
        return 0
    reduced = reduce_counterexamples(counterexamples, spec,
                                     max_rounds=args.max_rounds)
    store.append_reduced(reduced)
    if args.json:
        print(json.dumps(reduced, indent=2, sort_keys=True))
        return 0
    for record in reduced:
        print(f"counterexample {record['hash'][:12]}: "
              f"{record['original_instructions']} -> "
              f"{record['reduced_instructions']} instructions "
              f"({record['candidates_tried']} candidates, "
              f"{record['rounds']} round(s))")
        for line in record["reduced"].strip().splitlines():
            print(f"  {line}")
    print(f"wrote {len(reduced)} reduced reproducer(s) to "
          f"{args.out}/reduced.jsonl")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        if manifest_kind(args.out) == "lint-attack":
            return _report_attack(args)
        spec, _ = load_manifest(args.out)
    except FileNotFoundError:
        print(f"error: no campaign manifest under {args.out!r}",
              file=sys.stderr)
        return 1
    records = CheckpointStore(args.out).load()
    if args.json:
        print(json.dumps(aggregate_records(spec, records), indent=2,
                         sort_keys=True))
    else:
        print(render_report(spec, records))
    return 0


def _cmd_lint_audit(args: argparse.Namespace) -> int:
    import os

    from ..fuzz.optfuzz import enumeration_size
    from ..ir import Opcode
    from .lint_audit import AuditOptions, run_lint_audit

    opcodes = tuple(
        name.strip() for name in args.opcodes.split(",") if name.strip()
    )
    try:
        for name in opcodes:
            Opcode(name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stride = args.stride
    if stride <= 0:
        total = enumeration_size(
            args.instructions, width=args.width, num_args=args.num_args,
            opcodes=tuple(Opcode(n) for n in opcodes),
            include_deferred=args.include_deferred,
            include_flags=args.include_flags)
        stride = max(1, total // max(1, args.limit))
    bundle_dir = args.bundle_dir or os.path.join(args.out,
                                                 "lint-audit-bundles")

    def progress(done, bad):
        print(f"  audited {done} function(s), "
              f"{bad} contradiction(s)", file=sys.stderr)

    report = run_lint_audit(
        width=args.width, instructions=args.instructions,
        num_args=args.num_args, opcodes=opcodes,
        include_flags=args.include_flags,
        include_deferred=args.include_deferred,
        limit=args.limit, start=args.start, stride=stride,
        opts=AuditOptions(bundle_dir=bundle_dir),
        progress=progress if not args.json else None)

    bad = report["contradictions"]
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        t = report["totals"]
        print(f"lint-audit: {t['functions']} function(s), "
              f"{t['claims']} claim(s) "
              f"({t['must_not']} must-not-poison, {t['must']} "
              f"must-poison), {t['observations']} observation(s)")
        print(f"  silent verdicts validated: {t['silent_verdicts']}")
        if report["lint_findings"]:
            findings = ", ".join(f"{k}: {v}" for k, v in
                                 report["lint_findings"].items())
            print(f"  lint findings over the corpus: {findings}")
        if bad:
            print(f"  {len(bad)} CONTRADICTION(S) — analyzer soundness "
                  f"bug(s); bundles under {bundle_dir}")
            for c in bad[:5]:
                print(f"    {c['function']}#{c['index']}: {c['claim']} "
                      f"on {c['value']} refuted (observed "
                      f"{c['observed_bits']})")
        else:
            print("  no contradictions: every claim consistent with "
                  "the executable semantics")
    return 1 if bad else 0


def _attack_spec_from_args(args: argparse.Namespace):
    from .lint_attack import AttackSpec

    def csv(text):
        return tuple(n.strip() for n in text.split(",") if n.strip())

    spec = AttackSpec(
        width=args.width,
        num_instructions=args.instructions,
        num_args=args.num_args,
        opcodes=csv(args.opcodes),
        include_flags=args.include_flags,
        include_deferred=args.include_deferred,
        limit=args.limit,
        start=args.start,
        stride=max(1, args.stride),
        mutators=csv(args.mutators),
        rules=csv(args.rules),
        shard_size=args.shard_size,
        max_inputs=args.max_inputs,
        max_paths=args.max_paths,
        fuel=args.fuel,
    )
    if args.stride <= 0:
        total = spec.enumeration_size()
        spec = spec.with_(
            stride=max(1, total // max(1, args.limit)))
    return spec


def _print_attack_summary(summary, as_json: bool) -> None:
    if as_json:
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
        return
    from .lint_attack import render_attack_report

    print(render_attack_report(summary.spec, summary.records))
    if summary.bundle_paths:
        print(f"  {len(summary.bundle_paths)} disagreement bundle(s) "
              f"written; replay with `repro crash replay <bundle>`")


def _cmd_lint_attack(args: argparse.Namespace) -> int:
    from .lint_attack import AttackRunner

    if args.list_mutators:
        from ..mutate import MUTATORS, rules_attacked_by

        for name in sorted(MUTATORS):
            m = MUTATORS[name]
            rules = ", ".join(rules_attacked_by(name)) or "-"
            print(f"{name:<16} [{m.kind}] {m.description}")
            print(f"{'':<16} attacks: {rules}")
        return 0
    try:
        spec = _attack_spec_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    runner = AttackRunner(spec, out_dir=args.out, workers=args.workers,
                          shard_timeout=args.shard_timeout)
    summary = runner.run(stop_after=args.stop_after)
    _print_attack_summary(summary, args.json)
    return 1 if summary.shards_errored else 0


def _resume_attack(args: argparse.Namespace) -> int:
    from .lint_attack import AttackRunner, AttackSpec

    payload = load_manifest_payload(args.out)
    spec = AttackSpec.from_dict(payload["spec"])
    runner = AttackRunner(spec, out_dir=args.out, workers=args.workers,
                          shard_timeout=args.shard_timeout)
    summary = runner.run(resume=True, stop_after=args.stop_after)
    _print_attack_summary(summary, args.json)
    return 1 if summary.shards_errored else 0


def _report_attack(args: argparse.Namespace) -> int:
    from .lint_attack import (
        AttackSpec,
        aggregate_attack_records,
        render_attack_report,
    )

    payload = load_manifest_payload(args.out)
    spec = AttackSpec.from_dict(payload["spec"])
    records = CheckpointStore(args.out).load()
    if args.json:
        print(json.dumps(aggregate_attack_records(spec, records),
                         indent=2, sort_keys=True))
    else:
        print(render_attack_report(spec, records))
    return 0


def campaign_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "resume": _cmd_resume,
                "reduce": _cmd_reduce, "report": _cmd_report,
                "lint-audit": _cmd_lint_audit,
                "lint-attack": _cmd_lint_attack}
    return handlers[args.command](args)
