"""The per-shard work function: generate → dedup → optimize → check.

:func:`run_shard` is the unit the executor schedules, in-process or in a
child process.  It is deliberately self-contained and deterministic: its
result is a pure function of ``(spec, shard, known_hashes)``, so a shard
produces the same record whether it runs first on one worker or last on
eight — the property behind the engine's worker-count-independent
verdict sets.

The returned record is the JSONL checkpoint schema: shard id, status,
verdict counts, newly discovered ``hash → verdict`` pairs, full
counterexample reproducers, wall time, and a stats-registry delta
covering exactly this shard's work.

With a guarded pipeline (any spec ``policy`` but ``"none"``) the shard
additionally survives buggy passes: a pass crash or a ``verify-each``
rejection rolls the function back and — under the recover/quarantine
policies — the function still concludes normally, with the rollback
counted in the record's ``recoveries`` and its crash bundle attached
under ``bundles``.  A failure the policy does *not* absorb (``strict``,
or a crash in unguarded code) becomes a per-function ``crashes`` entry:
the function gets **no** dedup verdict (so resume retries it), the rest
of the shard keeps running, and the shard reports status ``errored``.

Interpreter fuel exhaustion is *not* a crash: a refinement check that
comes back inconclusive because either side ran out of fuel gets the
terminal ``timeout`` verdict — it enters the dedup log and is never
retried, because re-running a too-slow function can only time out again.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from typing import Dict, List, Optional

from ..diag import (
    FlightRecorder,
    MetricsWriter,
    SpanCollector,
    current_collector,
    current_recorder,
    default_registry,
    metrics_snapshot,
    prom_name,
    set_collector,
    set_recorder,
    stats_snapshot,
)
from ..ir import parse_function, print_function, print_module, verify_function
from ..opt.resilience import GuardedPassError
from ..perf import RefinementMemo
from ..refine import DEADLINE_REASON, CrossCheckMismatch, check_refinement
from .canon import DedupCache, canonical_hash
from .sharding import Shard, iter_shard_functions
from .spec import CampaignSpec

#: RefinementResult reasons with this substring are fuel exhaustion —
#: the interpreter's timeout analog, a terminal verdict, not a crash.
FUEL_REASON = "fuel budget"

#: Test hook: comma-separated shard ids that should hard-crash (die
#: without reporting), exercising the executor's lost-worker accounting.
CRASH_ENV = "REPRO_CAMPAIGN_CRASH_SHARDS"


def _maybe_crash(shard_id: int) -> None:
    crash_ids = os.environ.get(CRASH_ENV, "")
    if crash_ids and str(shard_id) in crash_ids.split(","):
        os._exit(17)  # simulate a hard worker death (no cleanup, no report)


def _shard_metrics(stats_before: Dict[str, Dict[str, int]]) -> dict:
    """A metrics snapshot whose stats are rebased to this shard's start.

    One worker process can run several shards, but each shard flushes to
    its own metrics file and :func:`merge_latest_metrics` *sums* the
    latest stats across files — so the flushed stats must be shard-local
    deltas, not the process registry's cumulative totals.
    """
    snap = metrics_snapshot()
    base = {prom_name(pass_name, name): value
            for pass_name, counters in stats_before.items()
            for name, value in counters.items()}
    snap["stats"] = {
        name: value - base.get(name, 0)
        for name, value in snap["stats"].items()
        if value - base.get(name, 0)
    }
    return snap


def _stats_delta(before: Dict[str, Dict[str, int]],
                 after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Non-zero counter increments between two registry snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for pass_name, counters in after.items():
        for name, value in counters.items():
            diff = value - before.get(pass_name, {}).get(name, 0)
            if diff:
                delta.setdefault(pass_name, {})[name] = diff
    return delta


def check_function(spec: CampaignSpec, fn, src_text: str, h: str,
                   memo: Optional[RefinementMemo] = None,
                   options=None, semantics=None) -> dict:
    """Optimize ``fn`` in place and refinement-check it against its
    source text — the per-function unit of a shard, reusable outside
    the shard loop (the serve layer batches requests through it).

    Returns an outcome dict: ``status`` is ``"memo-replay"``,
    ``"crashed"``, or ``"checked"`` (with ``verdict``); crash and
    counterexample payloads carry everything but the shard/index
    coordinates, which only the shard loop knows.
    """
    options = spec.check_options() if options is None else options
    semantics = spec.semantics() if semantics is None else semantics
    outcome: dict = {"hash": h, "recoveries": 0, "bundles": []}
    if memo is not None:
        replayed = memo.lookup(h)
        if replayed is not None:
            # Same record a full check would produce (the checker is
            # deterministic), minus the work.
            if replayed == "verified-sampled":
                outcome.update(status="memo-replay", verdict="verified",
                               sampled=True)
            else:
                outcome.update(status="memo-replay", verdict=replayed)
            return outcome

    before = parse_function(src_text)
    pipeline = spec.make_pipeline()
    try:
        pipeline.run_on_function(fn)
        verify_function(fn)
    except Exception as e:
        # A failure the policy did not absorb: GuardedPassError under
        # strict, or a raw crash/verifier rejection from an unguarded
        # pipeline.
        failure = getattr(e, "failure", None)
        recovered, payloads = _harvest(pipeline, fatal=failure)
        outcome.update(
            status="crashed", recoveries=recovered, bundles=payloads,
            crash={
                "hash": h,
                "pass": failure.pass_name if failure else "",
                "kind": failure.kind if failure else "exception",
                "error": repr(e),
                "traceback": traceback_module.format_exc(),
                "source": src_text,
            })
        return outcome

    recovered, payloads = _harvest(pipeline)
    outcome["recoveries"] = recovered
    outcome["bundles"] = payloads

    try:
        result = check_refinement(before, fn, semantics, options=options)
    except CrossCheckMismatch as e:
        # Engine disagreement under --cross-check: a checker bug, not a
        # pipeline bug.  Record it like a crash — no verdict, retried
        # on resume — so drift can never be silently absorbed.
        outcome.update(
            status="crashed",
            crash={
                "hash": h,
                "pass": "",
                "kind": "cross-check-mismatch",
                "error": repr(e),
                "traceback": traceback_module.format_exc(),
                "source": src_text,
            })
        return outcome
    verdict = result.verdict
    deadline_aborted = (verdict == "inconclusive"
                        and DEADLINE_REASON in result.reason)
    if verdict == "inconclusive" and FUEL_REASON in result.reason:
        verdict = "timeout"
    if deadline_aborted:
        # The *request's* clock ran out, not the function's fuel: the
        # same function under a fresh budget may still conclude.  Report
        # it as a timeout for this caller but never memoize it — a
        # cached deadline abort would poison every later request.
        verdict = "timeout"
        outcome["deadline_expired"] = True
    elif memo is not None:
        memo.record(h, "verified-sampled" if result.sampled else verdict)
    outcome.update(status="checked", verdict=verdict,
                   inputs_checked=result.inputs_checked)
    if result.sampled:
        outcome["sampled"] = True
    if result.failed:
        outcome["counterexample"] = {
            "hash": h,
            "source": src_text,
            "optimized": print_function(fn),
            "counterexample": str(result.counterexample),
            "inputs_checked": result.inputs_checked,
        }
    return outcome


def check_source(spec: CampaignSpec, src_text: str,
                 memo: Optional[RefinementMemo] = None,
                 options=None, semantics=None) -> dict:
    """Parse, optimize, and check one textual IR function.

    The serve-layer entry point: identical to what a campaign shard
    does for one corpus function, so service verdicts are byte-for-byte
    the batch CLI's verdicts on the same source."""
    fn = parse_function(src_text)
    canonical_src = print_module(fn.module)
    return check_function(spec, fn, canonical_src, canonical_hash(fn),
                          memo=memo, options=options, semantics=semantics)


def run_shard(spec: CampaignSpec, shard: Shard,
              known_hashes: Optional[Dict[str, str]] = None) -> dict:
    """Check every function in ``shard``; returns the checkpoint record.

    ``known_hashes`` preloads the dedup cache (hash → verdict) with
    functions earlier runs already checked; those — and structural
    duplicates within the shard — are counted as dedup hits and skipped.
    """
    _maybe_crash(shard.shard_id)
    start_time = time.perf_counter()
    stats_before = stats_snapshot()

    # -- observability plumbing (must never change a verdict) -----------
    # With spec.trace_dir set, this shard streams spans to its own JSONL
    # file (pid = shard id in the merged trace) and periodic metric
    # snapshots alongside.  A flight recorder runs either way: the
    # executor installs one around us; direct callers get a local one.
    collector = current_collector()
    old_collector = None
    if spec.trace_dir:
        collector = SpanCollector()
        collector.open(
            os.path.join(spec.trace_dir,
                         f"spans-shard{shard.shard_id:04d}.jsonl"),
            pid=shard.shard_id, label=f"shard {shard.shard_id}")
        old_collector = set_collector(collector)
    recorder = current_recorder()
    owns_recorder = recorder is None
    if owns_recorder:
        recorder = FlightRecorder()
        set_recorder(recorder)
        recorder.install(collector=collector)
    elif old_collector is not None:
        # The executor wired the recorder to the (disabled) default
        # collector; mirror completions from the traced one as well.
        collector.on_complete.append(recorder.on_span)
    metrics = None
    if spec.trace_dir:
        metrics = MetricsWriter(
            os.path.join(spec.trace_dir,
                         f"metrics-shard{shard.shard_id:04d}.jsonl"),
            interval=spec.metrics_interval)
    registry = default_registry()
    tracing = collector.enabled
    if tracing:
        # per-function stat deltas come off the increment journal:
        # O(counters that moved) per function, no snapshot churn
        registry.start_journal()
    try:
        return _run_shard_body(
            spec, shard, known_hashes, start_time, stats_before,
            collector, recorder, metrics, registry, tracing)
    finally:
        if tracing:
            registry.stop_journal()
        if owns_recorder:
            recorder.uninstall()
            set_recorder(None)
        elif old_collector is not None:
            collector.on_complete.remove(recorder.on_span)
        if old_collector is not None:
            collector.close()
            set_collector(old_collector)


def _run_shard_body(spec: CampaignSpec, shard: Shard,
                    known_hashes: Optional[Dict[str, str]],
                    start_time: float, stats_before, collector,
                    recorder, metrics, registry, tracing: bool) -> dict:
    cache = DedupCache(known_hashes)
    # The perf-layer memo replays verdicts for canonical hashes decided
    # by earlier shards/runs of the same context ("failed" is never
    # memoized, so counterexample records always regenerate).
    memo = (RefinementMemo(spec.memo_context(), disk_dir=spec.cache_dir)
            if spec.memo_enabled() else None)
    options = spec.check_options()
    semantics = spec.semantics()
    verdicts = {"verified": 0, "failed": 0, "inconclusive": 0,
                "timeout": 0}
    sampled_verified = 0
    new_hashes: Dict[str, str] = {}
    counterexamples = []
    crashes: List[dict] = []
    bundles: List[dict] = []
    recoveries = 0

    with collector.span("shard", cat="campaign") as shard_span:
        for offset, fn in enumerate(iter_shard_functions(spec, shard)):
            index = shard.start + offset
            src_text = print_module(fn.module)
            h = canonical_hash(fn)
            recorder.record("check-function", shard=shard.shard_id,
                            index=index, fn=fn.name, hash=h)
            if metrics is not None:
                # lazy: the registry walk only happens on the calls
                # the flush interval lets through
                metrics.maybe_flush(
                    lambda: _shard_metrics(stats_before),
                    shard=shard.shard_id,
                    checked=sum(verdicts.values()))
            mark = registry.journal_mark() if tracing else 0
            with collector.span("check-function", cat="campaign",
                                function=fn.name) as sp:
                try:
                    if cache.lookup(h) is not None:
                        sp.set(outcome="dedup-hit")
                        continue
                    outcome = check_function(spec, fn, src_text, h,
                                             memo=memo, options=options,
                                             semantics=semantics)
                    recoveries += outcome["recoveries"]
                    bundles.extend(outcome["bundles"])
                    if outcome["status"] == "crashed":
                        # Record it per-function — no dedup verdict, so
                        # resume retries exactly this function — and keep
                        # the shard alive.  The flight recorder's last
                        # moments ride along for the post-mortem.
                        crashes.append(dict(
                            outcome["crash"],
                            shard_id=shard.shard_id, index=index,
                            flight_recorder=recorder.dump(),
                        ))
                        sp.set(outcome="crashed")
                        continue
                    verdict = outcome["verdict"]
                    verdicts[verdict] = verdicts.get(verdict, 0) + 1
                    if outcome.get("sampled"):
                        # verdicts["verified"] still counts it; this
                        # subtotal keeps evidence distinguishable from
                        # proof in the aggregated report.
                        sampled_verified += 1
                    cache.add(h, verdict)
                    new_hashes[h] = verdict
                    sp.set(outcome=outcome["status"], verdict=verdict)
                    if outcome.get("counterexample"):
                        counterexamples.append(dict(
                            outcome["counterexample"],
                            shard_id=shard.shard_id, index=index,
                        ))
                finally:
                    if tracing:
                        sp.set(index=index, hash=h)
                        sp.stats = registry.journal_delta(mark,
                                                          truncate=True)

        if memo is not None:
            memo.flush()
        shard_span.set(shard=shard.shard_id,
                       checked=sum(verdicts.values()),
                       dedup_hits=cache.hits, crashes=len(crashes))
    if metrics is not None:
        metrics.flush(_shard_metrics(stats_before),
                      shard=shard.shard_id,
                      checked=sum(verdicts.values()), final=True)
    record = {
        "shard_id": shard.shard_id,
        "status": "errored" if crashes else "done",
        "start": shard.start,
        "stop": shard.stop,
        "checked": sum(verdicts.values()),
        "dedup_hits": cache.hits,
        "verdicts": verdicts,
        "sampled_verified": sampled_verified,
        "hashes": new_hashes,
        "counterexamples": counterexamples,
        "crashes": crashes,
        "recoveries": recoveries,
        "bundles": bundles,
        "wall_seconds": time.perf_counter() - start_time,
        "stats": _stats_delta(stats_before, stats_snapshot()),
    }
    if crashes:
        record["error"] = (
            f"{len(crashes)} function(s) crashed the pipeline "
            f"(first: {crashes[0]['error']})")
    return record


def _harvest(pipeline, fatal=None) -> tuple:
    """Collect (recoveries, bundle payloads) off a guarded pipeline.

    ``fatal`` is the :class:`PassFailure` that escaped as an exception
    (strict policy); it is bundled but not counted as a recovery.
    """
    failures = getattr(pipeline, "failures", None)
    if not failures:
        return 0, []
    payloads = [f.bundle for f in failures if f.bundle]
    recovered = sum(1 for f in failures if f is not fatal)
    return recovered, payloads
