"""The per-shard work function: generate → dedup → optimize → check.

:func:`run_shard` is the unit the executor schedules, in-process or in a
child process.  It is deliberately self-contained and deterministic: its
result is a pure function of ``(spec, shard, known_hashes)``, so a shard
produces the same record whether it runs first on one worker or last on
eight — the property behind the engine's worker-count-independent
verdict sets.

The returned record is the JSONL checkpoint schema: shard id, status,
verdict counts, newly discovered ``hash → verdict`` pairs, full
counterexample reproducers, wall time, and a stats-registry delta
covering exactly this shard's work.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..diag import stats_snapshot
from ..ir import parse_function, print_function, print_module, verify_function
from ..refine import check_refinement
from .canon import DedupCache, canonical_hash
from .sharding import Shard, iter_shard_functions
from .spec import CampaignSpec

#: Test hook: comma-separated shard ids that should hard-crash (die
#: without reporting), exercising the executor's lost-worker accounting.
CRASH_ENV = "REPRO_CAMPAIGN_CRASH_SHARDS"


def _maybe_crash(shard_id: int) -> None:
    crash_ids = os.environ.get(CRASH_ENV, "")
    if crash_ids and str(shard_id) in crash_ids.split(","):
        os._exit(17)  # simulate a hard worker death (no cleanup, no report)


def _stats_delta(before: Dict[str, Dict[str, int]],
                 after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Non-zero counter increments between two registry snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for pass_name, counters in after.items():
        for name, value in counters.items():
            diff = value - before.get(pass_name, {}).get(name, 0)
            if diff:
                delta.setdefault(pass_name, {})[name] = diff
    return delta


def run_shard(spec: CampaignSpec, shard: Shard,
              known_hashes: Optional[Dict[str, str]] = None) -> dict:
    """Check every function in ``shard``; returns the checkpoint record.

    ``known_hashes`` preloads the dedup cache (hash → verdict) with
    functions earlier runs already checked; those — and structural
    duplicates within the shard — are counted as dedup hits and skipped.
    """
    _maybe_crash(shard.shard_id)
    start_time = time.perf_counter()
    stats_before = stats_snapshot()

    cache = DedupCache(known_hashes)
    options = spec.check_options()
    semantics = spec.semantics()
    verdicts = {"verified": 0, "failed": 0, "inconclusive": 0}
    new_hashes: Dict[str, str] = {}
    counterexamples = []

    for offset, fn in enumerate(iter_shard_functions(spec, shard)):
        index = shard.start + offset
        src_text = print_module(fn.module)
        h = canonical_hash(fn)
        if cache.lookup(h) is not None:
            continue

        before = parse_function(src_text)
        spec.make_pipeline().run_on_function(fn)
        verify_function(fn)
        result = check_refinement(before, fn, semantics, options=options)

        verdicts[result.verdict] = verdicts.get(result.verdict, 0) + 1
        cache.add(h, result.verdict)
        new_hashes[h] = result.verdict
        if result.failed:
            counterexamples.append({
                "shard_id": shard.shard_id,
                "index": index,
                "hash": h,
                "source": src_text,
                "optimized": print_function(fn),
                "counterexample": str(result.counterexample),
                "inputs_checked": result.inputs_checked,
            })

    return {
        "shard_id": shard.shard_id,
        "status": "done",
        "start": shard.start,
        "stop": shard.stop,
        "checked": sum(verdicts.values()),
        "dedup_hits": cache.hits,
        "verdicts": verdicts,
        "hashes": new_hashes,
        "counterexamples": counterexamples,
        "wall_seconds": time.perf_counter() - start_time,
        "stats": _stats_delta(stats_before, stats_snapshot()),
    }
