"""The campaign coordinator: shard scheduling, crash handling, resume.

:class:`CampaignRunner` drives a shard plan to completion:

* **workers = 1** (default) runs shards in-process — no serialization
  overhead, ideal for tests and benchmarks;
* **workers > 1** runs each shard in its own child process (fork where
  available), up to ``workers`` at a time, with optional per-shard wall
  timeouts.  A worker that dies without reporting (segfault analog,
  ``os._exit``, OOM-kill) is *accounted*, not lost: the shard's record
  says ``errored`` with the exit code, the campaign completes, and a
  later ``resume`` retries exactly the errored/missing shards.

Every completed shard is appended to the JSONL checkpoint immediately,
so killing the coordinator forfeits at most the shards in flight.
Results integrate with the PR 1 observability layer: aggregate counters
land in the default :class:`StatsRegistry` under the ``campaign`` pass
name, per-shard wall time flows through :class:`PassTiming` (rendered by
``campaign report``), and each refinement failure is emitted as an
optimization remark.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..diag import (
    FlightRecorder,
    PassStats,
    PassTiming,
    Statistic,
    default_registry,
    emit_remark,
    set_recorder,
    span,
)
from ..diag.remarks import REMARK_ANALYSIS
from ..opt.resilience import write_bundle
from .checkpoint import CheckpointStore, save_manifest
from .sharding import Shard, plan_shards
from .spec import CampaignSpec
from .supervisor import SupervisorPolicy, WorkerSupervisor
from .worker import run_shard

#: subdirectory of a campaign's out_dir holding crash bundles.
CRASHES_DIR = "crashes"

NUM_CHECKED = Statistic(
    "campaign", "num-functions-checked",
    "Functions optimized and refinement-checked by campaign shards")
NUM_DEDUP_HITS = Statistic(
    "campaign", "num-dedup-hits",
    "Functions skipped because their canonical hash was already checked")
NUM_FAILURES = Statistic(
    "campaign", "num-refinement-failures",
    "Refinement failures (miscompilations) found by campaigns")
NUM_SHARDS_DONE = Statistic(
    "campaign", "num-shards-done", "Shards that completed successfully")
NUM_SHARDS_ERRORED = Statistic(
    "campaign", "num-shards-errored",
    "Shards whose worker crashed or timed out")
NUM_SHARDS_SKIPPED = Statistic(
    "campaign", "num-shards-skipped",
    "Shards skipped on resume (already checkpointed as done)")
NUM_PASS_RECOVERIES = Statistic(
    "campaign", "num-pass-recoveries",
    "Guarded pass failures rolled back inside campaign shards")
NUM_PASS_CRASHES = Statistic(
    "campaign", "num-pass-crashes",
    "Per-function pipeline crashes recorded by campaign shards")
NUM_TIMEOUTS = Statistic(
    "campaign", "num-timeout-verdicts",
    "Functions whose refinement check exhausted its fuel budget")


@dataclass
class CampaignSummary:
    """Aggregate view over every checkpointed shard of a campaign."""

    spec: CampaignSpec
    shards_total: int
    shards_run: int
    shards_skipped: int
    shards_errored: List[int]
    checked: int = 0
    dedup_hits: int = 0
    verified: int = 0
    failed: int = 0
    inconclusive: int = 0
    timeout: int = 0
    #: subset of ``verified`` whose verdict came from input sampling
    #: (``spec.sample_inputs``) — evidence, not exhaustive proof.
    sampled_verified: int = 0
    #: guarded pass failures rolled back inside shards (the pipeline
    #: survived; the functions still concluded).
    recoveries: int = 0
    #: per-function pipeline crashes (strict policy or unguarded code);
    #: these functions have no verdict and are retried on resume.
    crashes: List[dict] = field(default_factory=list)
    #: supervisor activity: worker restarts behind delivered records,
    #: and shards quarantined as poison pills after the restart budget.
    worker_restarts: int = 0
    shards_quarantined: List[int] = field(default_factory=list)
    #: crash-bundle paths written under ``out_dir/crashes/``.
    bundle_paths: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    counterexamples: List[dict] = field(default_factory=list)
    #: canonical hash → verdict, merged across shards in shard-id order
    #: (first occurrence wins), so the set is schedule-independent.
    verdicts: Dict[str, str] = field(default_factory=dict)
    #: merged worker stats deltas (``{pass: {counter: n}}``) — the full
    #: registry view across every shard, process-local or not.
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    timing: PassTiming = field(default_factory=PassTiming, repr=False)
    records: Dict[int, dict] = field(default_factory=dict, repr=False)

    @property
    def dedup_hit_rate(self) -> float:
        total = self.checked + self.dedup_hits
        return self.dedup_hits / total if total else 0.0

    def verdict_lines(self) -> List[str]:
        """Sorted ``"<hash> <verdict>"`` lines — the canonical,
        worker-count-independent result of a campaign."""
        return [f"{h} {v}" for h, v in sorted(self.verdicts.items())]

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "shards_total": self.shards_total,
            "shards_run": self.shards_run,
            "shards_skipped": self.shards_skipped,
            "shards_errored": list(self.shards_errored),
            "checked": self.checked,
            "dedup_hits": self.dedup_hits,
            "dedup_hit_rate": self.dedup_hit_rate,
            "verified": self.verified,
            "sampled_verified": self.sampled_verified,
            "failed": self.failed,
            "inconclusive": self.inconclusive,
            "timeout": self.timeout,
            "recoveries": self.recoveries,
            "crashes": self.crashes,
            "worker_restarts": self.worker_restarts,
            "shards_quarantined": list(self.shards_quarantined),
            "bundles": self.bundle_paths,
            "wall_seconds": self.wall_seconds,
            "counterexamples": self.counterexamples,
            "stats": self.stats,
        }


def _resolve_work(kind: str):
    """Map a work kind to ``(spec_from_dict, run_fn)``.

    Lazy imports keep spawn-start children cheap and break the module
    cycle with :mod:`.lint_attack` (which imports this executor)."""
    if kind == "lint-attack":
        from .lint_attack import AttackSpec, run_attack_shard
        return AttackSpec.from_dict, run_attack_shard
    return CampaignSpec.from_dict, run_shard


def _shard_entry(conn, work: str, spec_dict: dict, shard_dict: dict,
                 known_hashes: Dict[str, str]) -> None:
    """Child-process entry: run one shard, report through the pipe."""
    shard = Shard.from_dict(shard_dict)
    spec_from_dict, run_fn = _resolve_work(work)
    # Black box for this worker: if the shard dies catastrophically
    # (outside the worker's own per-function handling), its last
    # recorded moments still reach the errored-shard record.
    recorder = FlightRecorder()
    set_recorder(recorder)
    recorder.install()
    try:
        record = run_fn(spec_from_dict(spec_dict), shard, known_hashes)
    except BaseException as e:  # report instead of dying silently
        record = _errored_record(shard, repr(e))
        record["flight_recorder"] = recorder.dump()
    finally:
        recorder.uninstall()
        set_recorder(None)
    try:
        conn.send(record)
    finally:
        conn.close()


def _errored_record(shard: Shard, reason: str) -> dict:
    return {"shard_id": shard.shard_id, "status": "errored",
            "error": reason, "checked": 0, "dedup_hits": 0,
            "verdicts": {}, "hashes": {}, "counterexamples": [],
            "crashes": [], "recoveries": 0, "bundles": [],
            "wall_seconds": 0.0}


def merge_worker_stats(record: dict) -> None:
    """Fold a child process's stats delta into this process's registry:
    the worker's own `StatsRegistry` died with it, and without this
    merge every refine/memo/pass counter a parallel campaign produced
    would reduce to zero at the coordinator.  Only subprocess records
    merge (in-process shards bump the shared registry directly; merging
    both would double-count)."""
    registry = default_registry()
    for pass_name, counters in (record.get("stats") or {}).items():
        for name, value in counters.items():
            registry.add(pass_name, name, value)


class ShardExecutor:
    """A reusable process-per-shard pool: submit shards, poll results.

    This is the submission API under both batch campaigns
    (:class:`CampaignRunner`) and the long-running service front-end
    (:mod:`repro.serve`): callers :meth:`submit` any number of
    ``(spec, shard)`` jobs and :meth:`poll` completions as they land,
    instead of handing over control until a whole campaign finishes.

    Crash semantics extend the batch path with *supervision*: a worker
    that dies without reporting, exceeds ``shard_timeout``, or outlives
    its per-job deadline is detected here, and a
    :class:`~repro.campaign.supervisor.WorkerSupervisor` decides between
    a jittered-backoff restart (the job silently re-enqueues; callers
    just see a longer-running job) and final delivery of an ``errored``
    record — after the restart budget, with ``quarantined: True`` and
    the full attempt history (the poison-pill lane).  Either way a job
    always terminates in exactly one record — never lost, never hung —
    and each subprocess record's stats delta is merged into this
    process's registry.  ``supervisor=None`` disables retries (one
    attempt per job, the pre-supervision behavior).
    """

    def __init__(self, workers: int = 1,
                 shard_timeout: Optional[float] = None,
                 supervisor: Optional[WorkerSupervisor] = "default",
                 work: str = "refine"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.shard_timeout = shard_timeout
        #: work kind run by child processes (see :func:`_resolve_work`).
        self.work = work
        if supervisor == "default":
            supervisor = WorkerSupervisor(SupervisorPolicy())
        self.supervisor = supervisor
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        #: (job_id, spec_dict, shard, known, not_before, deadline)
        self._queue: deque = deque()
        #: job_id -> (proc, conn, t0, shard, deadline)
        self._running: Dict[int, tuple] = {}
        #: job_id -> its submit-time queue entry (for restarts).
        self._job_inputs: Dict[int, tuple] = {}
        self._next_job = 0

    # -- introspection -----------------------------------------------------
    @property
    def inflight(self) -> int:
        """Jobs currently running in child processes."""
        return len(self._running)

    @property
    def queued(self) -> int:
        """Jobs submitted (or re-enqueued for restart) but not started."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        return not (self._queue or self._running)

    # -- submission --------------------------------------------------------
    def submit(self, spec: CampaignSpec, shard: Shard,
               known_hashes: Optional[Dict[str, str]] = None,
               deadline: Optional[float] = None) -> int:
        """Enqueue one shard; returns its job id.  Jobs start as pool
        slots free up (at most ``workers`` children at a time).

        ``deadline`` is an absolute :func:`time.monotonic` instant; a
        job that has not finished by then is killed and delivered as an
        ``errored`` record without consuming restart budget."""
        job_id = self._next_job
        self._next_job += 1
        entry = (job_id, spec.as_dict(), shard,
                 dict(known_hashes or {}), 0.0, deadline)
        self._queue.append(entry)
        if self.supervisor is not None:
            self._job_inputs[job_id] = entry
        self._start_pending()
        return job_id

    def _start_pending(self) -> None:
        """Start queued jobs whose backoff delay has elapsed."""
        delayed = []
        while self._queue and len(self._running) < self.workers:
            entry = self._queue.popleft()
            job_id, spec_dict, shard, known, not_before, deadline = entry
            if not_before > time.monotonic():
                delayed.append(entry)
                continue
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_shard_entry,
                args=(child_conn, self.work, spec_dict,
                      shard.as_dict(), known),
            )
            proc.start()
            child_conn.close()
            self._running[job_id] = (proc, parent_conn,
                                     time.monotonic(), shard, deadline)
        self._queue.extendleft(reversed(delayed))

    def _requeue(self, job_id: int, shard: Shard, known_entry: tuple,
                 not_before: float) -> None:
        _, spec_dict, _, known, _, deadline = known_entry
        self._queue.append((job_id, spec_dict, shard, known,
                            not_before, deadline))

    # -- completion --------------------------------------------------------
    def poll(self, wait: float = 0.01) -> List[tuple]:
        """Reap finished jobs; returns ``[(job_id, shard, record), ...]``.

        Blocks at most ``wait`` seconds per still-running child.  Dead,
        timed-out, and deadline-overrun workers either restart (per the
        supervisor) or convert to ``errored`` records here, with their
        stats deltas merged into the coordinator registry."""
        done: List[tuple] = []
        for job_id in list(self._running):
            proc, conn, started, shard, deadline = self._running[job_id]
            record = None
            failure = None
            retryable = True
            if conn.poll(wait):
                try:
                    record = conn.recv()
                except EOFError:
                    record = None
                proc.join()
                if record is None:
                    failure = (f"worker died mid-report "
                               f"(exit code {proc.exitcode})")
            elif not proc.is_alive():
                proc.join()
                failure = (f"worker crashed without reporting "
                           f"(exit code {proc.exitcode})")
            elif deadline is not None and time.monotonic() >= deadline:
                proc.terminate()
                proc.join()
                failure = "job exceeded its request deadline"
            elif (self.shard_timeout is not None
                  and time.monotonic() - started > self.shard_timeout):
                proc.terminate()
                proc.join()
                failure = (f"shard exceeded its {self.shard_timeout}s "
                           f"timeout")
                # Re-running the same pure shard against the same wall
                # budget deterministically times out again.
                retryable = False
            else:
                continue
            conn.close()
            del self._running[job_id]
            if failure is not None:
                record = self._handle_failure(job_id, shard, failure,
                                              deadline, retryable)
                if record is None:
                    continue  # supervisor re-enqueued the job
            if self.supervisor is not None:
                # A healed job's record remembers its restarts (absent
                # on clean runs, so fault-free records stay identical).
                # history.attempts counts failures, and for a job that
                # ultimately reported, every failure became a restart.
                history = self.supervisor.history_for(job_id)
                if (record is not None and history is not None
                        and history.attempts > 0):
                    record.setdefault("restarts", history.attempts)
                self.supervisor.forget(job_id)
            self._job_inputs.pop(job_id, None)
            merge_worker_stats(record)
            done.append((job_id, shard, record))
        self._sleep_if_backing_off(wait)
        self._start_pending()
        return done

    def _handle_failure(self, job_id: int, shard: Shard, reason: str,
                        deadline: Optional[float],
                        retryable: bool = True) -> Optional[dict]:
        """Supervisor hook: returns the final record, or None on retry."""
        if self.supervisor is None:
            return _errored_record(shard, reason)
        decision = self.supervisor.on_failure(job_id, shard, reason,
                                              deadline=deadline,
                                              retryable=retryable)
        entry = self._job_inputs.get(job_id)
        if decision.action == "restart" and entry is not None:
            # Re-enqueue under the same job id: callers' futures stay
            # pending across the restart, and a successful retry's
            # record is byte-identical (run_shard is a pure function of
            # the re-used (spec, shard, known) inputs).
            self._queue.append(entry[:4] + (decision.not_before,
                                            entry[5]))
            return None
        history = self.supervisor.history_for(job_id)
        record = _errored_record(shard, decision.reason)
        if history is not None:
            record["restarts"] = max(0, history.attempts - 1)
        if decision.action == "quarantine":
            record["quarantined"] = True
        return record

    def _sleep_if_backing_off(self, wait: float) -> None:
        """Avoid a hot poll loop when only backed-off retries remain."""
        if self._running or not self._queue:
            return
        soonest = min(entry[4] for entry in self._queue)
        delay = min(wait, max(0.0, soonest - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    def drain(self, wait: float = 0.01):
        """Yield ``(job_id, shard, record)`` until every job completes."""
        while not self.idle:
            for item in self.poll(wait):
                yield item

    def shutdown(self, kill: bool = False) -> None:
        """Drop queued jobs; with ``kill`` also terminate running ones."""
        self._queue.clear()
        if kill:
            for proc, conn, _, _, _ in self._running.values():
                proc.terminate()
                proc.join()
                conn.close()
            self._running.clear()
            self._job_inputs.clear()


class CampaignRunner:
    """Run (or resume) one campaign against an output directory.

    ``out_dir=None`` runs fully in memory — no manifest, checkpoint, or
    dedup log — which is what the benchmark harness uses.
    """

    def __init__(self, spec: CampaignSpec, out_dir: Optional[str] = None,
                 workers: int = 1, shard_timeout: Optional[float] = None,
                 use_processes: Optional[bool] = None,
                 supervisor_policy: Optional[SupervisorPolicy] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if (out_dir is not None and spec.use_cache
                and spec.cache_dir is None):
            # Default the shared on-disk memo layer next to the
            # checkpoint, so shards (and later resumes) of this campaign
            # share verdicts automatically.
            spec = spec.with_(cache_dir=os.path.join(out_dir, "memo"))
        self.spec = spec
        self.out_dir = out_dir
        self.workers = workers
        self.shard_timeout = shard_timeout
        #: restart/quarantine policy for subprocess shards; None = the
        #: supervisor defaults.
        self.supervisor_policy = supervisor_policy
        #: None = processes exactly when workers > 1.
        self.use_processes = use_processes
        self.store = CheckpointStore(out_dir) if out_dir else None

    # -- public API --------------------------------------------------------
    def run(self, resume: bool = False, stop_after: Optional[int] = None,
            progress: Optional[Callable[[dict], None]] = None
            ) -> CampaignSummary:
        """Execute the shard plan; returns the campaign-wide summary.

        ``resume=True`` skips shards already checkpointed as ``done``
        and retries errored/missing ones.  ``stop_after=N`` stops after
        N newly completed shards (a graceful interrupt: the checkpoint
        stays consistent and ``resume`` finishes the rest).
        """
        shards = plan_shards(self.spec)
        prior: Dict[int, dict] = {}
        known: Dict[str, str] = {}
        if self.store is not None:
            if resume:
                prior = {
                    sid: record
                    for sid, record in self.store.load().items()
                    if record.get("status") == "done"
                }
                known = self.store.load_dedup()
            else:
                save_manifest(self.out_dir, self.spec,
                              extra={"shards": len(shards)})

        pending = [s for s in shards if s.shard_id not in prior]
        if stop_after is not None:
            pending = pending[:stop_after]
        NUM_SHARDS_SKIPPED.inc(len(prior))

        new_records: Dict[int, dict] = {}

        def finalize(shard: Shard, record: dict) -> None:
            self._persist_bundles(record)
            new_records[shard.shard_id] = record
            if self.store is not None:
                self.store.append(record)
                if record.get("hashes"):
                    self.store.append_dedup(record["hashes"])
            if progress is not None:
                progress(record)

        run_processes = (self.use_processes if self.use_processes is not None
                         else self.workers > 1)
        with span("campaign-run", cat="campaign") as sp:
            if run_processes:
                self._run_subprocess(pending, known, finalize)
            else:
                self._run_inprocess(pending, known, finalize)
            sp.set(shards=len(pending), workers=self.workers,
                   processes=run_processes)

        summary = self._summarize({**prior, **new_records}, shards,
                                  shards_run=len(new_records),
                                  shards_skipped=len(prior))
        self._account(new_records, summary)
        return summary

    def _persist_bundles(self, record: dict) -> None:
        """Materialize a shard's in-memory crash bundles under
        ``out_dir/crashes/`` and swap the payloads for their paths.

        Bundle ids are content-hashed, so retried shards rewrite the
        same directories instead of accumulating duplicates."""
        payloads = record.get("bundles") or []
        if not payloads:
            return
        if self.out_dir is None:
            record["bundles"] = [p.get("bundle_id", "") for p in payloads]
            return
        root = os.path.join(self.out_dir, CRASHES_DIR)
        record["bundles"] = [write_bundle(root, p) for p in payloads]

    # -- execution strategies ---------------------------------------------
    def _run_inprocess(self, pending: List[Shard], known: Dict[str, str],
                       finalize) -> None:
        for shard in pending:
            recorder = FlightRecorder()
            old_recorder = set_recorder(recorder)
            recorder.install()
            try:
                record = run_shard(self.spec, shard, known)
            except Exception as e:
                record = _errored_record(shard, repr(e))
                record["flight_recorder"] = recorder.dump()
            finally:
                recorder.uninstall()
                set_recorder(old_recorder)
            finalize(shard, record)

    def _run_subprocess(self, pending: List[Shard], known: Dict[str, str],
                        finalize) -> None:
        executor = ShardExecutor(
            workers=self.workers, shard_timeout=self.shard_timeout,
            supervisor=WorkerSupervisor(self.supervisor_policy))
        for shard in pending:
            executor.submit(self.spec, shard, known)
        for _job_id, shard, record in executor.drain():
            finalize(shard, record)

    # -- aggregation -------------------------------------------------------
    def _summarize(self, records: Dict[int, dict], shards: List[Shard],
                   shards_run: int, shards_skipped: int) -> CampaignSummary:
        summary = CampaignSummary(
            spec=self.spec,
            shards_total=len(shards),
            shards_run=shards_run,
            shards_skipped=shards_skipped,
            shards_errored=[],
            records=records,
        )
        for sid in sorted(records):
            record = records[sid]
            if record.get("status") == "errored":
                # Still aggregate: a guarded shard that hit per-function
                # crashes reports partial results (everything that did
                # conclude) instead of losing the whole shard.
                summary.shards_errored.append(sid)
            summary.worker_restarts += record.get("restarts", 0)
            if record.get("quarantined"):
                summary.shards_quarantined.append(sid)
            summary.checked += record.get("checked", 0)
            summary.dedup_hits += record.get("dedup_hits", 0)
            verdicts = record.get("verdicts", {})
            summary.verified += verdicts.get("verified", 0)
            summary.failed += verdicts.get("failed", 0)
            summary.inconclusive += verdicts.get("inconclusive", 0)
            summary.timeout += verdicts.get("timeout", 0)
            summary.sampled_verified += record.get("sampled_verified", 0)
            summary.recoveries += record.get("recoveries", 0)
            summary.crashes.extend(record.get("crashes", []))
            summary.bundle_paths.extend(record.get("bundles", []))
            summary.wall_seconds += record.get("wall_seconds", 0.0)
            summary.counterexamples.extend(
                record.get("counterexamples", []))
            # First occurrence (lowest shard id) wins: the merged verdict
            # set is independent of worker count and scheduling order.
            for h, v in sorted(record.get("hashes", {}).items()):
                summary.verdicts.setdefault(h, v)
            for pass_name, counters in (record.get("stats") or {}).items():
                dest = summary.stats.setdefault(pass_name, {})
                for name, value in counters.items():
                    dest[name] = dest.get(name, 0) + value
            summary.timing.passes.setdefault(
                "campaign-shard", PassStats()
            ).record(f"shard{sid}", record.get("wall_seconds", 0.0),
                     changed=bool(verdicts.get("failed")))
        return summary

    def _account(self, new_records: Dict[int, dict],
                 summary: CampaignSummary) -> None:
        """Feed this run's results into the diag layer."""
        for sid in sorted(new_records):
            record = new_records[sid]
            if record.get("status") == "errored":
                NUM_SHARDS_ERRORED.inc()
            else:
                NUM_SHARDS_DONE.inc()
            NUM_CHECKED.inc(record.get("checked", 0))
            NUM_DEDUP_HITS.inc(record.get("dedup_hits", 0))
            NUM_FAILURES.inc(record.get("verdicts", {}).get("failed", 0))
            NUM_TIMEOUTS.inc(record.get("verdicts", {}).get("timeout", 0))
            NUM_PASS_RECOVERIES.inc(record.get("recoveries", 0))
            NUM_PASS_CRASHES.inc(len(record.get("crashes", [])))
            for crash in record.get("crashes", []):
                emit_remark(
                    "campaign",
                    f"pipeline crash on corpus function "
                    f"#{crash.get('index')} (shard {sid}"
                    f"{', pass ' + crash['pass'] if crash.get('pass') else ''}"
                    f"): {crash.get('error', '')}",
                    kind=REMARK_ANALYSIS, function="f",
                )
            for cex in record.get("counterexamples", []):
                emit_remark(
                    "campaign",
                    f"refinement failure: {self.spec.pipeline} "
                    f"({self.spec.opt_config}) miscompiles corpus "
                    f"function #{cex['index']} "
                    f"(shard {sid}, hash {cex['hash'][:12]})",
                    kind=REMARK_ANALYSIS, function="f",
                )


def run_campaign(spec: CampaignSpec, out_dir: Optional[str] = None,
                 workers: int = 1, resume: bool = False,
                 shard_timeout: Optional[float] = None,
                 stop_after: Optional[int] = None) -> CampaignSummary:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(spec, out_dir=out_dir, workers=workers,
                            shard_timeout=shard_timeout)
    return runner.run(resume=resume, stop_after=stop_after)
