"""Durable campaign state: manifest, shard checkpoint, dedup log.

Everything is append-only JSONL (plus one JSON manifest), chosen so a
mid-run kill can at worst truncate the final line — the loader skips
unparseable trailing garbage instead of failing, and ``resume`` simply
re-runs the shard whose record was lost.

* ``manifest.json``  — the :class:`~repro.campaign.spec.CampaignSpec`
  and the shard plan's vital statistics; ``campaign resume`` rebuilds
  the exact shard plan from it.
* ``checkpoint.jsonl`` — one record per *completed* shard (``done`` or
  ``errored``): verdict counts, counterexamples, dedup hits, wall time,
  and a stats-registry delta.  The last record for a shard id wins, so
  a retried shard simply appends its new outcome.
* ``dedup.jsonl``     — one ``{"hash": ..., "verdict": ...}`` line per
  newly checked canonical hash; preloaded into the dedup cache on
  resume so previously checked functions are never re-verified.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional, Tuple

from .spec import CampaignSpec

MANIFEST_NAME = "manifest.json"
CHECKPOINT_NAME = "checkpoint.jsonl"
DEDUP_NAME = "dedup.jsonl"
REDUCED_NAME = "reduced.jsonl"


def _append_jsonl(path: str, records: Iterable[dict]) -> None:
    with open(path, "a", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True) + "\n")
        f.flush()
        os.fsync(f.fileno())


def _load_jsonl(path: str) -> Iterable[dict]:
    """Parse a JSONL file, skipping corrupt lines (a killed writer can
    leave a truncated final record — that shard just reruns)."""
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


class CheckpointStore:
    """The per-shard completion log of one campaign directory."""

    def __init__(self, out_dir: str):
        self.out_dir = out_dir
        os.makedirs(out_dir, exist_ok=True)
        self.path = os.path.join(out_dir, CHECKPOINT_NAME)
        self.dedup_path = os.path.join(out_dir, DEDUP_NAME)

    # -- shard records -----------------------------------------------------
    def append(self, record: dict) -> None:
        _append_jsonl(self.path, [record])

    def load(self) -> Dict[int, dict]:
        """All shard records, last-record-per-shard-id wins."""
        records: Dict[int, dict] = {}
        for record in _load_jsonl(self.path):
            if "shard_id" in record:
                records[int(record["shard_id"])] = record
        return records

    def done_ids(self) -> frozenset:
        """Shards that finished successfully (``errored`` shards are
        *not* done: resume retries them)."""
        return frozenset(
            sid for sid, record in self.load().items()
            if record.get("status") == "done"
        )

    # -- dedup log ---------------------------------------------------------
    def append_dedup(self, verdicts: Dict[str, str]) -> None:
        _append_jsonl(
            self.dedup_path,
            ({"hash": h, "verdict": v} for h, v in sorted(verdicts.items())),
        )

    def load_dedup(self) -> Dict[str, str]:
        known: Dict[str, str] = {}
        for record in _load_jsonl(self.dedup_path):
            if "hash" in record:
                known[record["hash"]] = record.get("verdict", "")
        return known

    # -- reduced counterexamples ------------------------------------------
    def append_reduced(self, records: Iterable[dict]) -> None:
        _append_jsonl(os.path.join(self.out_dir, REDUCED_NAME), records)

    def load_reduced(self) -> list:
        return list(_load_jsonl(os.path.join(self.out_dir, REDUCED_NAME)))


def save_manifest(out_dir: str, spec: CampaignSpec,
                  extra: Optional[dict] = None) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, MANIFEST_NAME)
    payload = {"spec": spec.as_dict(),
               "total_functions": spec.total_functions()}
    payload.update(extra or {})
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def load_manifest_payload(out_dir: str) -> dict:
    """The raw manifest dict; callers dispatch on ``payload["kind"]``
    before committing to a spec class (refine campaigns predate the
    tag, so a missing kind means refine)."""
    path = os.path.join(out_dir, MANIFEST_NAME)
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def manifest_kind(out_dir: str) -> str:
    return load_manifest_payload(out_dir).get("kind", "refine")


def load_manifest(out_dir: str) -> Tuple[CampaignSpec, dict]:
    payload = load_manifest_payload(out_dir)
    kind = payload.get("kind", "refine")
    if kind != "refine":
        raise ValueError(
            f"manifest in {out_dir} is a {kind!r} campaign, not refine")
    return CampaignSpec.from_dict(payload["spec"]), payload
