"""Validation campaign engine (Section 6 at scale).

Turns the E5 methodology — opt-fuzz corpus generation × Alive-style
refinement checking — into a scalable, resumable subsystem: sharded
corpora, a parallel executor with crash accounting, a canonical-hash
dedup cache, JSONL checkpoint/resume, a counterexample reducer, and a
CLI (``python -m repro campaign run|resume|reduce|report``) integrated
with the observability layer.
"""

from .canon import DedupCache, canonical_function, canonical_hash, canonical_text
from .checkpoint import (
    CheckpointStore,
    load_manifest,
    load_manifest_payload,
    manifest_kind,
    save_manifest,
)
from .cli import campaign_main
from .executor import (
    CampaignRunner,
    CampaignSummary,
    ShardExecutor,
    merge_worker_stats,
    run_campaign,
)
from .lint_attack import (
    AttackRunner,
    AttackSpec,
    AttackSummary,
    aggregate_attack_records,
    plan_attack_shards,
    render_attack_report,
    run_attack,
    run_attack_shard,
)
from .reduce import (
    ReductionResult,
    make_failure_oracle,
    reduce_counterexamples,
    reduce_failure,
)
from .report import aggregate_records, build_diag, render_report
from .sharding import Shard, iter_shard_functions, plan_shards, shard_stream_seed
from .spec import CampaignSpec
from .supervisor import SupervisorPolicy, WorkerSupervisor
from .worker import run_shard

__all__ = [
    "AttackRunner", "AttackSpec", "AttackSummary",
    "CampaignRunner", "CampaignSpec", "CampaignSummary", "CheckpointStore",
    "DedupCache", "ReductionResult", "Shard", "ShardExecutor",
    "SupervisorPolicy", "WorkerSupervisor",
    "aggregate_attack_records", "aggregate_records", "merge_worker_stats",
    "build_diag", "campaign_main", "canonical_function", "canonical_hash",
    "canonical_text", "iter_shard_functions", "load_manifest",
    "load_manifest_payload", "make_failure_oracle", "manifest_kind",
    "plan_attack_shards", "plan_shards", "reduce_counterexamples",
    "reduce_failure", "render_attack_report", "render_report",
    "run_attack", "run_attack_shard", "run_campaign", "run_shard",
    "save_manifest", "shard_stream_seed",
]
