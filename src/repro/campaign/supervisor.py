"""Worker supervision: restart crashed/hung shard workers, quarantine
crash-loopers.

The executor's original failure handling was *accounting*: a worker
that died or overran its timeout produced an ``errored`` record and the
shard was only retried by an explicit ``campaign resume``.  That is the
right floor for a batch CLI, but a long-running service must heal
without an operator: :class:`WorkerSupervisor` sits between the
executor's failure detection and its record delivery and decides, per
failed job, between

* **restart** — re-enqueue the job after a jittered exponential
  backoff delay (crashes are often environmental: OOM pressure, a
  chaos SIGKILL, a transient disk error), bounded by a per-job restart
  budget and a global restart budget;
* **quarantine** — after the budget is spent, the job is declared a
  *poison pill*: the same input crashing the worker on every attempt is
  almost certainly input-triggered, and retrying it forever would wedge
  a pool slot.  The job resolves to an ``errored`` record carrying
  ``quarantined: True`` plus the full attempt history, and the shard's
  coordinates land in the supervisor's poison-pill lane for operators
  (and the campaign summary / service health endpoint) to inspect.

Two failure classes never consume restart budget:

* a job whose **deadline** already expired — there is no time left to
  retry in, so the failure is delivered immediately (the request-level
  timeout machinery owns the error);
* failures while the executor is **shutting down**.

Determinism: backoff jitter is drawn from a :class:`random.Random`
seeded at construction, so tests (and the E14 chaos bench) replay the
same schedule.  Verdict parity is unaffected by construction — a
restarted shard re-runs :func:`~repro.campaign.worker.run_shard`, whose
record is a pure function of ``(spec, shard, known_hashes)``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..diag import Statistic

NUM_RESTARTS = Statistic(
    "supervisor", "num-worker-restarts",
    "Failed shard jobs re-enqueued by the worker supervisor")
NUM_QUARANTINED = Statistic(
    "supervisor", "num-jobs-quarantined",
    "Crash-looping jobs moved to the poison-pill lane")
NUM_BUDGET_EXHAUSTED = Statistic(
    "supervisor", "num-restart-budget-exhausted",
    "Failures delivered because the global restart budget ran dry")


@dataclass
class SupervisorPolicy:
    """Tunables of one supervisor instance."""

    #: restarts allowed per job before it is quarantined.
    max_restarts: int = 2
    #: retry shard-timeout failures too?  Off by default: a shard's
    #: wall-timeout re-runs the same pure function against the same
    #: budget, so the retry deterministically times out again — it goes
    #: straight to the poison-pill lane instead.  Crashes stay
    #: retryable (they are often environmental).
    retry_timeouts: bool = False
    #: restarts allowed across all jobs of this executor's lifetime;
    #: None = unbounded.  A crash storm that blows through this is an
    #: environment problem, not an input problem — stop masking it.
    restart_budget: Optional[int] = 256
    #: backoff delay before restart attempt k is ``base * 2**(k-1)``,
    #: clamped to ``cap``, then jittered by ±``jitter`` (fractional).
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    jitter: float = 0.5
    #: jitter RNG seed (deterministic schedules for tests/benches).
    seed: int = 0


@dataclass
class JobHistory:
    """What the supervisor knows about one job's failures."""

    attempts: int = 0
    reasons: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"attempts": self.attempts, "reasons": list(self.reasons)}


@dataclass(frozen=True)
class Decision:
    """The supervisor's verdict on one failure."""

    action: str  # "restart" | "quarantine" | "fail"
    #: restart only: earliest monotonic time the retry may start.
    not_before: float = 0.0
    reason: str = ""


class WorkerSupervisor:
    """Restart/quarantine policy plus per-job failure state."""

    def __init__(self, policy: Optional[SupervisorPolicy] = None):
        self.policy = policy or SupervisorPolicy()
        self._rng = random.Random(self.policy.seed)
        self._history: Dict[int, JobHistory] = {}
        #: poison-pill lane: quarantined jobs, for reporting.
        self.poison_pills: List[dict] = []
        self.restarts = 0
        self.quarantined = 0

    # -- the decision point -------------------------------------------------
    def on_failure(self, job_id: int, shard, reason: str,
                   deadline: Optional[float] = None,
                   retryable: bool = True) -> Decision:
        """Record one worker failure and decide what happens next.

        ``deadline`` is the job's absolute monotonic deadline (if any);
        an expired deadline always fails immediately — the time budget
        belongs to the request, not to the supervisor.
        ``retryable=False`` (deterministic failures, e.g. a shard wall
        timeout) skips the restart ladder and quarantines outright.
        """
        history = self._history.setdefault(job_id, JobHistory())
        history.attempts += 1
        history.reasons.append(reason)

        if deadline is not None and time.monotonic() >= deadline:
            return Decision("fail", reason=reason)
        if ((not retryable and not self.policy.retry_timeouts)
                or history.attempts > self.policy.max_restarts):
            return self._quarantine(job_id, shard, history, reason)
        if (self.policy.restart_budget is not None
                and self.restarts >= self.policy.restart_budget):
            NUM_BUDGET_EXHAUSTED.inc()
            return Decision(
                "fail",
                reason=f"{reason} (global restart budget "
                       f"{self.policy.restart_budget} exhausted)")

        delay = self._backoff(history.attempts)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= delay:
                # Not enough runway for a backed-off retry to help.
                return Decision("fail", reason=reason)
        self.restarts += 1
        NUM_RESTARTS.inc()
        return Decision("restart", not_before=time.monotonic() + delay,
                        reason=reason)

    def _quarantine(self, job_id: int, shard, history: JobHistory,
                    reason: str) -> Decision:
        self.quarantined += 1
        NUM_QUARANTINED.inc()
        pill = {"job_id": job_id, "attempts": history.attempts,
                "reasons": list(history.reasons)}
        if shard is not None:
            pill.update(shard_id=shard.shard_id, start=shard.start,
                        stop=shard.stop)
        self.poison_pills.append(pill)
        return Decision(
            "quarantine",
            reason=f"quarantined after {history.attempts} failed "
                   f"attempts; last: {reason}")

    def _backoff(self, attempt: int) -> float:
        base = min(self.policy.backoff_cap,
                   self.policy.backoff_base * (2 ** (attempt - 1)))
        spread = base * self.policy.jitter
        return max(0.0, base + self._rng.uniform(-spread, spread))

    # -- bookkeeping --------------------------------------------------------
    def history_for(self, job_id: int) -> Optional[JobHistory]:
        return self._history.get(job_id)

    def forget(self, job_id: int) -> None:
        """Drop a completed job's state (success or final failure)."""
        self._history.pop(job_id, None)

    def report(self) -> dict:
        """Snapshot for health endpoints and campaign summaries."""
        return {
            "restarts": self.restarts,
            "quarantined": self.quarantined,
            "poison_pills": [dict(p) for p in self.poison_pills],
        }
