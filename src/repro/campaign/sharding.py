"""Partitioning a campaign's corpus into independent work units.

Exhaustive campaigns shard the enumeration space by *index range*:
``enumerate_functions(start=a, stop=b)`` addresses positions ``[a, b)``
directly (mixed-radix decoding, no prefix walk), so a shard's corpus is
a pure function of the spec and the shard id.  Random campaigns give
each shard its own *derived stream seed*, mixed from the campaign seed
and the shard id — shard corpora are therefore independent of worker
count, scheduling order, and how many times the campaign was resumed.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional

from ..ir import Function
from .spec import CampaignSpec

#: odd 32-bit mixing constant (golden-ratio hash), so consecutive shard
#: ids land on well-separated stream seeds.
_SEED_MIX = 0x9E3779B1


def shard_stream_seed(base_seed: int, shard_id: int) -> int:
    """The derived RNG seed for a random-mode shard."""
    return (base_seed ^ ((shard_id + 1) * _SEED_MIX)) & 0xFFFFFFFF


@dataclass(frozen=True)
class Shard:
    """One work unit: a contiguous corpus index range ``[start, stop)``
    plus, in random mode, the shard's derived stream seed."""

    shard_id: int
    start: int
    stop: int
    seed: Optional[int] = None

    @property
    def size(self) -> int:
        return self.stop - self.start

    def as_dict(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict) -> "Shard":
        return Shard(**data)


def plan_shards(spec: CampaignSpec) -> List[Shard]:
    """The campaign's full shard plan — a pure function of the spec."""
    total = spec.total_functions()
    offset = spec.start if spec.mode == "enumerate" else 0
    shards: List[Shard] = []
    for shard_id, lo in enumerate(range(0, total, spec.shard_size)):
        hi = min(lo + spec.shard_size, total)
        seed = (shard_stream_seed(spec.seed, shard_id)
                if spec.mode == "random" else None)
        shards.append(Shard(shard_id, offset + lo, offset + hi, seed))
    return shards


def iter_shard_functions(spec: CampaignSpec,
                         shard: Shard) -> Iterator[Function]:
    """Generate exactly the functions this shard is responsible for."""
    if spec.mode == "enumerate":
        from ..fuzz import enumerate_functions

        yield from enumerate_functions(
            spec.num_instructions, width=spec.width,
            num_args=spec.num_args, opcodes=spec.resolved_opcodes(),
            include_deferred=spec.include_deferred,
            include_flags=spec.include_flags,
            start=shard.start, stop=shard.stop,
        )
    else:
        from ..fuzz import random_functions

        yield from random_functions(
            shard.size, num_instructions=spec.num_instructions,
            width=spec.width, num_args=spec.num_args,
            opcodes=spec.resolved_opcodes(),
            include_deferred=spec.include_deferred,
            include_flags=spec.include_flags,
            rng=random.Random(shard.seed),
        )
