"""Campaign specifications: what to generate, how to optimize, how to check.

A :class:`CampaignSpec` is the complete, JSON-serializable description of
one validation campaign — corpus shape (exhaustive index range or seeded
random streams), the pipeline under test, the semantics configuration,
and the checker budgets.  The manifest written next to a campaign's
checkpoint stores exactly this spec, so ``campaign resume`` rebuilds the
same shard plan the interrupted run was executing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional, Tuple

from ..fuzz import DEFAULT_OPCODES, SMALL_OPCODES
from ..ir import Opcode
from ..opt import OptConfig, o2_pipeline, quick_pipeline, single_pass_pipeline
from ..opt.resilience import CHAOS_MODES, ChaosEngine, guarded_pipeline
from ..refine import CheckOptions
from ..semantics import NEW, OLD

#: pipelines addressable by name (anything else is a single-pass name)
_PIPELINES = ("o2", "quick")

_CONFIGS = ("fixed", "legacy")

_POLICIES = ("none", "strict", "recover", "quarantine")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to reproduce a campaign from scratch."""

    #: "enumerate" walks an index range of the exhaustive space;
    #: "random" draws seeded streams (one derived seed per shard).
    mode: str = "enumerate"
    width: int = 2
    num_instructions: int = 1
    num_args: int = 2
    #: opcode names (e.g. ``("add", "shl")``); empty = the mode's default
    #: set (SMALL_OPCODES for enumerate, DEFAULT_OPCODES for random).
    opcodes: Tuple[str, ...] = ()
    include_deferred: bool = True
    include_flags: bool = False
    #: random mode only: total functions to draw across all shards.
    count: int = 256
    #: random mode base seed; each shard derives its own stream seed.
    seed: int = 0
    #: "o2", "quick", or a single-pass name ("instcombine", "gvn", ...).
    pipeline: str = "o2"
    #: "fixed" (NEW semantics, paper pipeline) or "legacy" (OLD
    #: semantics, historical pass behaviors).
    opt_config: str = "fixed"
    shard_size: int = 64
    #: exhaustive mode: cap on the number of corpus indices covered.
    limit: Optional[int] = None
    #: exhaustive mode: first corpus index to cover.
    start: int = 0
    #: refinement-checker budgets.
    max_choices: int = 20
    fuel: int = 600
    max_inputs: int = 20_000
    #: when the input space exceeds ``max_inputs``, check this many
    #: deterministically-sampled inputs instead of declaring the
    #: function inconclusive; verdicts become "verified (sampled)" —
    #: see :attr:`repro.refine.CheckOptions.sample_inputs`.
    sample_inputs: Optional[int] = None
    #: refinement engine: "auto" / "vector" attempt the numpy
    #: lane-parallel engine with transparent scalar fallback, "scalar"
    #: forces the interpreter (the differential oracle).
    engine: str = "auto"
    #: run every vector-eligible check under *both* engines and fail
    #: the function (as a crash record) on any verdict drift.
    cross_check: bool = False
    #: recovery policy for the pipeline under test: "none" runs the
    #: plain PassManager (a pass crash kills the whole shard, as before);
    #: everything else runs a GuardedPassManager, turning a pass crash
    #: into a per-function record with an attached crash bundle.
    policy: str = "recover"
    #: verify the function after every pass application (rolled back on
    #: rejection).  Forced on whenever chaos is enabled, so injected IR
    #: corruptions are caught at the faulting pass, not downstream.
    verify_each: bool = False
    #: chaos fault injection over the pipeline under test; None = off.
    chaos_seed: Optional[int] = None
    chaos_rate: float = 0.05
    chaos_mode: str = "mixed"
    #: consult/populate the behavior-set memo cache (``repro.perf``).
    #: Verdict sets are byte-identical with the cache on or off; off
    #: exists for benchmarking and distrust.
    use_cache: bool = True
    #: directory of the shared on-disk memo layer; None = in-memory
    #: only.  The runner defaults this to ``<out_dir>/memo``.
    cache_dir: Optional[str] = None
    #: span-tracing output: each worker streams spans to
    #: ``<trace_dir>/spans-shard<id>.jsonl`` and periodic metric
    #: snapshots to ``metrics-shard<id>.jsonl``; None = tracing off.
    #: Deliberately absent from :meth:`memo_context` — tracing must
    #: never change a verdict.
    trace_dir: Optional[str] = None
    #: minimum seconds between a shard's metric time-series flushes.
    metrics_interval: float = 5.0

    def __post_init__(self):
        if self.mode not in ("enumerate", "random"):
            raise ValueError(f"unknown campaign mode {self.mode!r}")
        if self.opt_config not in _CONFIGS:
            raise ValueError(f"unknown opt config {self.opt_config!r}")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.policy not in _POLICIES:
            raise ValueError(f"unknown recovery policy {self.policy!r}")
        if self.chaos_mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {self.chaos_mode!r}")
        if self.engine not in ("auto", "scalar", "vector"):
            raise ValueError(f"unknown refinement engine {self.engine!r}")
        if self.sample_inputs is not None and self.sample_inputs <= 0:
            raise ValueError("sample_inputs must be positive")
        for name in self.opcodes:
            Opcode(name)  # raises ValueError on an unknown opcode name

    # -- derived configuration --------------------------------------------
    def resolved_opcodes(self) -> Tuple[Opcode, ...]:
        if self.opcodes:
            return tuple(Opcode(name) for name in self.opcodes)
        return SMALL_OPCODES if self.mode == "enumerate" else DEFAULT_OPCODES

    def make_opt_config(self) -> OptConfig:
        if self.opt_config == "legacy":
            return OptConfig.legacy(OLD)
        return OptConfig.fixed(NEW)

    def semantics(self):
        return OLD if self.opt_config == "legacy" else NEW

    def make_pipeline(self):
        config = self.make_opt_config()
        if self.policy == "none" and self.chaos_seed is None:
            if self.pipeline == "o2":
                return o2_pipeline(config)
            if self.pipeline == "quick":
                return quick_pipeline(config)
            return single_pass_pipeline(self.pipeline, config)
        chaos = (ChaosEngine(seed=self.chaos_seed, rate=self.chaos_rate,
                             mode=self.chaos_mode)
                 if self.chaos_seed is not None else None)
        return guarded_pipeline(
            self.pipeline, config,
            policy=self.policy if self.policy != "none" else "recover",
            verify_each=self.verify_each or chaos is not None,
            chaos=chaos,
        )

    def check_options(self) -> CheckOptions:
        return CheckOptions(max_choices=self.max_choices, fuel=self.fuel,
                            max_inputs=self.max_inputs,
                            sample_inputs=self.sample_inputs,
                            engine=self.engine,
                            cross_check=self.cross_check)

    def memo_context(self) -> str:
        """Hash of every non-function input the refinement verdict
        depends on — the scope key of the behavior-set memo cache.
        Two specs sharing a context may share memo entries; anything
        that could change a verdict (pipeline, semantics, budgets) must
        appear here."""
        import hashlib
        import json as json_module

        relevant = {
            "pipeline": self.pipeline,
            "opt_config": self.opt_config,
            "policy": self.policy,
            "verify_each": self.verify_each,
            "width": self.width,
            "max_choices": self.max_choices,
            "fuel": self.fuel,
            "max_inputs": self.max_inputs,
        }
        # Verdict-relevant knobs added after the cache format shipped
        # join the context only at non-default values, so default-spec
        # contexts (and every memo entry recorded under them) are
        # unchanged.  ``sample_inputs`` MUST be here: a sampled
        # "verified" is evidence, not proof, and may never be replayed
        # into a context that would have enumerated exhaustively.
        # ``engine`` is here for distrust symmetry — the engines are
        # byte-identical by construction, but if that ever breaks, the
        # cache must not launder one engine's verdicts into the other's
        # context.  ``cross_check`` is deliberately absent: it can only
        # raise, never alter a returned verdict (and memoization is
        # disabled under it, see :meth:`memo_enabled`).
        if self.sample_inputs is not None:
            relevant["sample_inputs"] = self.sample_inputs
        if self.engine != "auto":
            relevant["engine"] = self.engine
        blob = json_module.dumps(relevant, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def memo_enabled(self) -> bool:
        """Memoization is sound only for deterministic pipelines: chaos
        injection draws from an engine shared across a shard, so
        skipping one function would shift every later function's
        faults.  Cross-check mode also disables it — a memo replay
        skips both engines, which is exactly the comparison the mode
        exists to run."""
        return (self.use_cache and self.chaos_seed is None
                and not self.cross_check)

    def total_functions(self) -> int:
        """Size of the corpus this campaign covers (across all shards)."""
        if self.mode == "random":
            return self.count
        from ..fuzz import enumeration_size

        total = enumeration_size(
            self.num_instructions, width=self.width, num_args=self.num_args,
            opcodes=self.resolved_opcodes(),
            include_deferred=self.include_deferred,
            include_flags=self.include_flags,
        )
        total = max(0, total - self.start)
        if self.limit is not None:
            total = min(total, self.limit)
        return total

    # -- serialization ------------------------------------------------------
    def as_dict(self) -> Dict:
        data = asdict(self)
        data["opcodes"] = list(self.opcodes)
        return data

    @staticmethod
    def from_dict(data: Dict) -> "CampaignSpec":
        data = dict(data)
        data["opcodes"] = tuple(data.get("opcodes", ()))
        return CampaignSpec(**data)

    def with_(self, **kwargs) -> "CampaignSpec":
        return replace(self, **kwargs)
