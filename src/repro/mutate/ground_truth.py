"""Classify lint verdicts on mutants against the executable semantics.

For every mutant, every rule that declared the producing mutator in its
``attacked_by`` set is scored at every site it could speak about, and
each (mutant, rule, site) observation lands in exactly one taxonomy
bucket:

============  ======================================================
verdict       meaning
============  ======================================================
tp            the rule fired and the hazard (or claim) is real
fp            the rule fired but the exact semantics refutes it
fn            the rule stayed silent on a hazard its contract covers
tn            the rule stayed silent and silence is correct
unclassified  the oracle ran out of budget (never a disagreement)
============  ======================================================

The oracle is the observation-call trick from ``campaign lint-audit``:
``call void @__atk_obs_K(%v)`` inserted *before* each site records the
watched value's exact bits on every path of every input — including the
bits' poison/undef markers, and including inputs that are themselves
poison — so a hazard is "an execution reaches the site with poison".
For origin-gated rules silence is only a false negative when the hazard
manifests on fully *defined* inputs (then the poison was necessarily
produced inside the function, which is exactly what the gate promises
to catch).  Precision rules (``redundant-freeze``,
``dead-on-poison-flag``) never produce false negatives: their contract
is about what they *say*, not what they omit — a fire with a refuted
claim is a false positive, silence is always a true negative.

``dead-on-poison-flag`` uses a differential oracle instead of
observation calls: the flag is dead iff dropping it leaves the behavior
set of every input unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    FreezeInst,
    Instruction,
    PhiInst,
    SwitchInst,
)
from ..ir.location import IRLocation
from ..ir.parser import parse_module
from ..ir.printer import print_function, print_instruction
from ..ir.types import FunctionType, VoidType
from ..lint.diagnostics import SEV_ERROR
from ..lint.engine import lint_function
from ..lint.rules import (
    POLARITY_PRECISION,
    RULES,
    hoist_dispatch_sites,
    iter_sinks,
)
from ..refine.exhaustive import input_candidates
from ..semantics.domains import PBIT, UBIT
from ..semantics.interp import enumerate_behaviors
from .mutators import Mutation

_OBS_PREFIX = "__atk_obs_"


def _is_poisoned(bits) -> bool:
    return any(b is PBIT or b is UBIT for b in bits)


def _slice_refs(inst: Instruction) -> List[Instruction]:
    """Backward slice of ``inst`` over instruction operands, in a
    deterministic def-before-use order (mirrors lint_audit)."""
    seen = {id(inst)}
    out = [inst]
    work = [inst]
    while work:
        cur = work.pop()
        for op in cur.operands:
            if isinstance(op, Instruction) and id(op) not in seen:
                seen.add(id(op))
                out.append(op)
                work.append(op)
    block = inst.parent
    order = {id(i): n for n, i in enumerate(block.instructions)}
    out.sort(key=lambda i: order.get(id(i), 0))
    return out

VERDICTS = ("tp", "fp", "fn", "tn", "unclassified")


@dataclass
class ClassifyOptions:
    max_inputs: int = 4096
    max_paths: int = 512
    max_choices: int = 16
    fuel: int = 4000


@dataclass
class Observation:
    """One scored (mutant, rule, site) triple."""

    mutator: str
    kind: str
    seed: str
    rule: str
    site: str            # "@fn:%block:#index" of the site instruction
    fired: bool
    severity: str        # of the fired diagnostic, "" when silent
    verdict: str         # one of VERDICTS
    detail: str
    reduced_ir: str = ""  # set for fp/fn disagreements only

    @property
    def is_disagreement(self) -> bool:
        return self.verdict in ("fp", "fn")

    def as_dict(self) -> Dict:
        return {
            "mutator": self.mutator,
            "kind": self.kind,
            "seed": self.seed,
            "rule": self.rule,
            "site": self.site,
            "fired": self.fired,
            "severity": self.severity,
            "verdict": self.verdict,
            "detail": self.detail,
            "reduced_ir": self.reduced_ir,
        }


@dataclass
class _Site:
    rule: str
    key: str                       # IRLocation string, pre-instrumentation
    block_index: int
    inst_index: int
    watches: List = field(default_factory=list)   # values to observe
    obs_names: List[str] = field(default_factory=list)
    diff: bool = False             # dead-flag differential site


class _ObsTally:
    __slots__ = ("executions", "hazard_any", "hazard_def", "defined_seen",
                 "example")

    def __init__(self):
        self.executions = 0
        self.hazard_any = False
        self.hazard_def = False
        self.defined_seen = False
        self.example = ""


def _parsed(mutation: Mutation) -> Function:
    module = parse_module(mutation.ir)
    fn = module.get_function(mutation.seed)
    if fn is None:  # pragma: no cover - mutator always keeps the name
        fn = module.definitions()[-1]
    return fn


def attacked_rules(mutation: Mutation, rules=None) -> List[str]:
    """Rule IDs scored against this mutant, in registration order."""
    selected = set(rules) if rules else None
    return [rule_id for rule_id, rule in RULES.items()
            if mutation.mutator in rule.attacked_by
            and (selected is None or rule_id in selected)]


def _collect_sites(fn: Function, rule_ids: List[str]) -> List[_Site]:
    """Every site each selected rule could speak about, with keys
    computed *before* any instrumentation shifts instruction indices."""
    dt = DominatorTree(fn)
    loops = LoopInfo(fn, dt)
    block_of = {id(b): i for i, b in enumerate(fn.blocks)}
    index_of = {}
    for b in fn.blocks:
        for i, inst in enumerate(b.instructions):
            index_of[id(inst)] = i

    def site(rule_id: str, inst: Instruction, watches, diff=False) -> _Site:
        return _Site(
            rule=rule_id,
            key=str(IRLocation.of(inst, function=fn.name)),
            block_index=block_of[id(inst.parent)],
            inst_index=index_of[id(inst)],
            watches=list(watches),
            diff=diff,
        )

    sites: List[_Site] = []
    for rule_id in rule_ids:
        if rule_id == "branch-on-maybe-poison":
            for block in fn.blocks:
                term = block.terminator
                if isinstance(term, BranchInst) and term.is_conditional:
                    sites.append(site(rule_id, term, [term.cond]))
                elif isinstance(term, SwitchInst):
                    sites.append(site(rule_id, term, [term.value]))
        elif rule_id == "missing-freeze-on-hoist":
            for term in hoist_dispatch_sites(fn, loops):
                sites.append(site(rule_id, term, [term.cond]))
        elif rule_id == "ub-sink-reaches-poison":
            for block in fn.blocks:
                for inst in block.instructions:
                    watches = [op for op, _role in iter_sinks(inst)]
                    if watches:
                        sites.append(site(rule_id, inst, watches))
        elif rule_id == "redundant-freeze":
            for block in fn.blocks:
                for inst in block.instructions:
                    if isinstance(inst, FreezeInst):
                        sites.append(site(rule_id, inst, [inst.value]))
        elif rule_id == "dead-on-poison-flag":
            for block in fn.blocks:
                for inst in block.instructions:
                    if (isinstance(inst, BinaryInst)
                            and (inst.nsw or inst.nuw or inst.exact)):
                        sites.append(site(rule_id, inst, [], diff=True))
    return sites


def _instrument_sites(fn: Function, sites: List[_Site]) -> Dict[str, int]:
    """Insert one observation call per watched value, *before* the site
    instruction (so the value is recorded even when the site then
    triggers immediate UB).  Returns obs-name -> watch position."""
    module = fn.module
    void = VoidType()
    obs_to_watch: Dict[str, int] = {}
    counter = 0
    for site in sites:
        if site.diff:
            continue
        anchor = fn.blocks[site.block_index].instructions[site.inst_index]
        for w, watch in enumerate(site.watches):
            name = f"{_OBS_PREFIX}{counter}"
            counter += 1
            callee = module.declare(name, FunctionType(void, (watch.type,)))
            call = CallInst(callee, [watch])
            block = anchor.parent
            spot = anchor
            while isinstance(spot, PhiInst):  # keep phis contiguous
                insts = block.instructions
                spot = insts[insts.index(spot) + 1]
            block.insert_before(spot, call)
            site.obs_names.append(name)
            obs_to_watch[name] = w
    return obs_to_watch


def _enumerate_observations(fn: Function, semantics,
                            opts: ClassifyOptions
                            ) -> Tuple[Optional[Dict[str, _ObsTally]], int, str]:
    """Run the instrumented mutant over every input combination.

    Returns (tallies, events, "") on success or (None, events, reason)
    when a budget was exceeded — the caller marks the sites
    unclassified rather than guessing."""
    pools = [input_candidates(a.type, semantics) for a in fn.args]
    total = 1
    for pool in pools:
        total *= len(pool)
    if total > opts.max_inputs:
        return None, 0, f"input budget: {total} > {opts.max_inputs}"
    tallies: Dict[str, _ObsTally] = {}
    events = 0
    for combo in itertools.product(*pools) if pools else [()]:
        defined = all(isinstance(v, int) for v in combo)
        try:
            behaviors = enumerate_behaviors(
                fn, list(combo), config=semantics,
                max_paths=opts.max_paths, max_choices=opts.max_choices,
                fuel=opts.fuel)
        except Exception as exc:
            return None, events, f"enumeration failed: {exc}"
        for behavior in behaviors:
            for name, arg_bits, _ret in behavior.events:
                if not name.startswith(_OBS_PREFIX):
                    continue
                bits = arg_bits[0]
                events += 1
                tally = tallies.get(name)
                if tally is None:
                    tally = tallies[name] = _ObsTally()
                tally.executions += 1
                if _is_poisoned(bits):
                    tally.hazard_any = True
                    if defined:
                        tally.hazard_def = True
                    if not tally.example:
                        tally.example = ", ".join(str(v) for v in combo)
                else:
                    tally.defined_seen = True
    return tallies, events, ""


def _flags_dead(mutation: Mutation, site: _Site, semantics,
                opts: ClassifyOptions) -> Tuple[Optional[bool], str]:
    """Differential oracle: is dropping this site's flags behavior-
    preserving on every input?  (None, reason) when over budget."""
    base_fn = _parsed(mutation)
    twin_fn = _parsed(mutation)
    twin = twin_fn.blocks[site.block_index].instructions[site.inst_index]
    twin.drop_poison_flags()
    pools = [input_candidates(a.type, semantics) for a in base_fn.args]
    total = 1
    for pool in pools:
        total *= len(pool)
    if total > opts.max_inputs:
        return None, f"input budget: {total} > {opts.max_inputs}"
    for combo in itertools.product(*pools) if pools else [()]:
        try:
            base = enumerate_behaviors(
                base_fn, list(combo), config=semantics,
                max_paths=opts.max_paths, max_choices=opts.max_choices,
                fuel=opts.fuel)
            bare = enumerate_behaviors(
                twin_fn, list(combo), config=semantics,
                max_paths=opts.max_paths, max_choices=opts.max_choices,
                fuel=opts.fuel)
        except Exception as exc:
            return None, f"enumeration failed: {exc}"
        if base != bare:
            return False, ", ".join(str(v) for v in combo)
    return True, ""


def _reduce_site(fn: Function, site: _Site) -> str:
    """Minimal reproducer for a disagreement: the site instruction's
    backward slice (single-block mutants) or the whole function."""
    anchor = fn.blocks[site.block_index].instructions[site.inst_index]
    if len(fn.blocks) != 1 or anchor.is_terminator:
        return print_function(fn)
    sliced = _slice_refs(anchor)
    decls = {}
    for inst in sliced:
        if isinstance(inst, CallInst):
            callee = inst.callee
            params = ", ".join(str(p) for p in callee.function_type.params)
            decls[callee.name] = (
                f"declare {callee.function_type.ret} "
                f"@{callee.name}({params})")
    args = ", ".join(f"{a.type} {a.ref()}" for a in fn.args)
    lines = list(decls.values())
    if lines:
        lines.append("")
    lines += [f"define void @reduced({args}) {{", "entry:"]
    for inst in sliced:
        lines.append(f"  {print_instruction(inst)}")
    lines += ["  ret void", "}"]
    text = "\n".join(lines) + "\n"
    try:  # the reducer must never produce unparsable output
        parse_module(text)
    except Exception:
        return print_function(fn)
    return text


def classify_mutation(mutation: Mutation, semantics,
                      opts: Optional[ClassifyOptions] = None,
                      rules=None) -> Tuple[List[Observation], int]:
    """Score every attacked rule on one mutant.

    Returns the observations plus the number of raw oracle events that
    backed them.
    """
    opts = opts or ClassifyOptions()
    rule_ids = attacked_rules(mutation, rules)
    if not rule_ids:
        return [], 0

    # Lint the pristine mutant; fired verdicts are keyed by site.
    lint_fn = _parsed(mutation)
    fired: Dict[Tuple[str, str], object] = {}
    for diag in lint_function(lint_fn, semantics=semantics,
                              rules=rule_ids):
        fired.setdefault((diag.rule_id, str(diag.loc)), diag)

    # Sites + ground truth on an independent copy (instrumentation must
    # never perturb what lint saw).
    obs_fn = _parsed(mutation)
    sites = _collect_sites(obs_fn, rule_ids)
    if not sites:
        return [], 0
    _instrument_sites(obs_fn, sites)
    need_obs = any(not s.diff for s in sites)
    tallies: Dict[str, _ObsTally] = {}
    events = 0
    obs_failure = ""
    if need_obs:
        tallies_or_none, events, obs_failure = _enumerate_observations(
            obs_fn, semantics, opts)
        tallies = tallies_or_none if tallies_or_none is not None else {}

    observations: List[Observation] = []
    for site in sites:
        rule = RULES[site.rule]
        diag = fired.get((site.rule, site.key))
        did_fire = diag is not None
        severity = diag.severity if did_fire else ""
        reduced = ""

        if site.diff:
            equal, note = _flags_dead(mutation, site, semantics, opts)
            if equal is None:
                verdict, detail = "unclassified", note
            elif did_fire:
                if equal:
                    verdict = "tp"
                    detail = "flags are dead: dropping them is behavior-preserving"
                else:
                    verdict = "fp"
                    detail = (f"flags are live: behaviors differ on "
                              f"inputs ({note})")
            else:
                verdict = "tn"
                detail = ("silent; precision rule silence is always "
                          "acceptable")
        elif obs_failure:
            verdict, detail = "unclassified", obs_failure
        else:
            hazard_any = hazard_def = defined_seen = False
            executed = False
            example = ""
            for name in site.obs_names:
                tally = tallies.get(name)
                if tally is None:
                    continue
                executed = True
                hazard_any = hazard_any or tally.hazard_any
                hazard_def = hazard_def or tally.hazard_def
                defined_seen = defined_seen or tally.defined_seen
                example = example or tally.example
            if rule.polarity == POLARITY_PRECISION:
                # redundant-freeze: the claim is "operand provably not
                # poison"; any poisoned observation refutes it.
                if not did_fire:
                    verdict = "tn"
                    detail = ("silent; precision rule silence is always "
                              "acceptable")
                elif hazard_any:
                    verdict = "fp"
                    detail = (f"claimed never-poison operand observed "
                              f"poisoned on inputs ({example})")
                else:
                    verdict = "tp"
                    detail = "operand never poisoned in any execution"
            elif did_fire:
                if severity == SEV_ERROR and defined_seen:
                    verdict = "fp"
                    detail = ("must-poison claim refuted: a defined "
                              "value was observed at the site")
                elif hazard_any or not executed:
                    verdict = "tp"
                    detail = ("hazard confirmed: poison observed at the "
                              f"site on inputs ({example})" if hazard_any
                              else "site unreachable; may-claim is vacuous")
                else:
                    verdict = "fp"
                    detail = ("no execution ever brings poison to this "
                              "site")
            else:
                gate = hazard_def if rule.origin_gated else hazard_any
                if gate:
                    verdict = "fn"
                    detail = (f"silent, but poison reaches the site on "
                              f"{'defined ' if rule.origin_gated else ''}"
                              f"inputs ({example})")
                else:
                    verdict = "tn"
                    detail = ("no in-contract hazard reaches the site; "
                              "silence is correct")

        if verdict in ("fp", "fn"):
            reduced = _reduce_site(lint_fn, site)
        observations.append(Observation(
            mutator=mutation.mutator, kind=mutation.kind,
            seed=mutation.seed, rule=site.rule, site=site.key,
            fired=did_fire, severity=severity, verdict=verdict,
            detail=detail, reduced_ir=reduced))
    return observations, events


def tally_verdicts(observations: List[Observation]) -> Dict[str, Dict[str, int]]:
    """Per-rule taxonomy counts over a batch of observations."""
    out: Dict[str, Dict[str, int]] = {}
    for obs in observations:
        bucket = out.setdefault(obs.rule,
                                {v: 0 for v in VERDICTS})
        bucket[obs.verdict] += 1
    return out
