"""Semantics-aware IR mutators for adversarial checker validation.

Two families, after the DESIL framing (PAPERS.md):

* **UB-injecting** mutators make poison *more* reachable: set nsw/nuw/
  exact flags, force a shift amount out of range, replace operands with
  ``poison``/``undef`` literals, and route values into UB sinks
  (branches, division divisors, external calls) so a sound rule must
  speak up.
* **UB-removing** mutators make poison *less* observable: insert
  ``freeze``, drop flags, guard a branch condition behind a freeze —
  so a precise rule must stay quiet (or, for redundant-freeze, fire
  with a correct claim).

Every mutator is a pure function ``Function -> List[Mutation]`` that
never touches its input: each mutation re-parses the printed seed and
perturbs the copy, and carries the full mutant module text so the
campaign worker can rebuild it anywhere.  Which rules score against
which mutants is declared on the *rules* (``LintRule.attacked_by``);
``rules_attacked_by`` is the join.

Mutators only target the corpus shape the opt-fuzz enumerator emits: a
single ``entry`` block ending in ``ret iW %v``.  Seeds outside that
shape yield no mutations rather than an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    EXACT_OPCODES,
    OVERFLOW_OPCODES,
    BinaryInst,
    BranchInst,
    CallInst,
    FreezeInst,
    IcmpInst,
    IcmpPred,
    Opcode,
    ReturnInst,
)
from ..ir.parser import parse_module
from ..ir.printer import print_function, print_instruction, print_module
from ..ir.types import FunctionType, VoidType
from ..ir.values import ConstantInt, PoisonValue, UndefValue

KIND_UB_INJECT = "ub-inject"
KIND_UB_REMOVE = "ub-remove"

#: name of the opaque external sink the route-call mutator declares
SINK_NAME = "__attack_sink"

_SHIFTS = (Opcode.SHL, Opcode.LSHR, Opcode.ASHR)


@dataclass(frozen=True)
class Mutation:
    """One mutant: the perturbed function plus provenance."""

    mutator: str     # producing mutator's name
    kind: str        # KIND_UB_INJECT | KIND_UB_REMOVE
    seed: str        # seed function name
    site: str        # textual anchor of the perturbed site
    detail: str      # human description of the perturbation
    ir: str          # full module text of the mutant

    def as_dict(self) -> Dict:
        return {
            "mutator": self.mutator,
            "kind": self.kind,
            "seed": self.seed,
            "site": self.site,
            "detail": self.detail,
            "ir": self.ir,
        }


@dataclass(frozen=True)
class Mutator:
    """A registered mutator: stable name, family, apply function."""

    name: str
    kind: str
    description: str
    apply: Callable[[Function], List[Mutation]]


#: name -> Mutator, in registration order (drives --list-mutators and
#: the deterministic per-seed mutation order).
MUTATORS: Dict[str, Mutator] = {}


def _register(name: str, kind: str, description: str):
    def deco(fn):
        MUTATORS[name] = Mutator(name, kind, description, fn)
        return fn
    return deco


def all_mutator_names() -> List[str]:
    return list(MUTATORS)


def rules_attacked_by(mutator_name: str) -> List[str]:
    """Rule IDs that declare this mutator as one of their attackers."""
    from ..lint.rules import RULES

    return [rule_id for rule_id, rule in RULES.items()
            if mutator_name in rule.attacked_by]


def mutate_function(fn: Function, mutators=None) -> List[Mutation]:
    """Apply every (selected) mutator to one seed, in registration
    order; the result order is deterministic for a given seed."""
    selected = list(mutators) if mutators else list(MUTATORS)
    out: List[Mutation] = []
    for name in selected:
        if name not in MUTATORS:
            raise ValueError(f"unknown mutator {name!r}")
        out.extend(MUTATORS[name].apply(fn))
    return out


# ---------------------------------------------------------------------------
# shared helpers


def _copy(fn: Function) -> Function:
    module = parse_module(print_function(fn))
    return module.get_function(fn.name)


def _entry_ret(fn: Function):
    """(entry block, valued int return) for the opt-fuzz seed shape, or
    (None, None) when the seed does not match."""
    if len(fn.blocks) != 1:
        return None, None
    block = fn.blocks[0]
    term = block.terminator
    if not isinstance(term, ReturnInst) or term.value is None:
        return None, None
    if not term.value.type.is_int or term.value.type.is_vector:
        return None, None
    return block, term


def _module_text(module) -> str:
    """Like print_module, but declarations first: mutators declare
    callees after the define exists, and the parser needs them up
    front."""
    parts = []
    for g in module.globals.values():
        init = f" {g.initializer.ref()}" if g.initializer is not None else ""
        parts.append(f"@{g.name} = global {g.value_type}{init}")
    fns = list(module.functions.values())
    parts += [print_function(f) for f in fns if f.is_declaration]
    parts += [print_function(f) for f in fns if not f.is_declaration]
    return "\n\n".join(parts) + "\n"


def _mutation(name: str, kind: str, fn: Function, copy: Function,
              site: str, detail: str) -> Mutation:
    return Mutation(mutator=name, kind=kind, seed=fn.name, site=site,
                    detail=detail, ir=_module_text(copy.module))


def _inst_at(fn: Function, index: int) -> BinaryInst:
    return fn.blocks[0].instructions[index]


def _route_to_branch(copy: Function, watch, freeze: bool) -> None:
    """Replace the entry return with ``icmp ne watch, 0`` feeding a
    conditional branch into two fresh return blocks (optionally through
    a freeze) — the smallest CFG that makes ``watch``'s poison reach a
    branch terminator."""
    block = copy.blocks[0]
    ret = block.terminator
    val = ret.value
    ty = watch.type
    block.remove(ret)
    cmp_ = IcmpInst(IcmpPred.NE, watch, ConstantInt(ty, 0), "atk.c")
    block.append(cmp_)
    cond = cmp_
    if freeze:
        fz = FreezeInst(cmp_, "atk.fc")
        block.append(fz)
        cond = fz
    taken = BasicBlock("atk.t", parent=copy)
    taken.append(ReturnInst(val))
    other = BasicBlock("atk.f", parent=copy)
    other.append(ReturnInst(ConstantInt(val.type, 0)))
    block.append(BranchInst(cond=cond, true_block=taken,
                            false_block=other))


def _append_divisor_sink(copy: Function, value) -> None:
    """Insert ``udiv 1, value`` before the return: poison in ``value``
    becomes an immediate-UB divisor."""
    block = copy.blocks[0]
    ret = block.terminator
    div = BinaryInst(Opcode.UDIV, ConstantInt(value.type, 1), value,
                     "atk.d")
    block.insert_before(ret, div)


# ---------------------------------------------------------------------------
# UB-injecting mutators


@_register(
    "add-nsw", KIND_UB_INJECT,
    "Set nsw on a flagless add/sub/mul/shl: overflow now generates "
    "poison the seed did not have.")
def _mut_add_nsw(fn: Function) -> List[Mutation]:
    return _set_flag(fn, "add-nsw", "nsw")


@_register(
    "add-nuw", KIND_UB_INJECT,
    "Set nuw on a flagless add/sub/mul/shl: unsigned wrap now "
    "generates poison the seed did not have.")
def _mut_add_nuw(fn: Function) -> List[Mutation]:
    return _set_flag(fn, "add-nuw", "nuw")


def _set_flag(fn: Function, name: str, flag: str) -> List[Mutation]:
    block, _ = _entry_ret(fn)
    if block is None:
        return []
    out: List[Mutation] = []
    for i, inst in enumerate(block.instructions):
        if not isinstance(inst, BinaryInst):
            continue
        if inst.opcode not in OVERFLOW_OPCODES:
            continue
        if inst.nsw or inst.nuw or inst.exact:
            continue
        copy = _copy(fn)
        target = _inst_at(copy, i)
        setattr(target, flag, True)
        out.append(_mutation(
            name, KIND_UB_INJECT, fn, copy, site=target.ref(),
            detail=f"set {flag} on {print_instruction(target)}"))
    return out


@_register(
    "add-exact", KIND_UB_INJECT,
    "Set exact on a division/shift-right: a remainder or shifted-out "
    "bit now generates poison the seed did not have.")
def _mut_add_exact(fn: Function) -> List[Mutation]:
    block, _ = _entry_ret(fn)
    if block is None:
        return []
    out: List[Mutation] = []
    for i, inst in enumerate(block.instructions):
        if not isinstance(inst, BinaryInst):
            continue
        if inst.opcode not in EXACT_OPCODES or inst.exact:
            continue
        copy = _copy(fn)
        target = _inst_at(copy, i)
        target.exact = True
        out.append(_mutation(
            "add-exact", KIND_UB_INJECT, fn, copy, site=target.ref(),
            detail=f"set exact on {print_instruction(target)}"))
    return out


@_register(
    "narrow-shift", KIND_UB_INJECT,
    "Force a shift amount to the full bitwidth (always out of range, "
    "always poison) and route the result into a conditional branch.")
def _mut_narrow_shift(fn: Function) -> List[Mutation]:
    block, _ = _entry_ret(fn)
    if block is None:
        return []
    out: List[Mutation] = []
    for i, inst in enumerate(block.instructions):
        if not (isinstance(inst, BinaryInst) and inst.opcode in _SHIFTS):
            continue
        copy = _copy(fn)
        target = _inst_at(copy, i)
        width = target.type.bitwidth()
        target.set_operand(1, ConstantInt(target.type, width))
        _route_to_branch(copy, target, freeze=False)
        out.append(_mutation(
            "narrow-shift", KIND_UB_INJECT, fn, copy, site=target.ref(),
            detail=(f"shift amount forced to {width} (out of range) on "
                    f"{print_instruction(target)}; result branches")))
    return out


@_register(
    "poison-operand", KIND_UB_INJECT,
    "Replace a binary operand with the poison literal and feed the "
    "result to a division divisor.")
def _mut_poison_operand(fn: Function) -> List[Mutation]:
    return _literal_operand(fn, "poison-operand", PoisonValue)


@_register(
    "undef-operand", KIND_UB_INJECT,
    "Replace a binary operand with the undef literal and feed the "
    "result to a division divisor.")
def _mut_undef_operand(fn: Function) -> List[Mutation]:
    return _literal_operand(fn, "undef-operand", UndefValue)


def _literal_operand(fn: Function, name: str, ctor) -> List[Mutation]:
    block, _ = _entry_ret(fn)
    if block is None:
        return []
    out: List[Mutation] = []
    for i, inst in enumerate(block.instructions):
        if not isinstance(inst, BinaryInst):
            continue
        if not inst.type.is_int or inst.type.is_vector:
            continue
        copy = _copy(fn)
        target = _inst_at(copy, i)
        literal = ctor(target.operand(0).type)
        target.set_operand(0, literal)
        _append_divisor_sink(copy, target)
        out.append(_mutation(
            name, KIND_UB_INJECT, fn, copy, site=target.ref(),
            detail=(f"lhs of {print_instruction(target)} replaced with "
                    f"{literal.ref()}; result feeds a divisor")))
    return out


@_register(
    "route-branch", KIND_UB_INJECT,
    "Route the returned value into a conditional branch: any poison in "
    "it now reaches a branch-on-poison UB site.")
def _mut_route_branch(fn: Function) -> List[Mutation]:
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    copy = _copy(fn)
    _route_to_branch(copy, copy.blocks[0].terminator.value, freeze=False)
    return [_mutation(
        "route-branch", KIND_UB_INJECT, fn, copy, site=ret.value.ref(),
        detail=f"returned value {ret.value.ref()} routed to a branch")]


@_register(
    "route-divisor", KIND_UB_INJECT,
    "Feed the returned value to a division divisor: any poison in it "
    "now reaches an immediate-UB sink.")
def _mut_route_divisor(fn: Function) -> List[Mutation]:
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    copy = _copy(fn)
    _append_divisor_sink(copy, copy.blocks[0].terminator.value)
    return [_mutation(
        "route-divisor", KIND_UB_INJECT, fn, copy, site=ret.value.ref(),
        detail=f"returned value {ret.value.ref()} feeds a udiv divisor")]


@_register(
    "route-call", KIND_UB_INJECT,
    "Hand the returned value to an opaque external call: poison "
    "escaping to unknown code.")
def _mut_route_call(fn: Function) -> List[Mutation]:
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    copy = _copy(fn)
    cblock = copy.blocks[0]
    cret = cblock.terminator
    val = cret.value
    callee = copy.module.declare(
        SINK_NAME, FunctionType(VoidType(), (val.type,)))
    cblock.insert_before(cret, CallInst(callee, [val]))
    return [_mutation(
        "route-call", KIND_UB_INJECT, fn, copy, site=ret.value.ref(),
        detail=(f"returned value {ret.value.ref()} passed to "
                f"@{SINK_NAME}"))]


@_register(
    "hoist-dispatch", KIND_UB_INJECT,
    "Wrap the seed in the unswitched-loop dispatch shape: the returned "
    "value selects (unfrozen) between two loop copies — the paper's "
    "Section 4 loop-unswitching hazard.")
def _mut_hoist_dispatch(fn: Function) -> List[Mutation]:
    return _dispatch(fn, "hoist-dispatch", KIND_UB_INJECT, freeze=False)


# ---------------------------------------------------------------------------
# UB-removing mutators


@_register(
    "drop-flags", KIND_UB_REMOVE,
    "Drop all poison flags from a flagged instruction and feed its "
    "result to a divisor: the sink is now poison-free from that "
    "producer.")
def _mut_drop_flags(fn: Function) -> List[Mutation]:
    block, _ = _entry_ret(fn)
    if block is None:
        return []
    out: List[Mutation] = []
    for i, inst in enumerate(block.instructions):
        if not isinstance(inst, BinaryInst):
            continue
        if not (inst.nsw or inst.nuw or inst.exact):
            continue
        copy = _copy(fn)
        target = _inst_at(copy, i)
        flags = target.flags_str().strip()
        target.drop_poison_flags()
        _append_divisor_sink(copy, target)
        out.append(_mutation(
            "drop-flags", KIND_UB_REMOVE, fn, copy, site=target.ref(),
            detail=(f"dropped '{flags}' from {print_instruction(target)}; "
                    f"result feeds a divisor")))
    return out


@_register(
    "insert-freeze", KIND_UB_REMOVE,
    "Freeze the returned value and feed the frozen result to a "
    "divisor: the sink is provably poison-free, so ub-sink must stay "
    "silent and redundant-freeze may only fire when the operand is "
    "provably clean.")
def _mut_insert_freeze(fn: Function) -> List[Mutation]:
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    copy = _copy(fn)
    cblock = copy.blocks[0]
    cret = cblock.terminator
    val = cret.value
    fz = FreezeInst(val, "atk.fz")
    cblock.insert_before(cret, fz)
    _append_divisor_sink(copy, fz)
    cret.set_operand(0, fz)
    return [_mutation(
        "insert-freeze", KIND_UB_REMOVE, fn, copy, site=ret.value.ref(),
        detail=(f"returned value {ret.value.ref()} frozen; frozen "
                f"result feeds a divisor and the return"))]


@_register(
    "guard-branch", KIND_UB_REMOVE,
    "Route the returned value into a conditional branch *through a "
    "freeze*: the branch is UB-free and branch-on-maybe-poison must "
    "stay silent.")
def _mut_guard_branch(fn: Function) -> List[Mutation]:
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    copy = _copy(fn)
    _route_to_branch(copy, copy.blocks[0].terminator.value, freeze=True)
    return [_mutation(
        "guard-branch", KIND_UB_REMOVE, fn, copy, site=ret.value.ref(),
        detail=(f"returned value {ret.value.ref()} branches through a "
                f"freeze guard"))]


@_register(
    "freeze-dispatch", KIND_UB_REMOVE,
    "The unswitched-loop dispatch shape with the condition correctly "
    "frozen (the paper's fix): missing-freeze-on-hoist must stay "
    "silent.")
def _mut_freeze_dispatch(fn: Function) -> List[Mutation]:
    return _dispatch(fn, "freeze-dispatch", KIND_UB_REMOVE, freeze=True)


@_register(
    "discard-result", KIND_UB_REMOVE,
    "Replace the returned value with a constant: flags on "
    "now-unobserved instructions become dead and dead-on-poison-flag "
    "must fire.")
def _mut_discard_result(fn: Function) -> List[Mutation]:
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    if not any(isinstance(i, BinaryInst) and (i.nsw or i.nuw or i.exact)
               for i in block.instructions):
        return []
    copy = _copy(fn)
    cret = copy.blocks[0].terminator
    cret.set_operand(0, ConstantInt(cret.value.type, 0))
    return [_mutation(
        "discard-result", KIND_UB_REMOVE, fn, copy,
        site=ret.value.ref(),
        detail=(f"returned value {ret.value.ref()} replaced with 0; "
                f"poison flags upstream become unobservable"))]


# ---------------------------------------------------------------------------
# dispatch template (shared by hoist-dispatch / freeze-dispatch)


def _dispatch(fn: Function, name: str, kind: str,
              freeze: bool) -> List[Mutation]:
    """Build the unswitched-dispatch mutant as text: the seed body, then
    a branch on (optionally frozen) ``icmp ne ret, 0`` selecting between
    two single-block loops that each run one iteration and return."""
    block, ret = _entry_ret(fn)
    if block is None:
        return []
    val = ret.value
    ty = str(val.type)
    vref = val.ref()
    args = ", ".join(f"{a.type} {a.ref()}" for a in fn.args)
    body = [f"  {print_instruction(i)}"
            for i in block.instructions if i is not ret]
    cond = "%atk.fc" if freeze else "%atk.c"
    lines = [f"define {ty} @{fn.name}({args}) {{", "entry:"]
    lines += body
    lines.append(f"  %atk.c = icmp ne {ty} {vref}, 0")
    if freeze:
        lines.append("  %atk.fc = freeze i1 %atk.c")
    lines.append(f"  br i1 {cond}, label %atk.l1, label %atk.l2")
    for n, result in (("1", vref), ("2", "0")):
        lines += [
            f"atk.l{n}:",
            (f"  %atk.p{n} = phi {ty} [ 1, %entry ], "
             f"[ %atk.n{n}, %atk.l{n} ]"),
            f"  %atk.n{n} = sub {ty} %atk.p{n}, 1",
            f"  %atk.c{n} = icmp ne {ty} %atk.n{n}, 0",
            f"  br i1 %atk.c{n}, label %atk.l{n}, label %atk.x{n}",
            f"atk.x{n}:",
            f"  ret {ty} {result}",
        ]
    lines.append("}")
    text = "\n".join(lines) + "\n"
    try:  # a template bug must surface as "no mutant", not a crash
        module = parse_module(text)
    except Exception:
        return []
    copy = module.get_function(fn.name)
    return [_mutation(
        name, kind, fn, copy, site=ret.value.ref(),
        detail=(f"seed wrapped in {'frozen ' if freeze else ''}"
                f"loop-dispatch on {ret.value.ref()}"))]
