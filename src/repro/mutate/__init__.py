"""repro.mutate: semantics-aware IR mutators + exact-oracle scoring.

The adversarial half of the checker-validation story: mutators perturb
corpus functions toward (UB-injecting) or away from (UB-removing) the
hazards each lint rule covers, and the ground-truth classifier scores
every fired/silent verdict against exhaustive behavior enumeration.
``repro campaign lint-attack`` drives both at campaign scale.
"""

from .ground_truth import (
    VERDICTS,
    ClassifyOptions,
    Observation,
    attacked_rules,
    classify_mutation,
    tally_verdicts,
)
from .mutators import (
    KIND_UB_INJECT,
    KIND_UB_REMOVE,
    MUTATORS,
    SINK_NAME,
    Mutation,
    Mutator,
    all_mutator_names,
    mutate_function,
    rules_attacked_by,
)

__all__ = [
    "VERDICTS", "ClassifyOptions", "Observation",
    "attacked_rules", "classify_mutation", "tally_verdicts",
    "KIND_UB_INJECT", "KIND_UB_REMOVE", "MUTATORS", "SINK_NAME",
    "Mutation", "Mutator", "all_mutator_names", "mutate_function",
    "rules_attacked_by",
]
