"""Static analyses: CFG, dominators, loops, value tracking, SCEV."""

from .cfg import (
    postorder,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from .dominators import DominatorTree
from .loops import Loop, LoopInfo
from .poison_flow import (
    MAY_POISON,
    MUST_NOT_POISON,
    MUST_POISON,
    PoisonFact,
    PoisonFlowResult,
    analyze_poison_flow,
    join_facts,
    taint_sources,
)
from .scalar_evolution import AddRec, ScalarEvolution
from .value_tracking import (
    KnownBits,
    compute_known_bits,
    is_guaranteed_not_poison,
    is_known_nonzero,
    is_known_power_of_two,
)

__all__ = [
    "postorder", "predecessor_map", "reachable_blocks",
    "remove_unreachable_blocks", "reverse_postorder",
    "DominatorTree", "Loop", "LoopInfo", "AddRec", "ScalarEvolution",
    "MAY_POISON", "MUST_NOT_POISON", "MUST_POISON",
    "PoisonFact", "PoisonFlowResult", "analyze_poison_flow",
    "join_facts", "taint_sources",
    "KnownBits", "compute_known_bits", "is_guaranteed_not_poison",
    "is_known_nonzero", "is_known_power_of_two",
]
