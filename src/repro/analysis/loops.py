"""Natural-loop detection from dominator back edges.

Provides the loop structure that LICM and loop unswitching operate on:
headers, bodies, preheaders, exits, and loop-invariance queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Argument, Constant
from .cfg import predecessor_map
from .dominators import DominatorTree


class Loop:
    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def contains_inst(self, inst: Instruction) -> bool:
        return inst.parent in self.blocks

    # -- derived structure ------------------------------------------------
    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if it has a
        single successor (the canonical preheader shape)."""
        outside = [
            p for p in self.header.predecessors() if p not in self.blocks
        ]
        if len(outside) == 1 and len(outside[0].successors()) == 1:
            return outside[0]
        return None

    def exiting_blocks(self) -> List[BasicBlock]:
        return [
            b for b in self.blocks
            if any(s not in self.blocks for s in b.successors())
        ]

    def exit_blocks(self) -> List[BasicBlock]:
        seen: Set[BasicBlock] = set()
        out: List[BasicBlock] = []
        for b in self.blocks:
            for s in b.successors():
                if s not in self.blocks and s not in seen:
                    seen.add(s)
                    out.append(s)
        return out

    def is_invariant(self, value) -> bool:
        """Is ``value`` loop-invariant (defined outside the loop)?"""
        if isinstance(value, (Constant, Argument)):
            return True
        if isinstance(value, Instruction):
            return value.parent not in self.blocks
        return False

    @property
    def depth(self) -> int:
        d = 1
        p = self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def __repr__(self) -> str:
        return (
            f"<Loop header=%{self.header.name} "
            f"({len(self.blocks)} blocks, depth {self.depth})>"
        )


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, fn: Function, dt: Optional[DominatorTree] = None):
        self.function = fn
        self.dt = dt or DominatorTree(fn)
        self.loops: List[Loop] = []
        self._loop_of: Dict[BasicBlock, Loop] = {}
        self._find_loops()

    def _find_loops(self) -> None:
        preds = predecessor_map(self.function)
        by_header: Dict[BasicBlock, Loop] = {}

        # A back edge is an edge whose target dominates its source.
        for block in self.dt.rpo:
            for succ in block.successors():
                if self.dt.dominates_block(succ, block):
                    loop = by_header.get(succ)
                    if loop is None:
                        loop = Loop(succ)
                        by_header[succ] = loop
                    loop.latches.append(block)
                    self._collect_body(loop, block, preds)

        self.loops = list(by_header.values())
        # Nesting: a loop is a child of the innermost other loop whose
        # block set strictly contains its header.
        for loop in self.loops:
            best: Optional[Loop] = None
            for other in self.loops:
                if other is loop:
                    continue
                if loop.header in other.blocks and loop.blocks < other.blocks:
                    if best is None or len(other.blocks) < len(best.blocks):
                        best = other
            loop.parent = best
            if best is not None:
                best.children.append(loop)
        # innermost-loop map
        for loop in sorted(self.loops, key=lambda l: -len(l.blocks)):
            for block in loop.blocks:
                self._loop_of[block] = loop

    def _collect_body(self, loop: Loop, latch: BasicBlock, preds) -> None:
        """Blocks of the natural loop: everything that can reach the latch
        without passing through the header."""
        work = [latch]
        while work:
            block = work.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            for pred in preds.get(block, []):
                work.append(pred)

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        return self._loop_of.get(block)

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def in_loop(self, inst: Instruction) -> bool:
        return inst.parent in self._loop_of
