"""Control-flow-graph utilities: reachability, traversal orders, edges."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    return block.successors()


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessors of every block, computed in one pass (cheaper than
    per-block :meth:`BasicBlock.predecessors`)."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    if fn.is_declaration:
        return set()
    seen: Set[BasicBlock] = set()
    work = [fn.entry]
    while work:
        block = work.pop()
        if block in seen:
            continue
        seen.add(block)
        work.extend(block.successors())
    return seen


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse postorder over reachable blocks — the canonical forward
    dataflow iteration order."""
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(block)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(fn.entry)
    order.reverse()
    return order


def postorder(fn: Function) -> List[BasicBlock]:
    order = reverse_postorder(fn)
    order.reverse()
    return order


def remove_unreachable_blocks(fn: Function) -> int:
    """Delete blocks not reachable from entry; fix up phi nodes in the
    survivors.  Returns the number of removed blocks."""
    from ..ir.instructions import PhiInst

    reachable = reachable_blocks(fn)
    dead = [b for b in fn.blocks if b not in reachable]
    if not dead:
        return 0
    dead_set = set(dead)
    for block in fn.blocks:
        if block in dead_set:
            continue
        for phi in block.phis():
            for pred in list(phi.incoming_blocks):
                if pred in dead_set:
                    phi.remove_incoming(pred)
    for block in dead:
        for inst in list(block.instructions):
            inst.replace_all_uses_with(_poison_like(inst))
            block.erase(inst)
        fn.remove_block(block)
    return len(dead)


def _poison_like(inst):
    from ..ir.values import PoisonValue

    if inst.type.is_void:
        return inst
    return PoisonValue(inst.type)
