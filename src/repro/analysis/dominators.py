"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

"A Simple, Fast Dominance Algorithm" (2001).  Quadratic in the worst
case but simple and fast on real CFGs; LLVM used exactly this algorithm
for years.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    def __init__(self, fn: Function):
        self.function = fn
        self.rpo = reverse_postorder(fn)
        self._rpo_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self.rpo)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in self.rpo
        }
        for block, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(block)
        self._level: Dict[BasicBlock, int] = {}
        self._compute_levels()

    def _compute(self) -> None:
        entry = self.function.entry
        preds = predecessor_map(self.function)
        index = self._rpo_index
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds[block]:
                    if pred not in index or pred not in idom:
                        continue  # unreachable or not yet processed
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {b: (None if b is entry else idom[b]) for b in self.rpo}

    def _compute_levels(self) -> None:
        for block in self.rpo:  # rpo guarantees idom precedes block
            parent = self.idom[block]
            self._level[block] = 0 if parent is None else self._level[parent] + 1

    # -- queries -----------------------------------------------------------
    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does block ``a`` dominate block ``b``? (reflexive)"""
        if a not in self._level or b not in self._level:
            return False
        while self._level[b] > self._level[a]:
            b = self.idom[b]  # type: ignore[assignment]
        return a is b

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, def_inst, use_inst: Instruction) -> bool:
        """Does the *definition* dominate the *use*?  Handles same-block
        ordering and the phi-use rule (a phi use is tested at the end of
        the corresponding incoming block)."""
        from ..ir.values import Argument, Constant

        if isinstance(def_inst, (Constant, Argument)):
            return True
        def_block = def_inst.parent
        use_block = use_inst.parent
        if isinstance(use_inst, PhiInst):
            # handled by caller via dominates_edge; treat as block-level
            return self.dominates_block(def_block, use_block)
        if def_block is use_block:
            insts = def_block.instructions
            return insts.index(def_inst) < insts.index(use_inst)
        return self.dominates_block(def_block, use_block)

    def dominates_edge(self, def_inst, pred_block: BasicBlock) -> bool:
        """For a phi incoming (value, pred): the def must dominate the end
        of the predecessor block."""
        from ..ir.values import Argument, Constant

        if isinstance(def_inst, (Constant, Argument)):
            return True
        return self.dominates_block(def_inst.parent, pred_block)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Classic DF computation (used by mem2reg-style phi placement)."""
        preds = predecessor_map(self.function)
        df: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        for block in self.rpo:
            plist = [p for p in preds[block] if p in self._rpo_index]
            if len(plist) < 2:
                continue
            for pred in plist:
                runner = pred
                while runner is not self.idom[block]:
                    df[runner].add(block)
                    runner = self.idom[runner]  # type: ignore[assignment]
        return df
