"""A small scalar-evolution analysis: add-recurrence recognition.

Recognizes affine induction variables ``{start, +, step}`` and computes
trip counts for simple counted loops.  Section 10.1 of the paper notes
that LLVM's scalar evolution "currently fails to analyze expressions
involving freeze"; we reproduce that behavior (a freeze input yields
``None`` — unanalyzable) unless ``freeze_aware`` is set, which looks
through freeze when the operand is already analyzable.  The E8 ablation
measures what that costs.

SCEV facts are *up-to-poison* (Section 5.6): an ``nsw`` add-rec's range
facts hold only on executions where the IV does not overflow (if it
does, the value is poison and all bets are off).  The ``no_wrap`` flag
records whether the recurrence's step additions carried ``nsw``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.instructions import (
    BinaryInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    PhiInst,
)
from ..ir.values import ConstantInt, Value
from .loops import Loop


@dataclass(frozen=True)
class AddRec:
    """The affine recurrence {start, +, step} over a loop."""

    start: Value
    step: int
    loop: Loop
    no_wrap: bool  # the increment carried nsw

    def __str__(self) -> str:
        s = getattr(self.start, "ref", lambda: str(self.start))()
        wrap = "<nsw>" if self.no_wrap else ""
        return f"{{{s},+,{self.step}}}{wrap}"


class ScalarEvolution:
    def __init__(self, loop: Loop, freeze_aware: bool = False):
        self.loop = loop
        self.freeze_aware = freeze_aware

    def as_add_rec(self, value: Value) -> Optional[AddRec]:
        """Recognize ``value`` as an affine IV of this loop."""
        if isinstance(value, FreezeInst):
            if not self.freeze_aware:
                return None  # the Section 10.1 limitation
            return self.as_add_rec(value.value)
        if not isinstance(value, PhiInst):
            return None
        if value.parent is not self.loop.header:
            return None
        start: Optional[Value] = None
        step: Optional[int] = None
        no_wrap = True
        for incoming, pred in value.incoming:
            if pred not in self.loop.blocks:
                if start is not None and start is not incoming:
                    return None
                start = incoming
            else:
                inc = self._match_increment(incoming, value)
                if inc is None:
                    return None
                this_step, this_nsw = inc
                if step is not None and step != this_step:
                    return None
                step = this_step
                no_wrap = no_wrap and this_nsw
        if start is None or step is None:
            return None
        return AddRec(start, step, self.loop, no_wrap)

    def _match_increment(self, value: Value, phi: PhiInst):
        if isinstance(value, FreezeInst) and self.freeze_aware:
            value = value.value
        if not isinstance(value, BinaryInst):
            return None

        def is_iv(op: Value) -> bool:
            if op is phi:
                return True
            # Looking through a freeze of the IV itself requires
            # freeze-awareness (Section 10.1's limitation).
            return (self.freeze_aware and isinstance(op, FreezeInst)
                    and op.value is phi)

        if value.opcode is Opcode.ADD and is_iv(value.lhs) \
                and isinstance(value.rhs, ConstantInt):
            return value.rhs.signed_value, value.nsw
        if value.opcode is Opcode.ADD and is_iv(value.rhs) \
                and isinstance(value.lhs, ConstantInt):
            return value.lhs.signed_value, value.nsw
        if value.opcode is Opcode.SUB and is_iv(value.lhs) \
                and isinstance(value.rhs, ConstantInt):
            return -value.rhs.signed_value, value.nsw
        return None

    def trip_count(self) -> Optional[int]:
        """Constant trip count of a ``for (i = C0; i <pred> C1; i += s)``
        loop, when the guard is analyzable; ``None`` otherwise."""
        header = self.loop.header
        term = header.terminator
        from ..ir.instructions import BranchInst

        if not isinstance(term, BranchInst) or not term.is_conditional:
            return None
        cond = term.cond
        if not isinstance(cond, IcmpInst):
            return None
        body_on_true = term.true_block in self.loop.blocks
        iv = self.as_add_rec(cond.lhs)
        if iv is None or not isinstance(cond.rhs, ConstantInt):
            return None
        if not isinstance(iv.start, ConstantInt):
            return None
        width = cond.rhs.type.bits  # type: ignore[union-attr]
        bound = cond.rhs.signed_value if cond.pred.is_signed \
            else cond.rhs.value
        i = iv.start.signed_value if cond.pred.is_signed else iv.start.value
        count = 0
        limit = 1 << (width + 2)
        while count < limit:
            taken = self._cmp(cond.pred, i, bound)
            if taken != body_on_true:
                return count
            count += 1
            i += iv.step
            if not iv.no_wrap:
                i = self._wrap(i, width, cond.pred.is_signed)
        return None  # does not look like it terminates

    @staticmethod
    def _cmp(pred: IcmpPred, a: int, b: int) -> bool:
        return {
            IcmpPred.EQ: a == b, IcmpPred.NE: a != b,
            IcmpPred.UGT: a > b, IcmpPred.UGE: a >= b,
            IcmpPred.ULT: a < b, IcmpPred.ULE: a <= b,
            IcmpPred.SGT: a > b, IcmpPred.SGE: a >= b,
            IcmpPred.SLT: a < b, IcmpPred.SLE: a <= b,
        }[pred]

    @staticmethod
    def _wrap(v: int, width: int, signed: bool) -> int:
        v &= (1 << width) - 1
        if signed and v >= 1 << (width - 1):
            v -= 1 << width
        return v
