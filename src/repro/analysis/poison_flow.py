"""Flow-sensitive poison dataflow: the fixpoint companion to
:func:`~repro.analysis.value_tracking.is_guaranteed_not_poison`.

Section 5.6 of the paper ("Pitfall 2") splits static facts into
*up-to-poison* facts (known bits) and poison-freedom facts.  The shallow
recursive walk in :mod:`value_tracking` proves the latter only for
straight-line expression trees.  This module computes the same property
as a forward dataflow over the whole function:

* **Lattice** (per SSA value)::

      MustPoison ⊑ MayPoison ⊒ MustNotPoison

  ``MustNotPoison`` — every execution reaching the def produces a fully
  defined value (no poison, no undef bits).  ``MustPoison`` — every
  execution reaching the def produces poison.  ``MayPoison`` is top;
  an internal ``Bottom`` (never executed / not yet seen) is the phi
  join identity, exactly as in sparse conditional constant propagation.

* **Transfer functions** follow the paper's Fig. 5 semantics (mirrored
  executably in :mod:`repro.semantics.eval`): the flag-carrying ops
  (``nsw``/``nuw``/``exact``) and out-of-range shifts *generate*
  poison; ordinary arithmetic, ``icmp``, casts and ``getelementptr``
  *propagate* it; and the three poison-blocking instructions behave per
  the semantics config — ``freeze`` always blocks, ``phi`` joins only
  executed edges, ``select`` blocks the unchosen arm under the
  CONDITIONAL reading (and none under ARITHMETIC).

* **Dominating-branch refinement**: under branch-on-poison-is-UB, a use
  strictly dominated by ``br i1 (icmp ... %v ...)`` cannot observe a
  poison ``%v`` — if ``%v`` were poison the branch itself was UB — so
  the fact is strengthened to ``MustNotPoison`` at that use.  This is
  what makes the analysis *flow-sensitive*: the same SSA value can be
  ``MayPoison`` at its def and ``MustNotPoison`` inside a guarded block.

* **Memory** is handled conservatively through the existing bit-level
  model: a load forwards the stored fact only from a same-block store
  to the *same pointer SSA value* with no intervening write or call;
  anything else is ``MayPoison`` with an external origin.

Every fact additionally carries its *origins* — which poison sources
taint it.  Origins distinguish poison *generated* inside the function
(flag ops, oob shifts, ``poison``/``undef`` literals) from values that
are merely *external* (arguments, calls, loads).  The lint rules key on
this: branching on an argument is everyday IR, branching on an
``nsw``-generated maybe-poison is a latent bug.

Soundness of every ``Must*`` claim is differentially validated against
:func:`~repro.semantics.interp.enumerate_behaviors` by
``python -m repro campaign lint-audit`` (and the hypothesis property in
``tests/analysis/test_poison_flow.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..diag import Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    DIVISION_OPCODES,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    SelectInst,
    StoreInst,
    SwitchInst,
)
from ..ir.types import IntType
from ..ir.values import (
    Argument,
    Constant,
    ConstantInt,
    ConstantVector,
    GlobalVariable,
    PoisonValue,
    UndefValue,
    Value,
)
from ..semantics.config import (
    NEW,
    BranchOnPoison,
    SelectSemantics,
    SemanticsConfig,
)
from .dominators import DominatorTree

NUM_FUNCTIONS_ANALYZED = Statistic(
    "poison-flow", "num-functions-analyzed",
    "Functions run through the poison dataflow fixpoint")
NUM_FIXPOINT_ITERATIONS = Statistic(
    "poison-flow", "num-fixpoint-iterations",
    "Total RPO sweeps until the poison dataflow stabilized")
NUM_REFINED_USES = Statistic(
    "poison-flow", "num-branch-refinements",
    "Facts strengthened to MustNotPoison by a dominating branch")

# Lattice states.  BOTTOM is internal (phi join identity).
BOTTOM = "bottom"
MUST_NOT_POISON = "must-not-poison"
MAY_POISON = "may-poison"
MUST_POISON = "must-poison"

#: Origin kinds: where a (maybe-)poison taint comes from.
ORIGIN_GENERATED = "generated"   # flag op / oob shift / inbounds gep inside fn
ORIGIN_LITERAL = "literal"       # poison / undef constant in the IR
ORIGIN_EXTERNAL = "external"     # argument, call result, loaded memory

#: One origin: (kind, human-readable description).
Origin = Tuple[str, str]


@dataclass(frozen=True)
class PoisonFact:
    """One lattice element: state plus the taint origins behind it."""

    state: str
    origins: FrozenSet[Origin] = frozenset()

    @property
    def is_bottom(self) -> bool:
        return self.state == BOTTOM

    @property
    def is_must_not_poison(self) -> bool:
        return self.state == MUST_NOT_POISON

    @property
    def is_must_poison(self) -> bool:
        return self.state == MUST_POISON

    @property
    def may_be_poison(self) -> bool:
        return self.state in (MAY_POISON, MUST_POISON)

    @property
    def has_generated_origin(self) -> bool:
        """Does any taint originate *inside* the function (a flag op,
        oob shift, or a poison/undef literal)?  The lint rules use this
        to separate latent bugs from ordinary unknown inputs."""
        return any(k in (ORIGIN_GENERATED, ORIGIN_LITERAL)
                   for k, _ in self.origins)

    def describe_origins(self, limit: int = 3) -> str:
        descs = sorted(d for _, d in self.origins)
        if not descs:
            return ""
        shown = ", ".join(descs[:limit])
        if len(descs) > limit:
            shown += f", ... ({len(descs) - limit} more)"
        return shown

    def __str__(self) -> str:
        return self.state


FACT_BOTTOM = PoisonFact(BOTTOM)
FACT_MUST_NOT = PoisonFact(MUST_NOT_POISON)


def _may(origins: FrozenSet[Origin]) -> PoisonFact:
    return PoisonFact(MAY_POISON, origins)


def _must(origins: FrozenSet[Origin]) -> PoisonFact:
    return PoisonFact(MUST_POISON, origins)


def join_facts(a: PoisonFact, b: PoisonFact) -> PoisonFact:
    """Least upper bound in ``MustPoison ⊑ MayPoison ⊒ MustNotPoison``."""
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    origins = a.origins | b.origins
    if a.state == b.state:
        return PoisonFact(a.state, origins)
    # Mixed Must/MustNot/May all meet at the top.
    return PoisonFact(MAY_POISON, origins)


def _propagate(operands, extra_origins=frozenset()):
    """Plain taint propagation: poison in, poison out; blocked by
    nothing.  ``operands`` is a list of PoisonFacts."""
    if any(f.is_bottom for f in operands):
        return FACT_BOTTOM
    origins = frozenset().union(*(f.origins for f in operands)) \
        if operands else frozenset()
    origins |= extra_origins
    if any(f.is_must_poison for f in operands):
        return _must(origins)
    if extra_origins:
        return _may(origins)
    if all(f.is_must_not_poison for f in operands):
        return FACT_MUST_NOT
    return _may(origins)


class PoisonFlowResult:
    """Queryable fixpoint of the poison dataflow for one function.

    ``fact_of(value)`` is the context-free fact at the def;
    ``fact_at(value, block)`` additionally applies dominating-branch
    refinement for a use sited in ``block``.
    """

    def __init__(self, fn: Function, semantics: SemanticsConfig,
                 facts: Dict[int, PoisonFact],
                 refined: Dict[BasicBlock, Set[int]],
                 iterations: int, pinned: Dict[int, Value]):
        self.function = fn
        self.semantics = semantics
        self.iterations = iterations
        self._facts = facts
        self._refined = refined
        # Keep every keyed object alive so id() keys can never be
        # recycled onto new objects while this result is held.
        self._pinned = pinned

    # -- queries -----------------------------------------------------------
    def fact_of(self, value: Value) -> PoisonFact:
        """The fact at the def site (no use-site refinement)."""
        fact = self._facts.get(id(value))
        if fact is not None:
            return fact
        return constant_fact(value, self.semantics)

    def fact_at(self, value: Value, block: Optional[BasicBlock]) -> PoisonFact:
        """The fact for a use of ``value`` sited in ``block``, with
        dominating-branch refinement applied."""
        fact = self.fact_of(value)
        if block is None or fact.is_must_not_poison or fact.is_bottom:
            return fact
        refined = self._refined.get(block)
        if refined and id(value) in refined:
            NUM_REFINED_USES.inc()
            return FACT_MUST_NOT
        return fact

    def is_not_poison(self, value: Value,
                      block: Optional[BasicBlock] = None) -> bool:
        return self.fact_at(value, block).is_must_not_poison

    # -- aggregates --------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {MUST_NOT_POISON: 0, MAY_POISON: 0, MUST_POISON: 0, BOTTOM: 0}
        for fact in self._facts.values():
            out[fact.state] += 1
        return out

    def value_facts(self):
        """Iterate ``(value, fact)`` over every analyzed def."""
        for vid, fact in self._facts.items():
            yield self._pinned[vid], fact

    def generated_origin_sites(self):
        """Iterate ``(value, fact)`` over defs whose poison is traceable
        to a producer inside the function (a flagged op, an out-of-range
        shift) or a ``poison``/``undef`` literal.

        This is the mutation surface the adversarial lint-attack
        campaign perturbs: every such site is a place where a mutator
        can plausibly flip a rule's verdict, and every origin-gated rule
        fires only on these sites."""
        wanted = (ORIGIN_GENERATED, ORIGIN_LITERAL)
        for vid, fact in self._facts.items():
            if fact.may_be_poison and any(kind in wanted
                                          for kind, _ in fact.origins):
                yield self._pinned[vid], fact


def constant_fact(value: Value, semantics: SemanticsConfig) -> PoisonFact:
    """Fact for a non-instruction operand."""
    if isinstance(value, PoisonValue):
        return _must(frozenset({(ORIGIN_LITERAL, "poison literal")}))
    if isinstance(value, UndefValue):
        # Under NEW there is no undef: the interpreter executes a stray
        # UndefValue as poison.  Under OLD it is undef — never *poison*,
        # but never a defined value either, so MayPoison (top) is the
        # only sound non-Must state.
        if not semantics.has_undef:
            return _must(frozenset({(ORIGIN_LITERAL, "undef literal")}))
        return _may(frozenset({(ORIGIN_LITERAL, "undef literal")}))
    if isinstance(value, ConstantVector):
        facts = [constant_fact(e, semantics) for e in value.elements]
        return _propagate(facts)
    if isinstance(value, (ConstantInt, GlobalVariable)):
        return FACT_MUST_NOT
    if isinstance(value, Constant):
        return FACT_MUST_NOT
    if isinstance(value, Argument):
        return _may(frozenset({(ORIGIN_EXTERNAL, f"argument {value.ref()}")}))
    # Unknown value kinds: top.
    return _may(frozenset({(ORIGIN_EXTERNAL, "unknown value")}))


def taint_sources(cond: Value, limit: int = 64) -> Set[int]:
    """ids of values ``v`` with the property *v poison ⇒ cond poison*
    (or an earlier instruction was immediate UB).

    This is the backwards closure through poison-*propagating* ops only;
    the poison blockers (``freeze``, ``select`` arms, ``phi``) stop it.
    A conditional branch on ``cond`` therefore proves every one of these
    values non-poison in strictly dominated blocks (branch-on-poison is
    UB, so execution continuing past the branch refutes poison).
    """
    sources: Set[int] = set()
    work = [cond]
    while work and len(sources) < limit:
        v = work.pop()
        if id(v) in sources:
            continue
        if isinstance(v, (Constant,)):
            continue
        sources.add(id(v))
        if isinstance(v, (BinaryInst, IcmpInst)):
            # All binary ops propagate operand poison; for divisions a
            # poison divisor is immediate UB, which also refutes
            # reaching the dominated use.
            work.append(v.operand(0))
            work.append(v.operand(1))
        elif isinstance(v, CastInst):
            work.append(v.value)
        elif isinstance(v, SelectInst):
            # Only the condition is unconditionally observed; either arm
            # may be the unchosen (blocked) one.
            work.append(v.cond)
        elif isinstance(v, GepInst):
            work.append(v.pointer)
            work.append(v.index)
        # freeze / phi / load / call: blockers or unknown provenance.
    return sources


class _Analyzer:
    def __init__(self, fn: Function, semantics: SemanticsConfig):
        self.fn = fn
        self.semantics = semantics
        self.facts: Dict[int, PoisonFact] = {}
        self.pinned: Dict[int, Value] = {}
        self.dt = DominatorTree(fn)
        self.rpo = self.dt.rpo
        # Values proven non-poison *on entry* to each block by branches
        # in strict dominators, and *on exit* (adds the block's own
        # conditional terminator, for phi edges out of it).
        self.refined_in: Dict[BasicBlock, Set[int]] = {}
        self.refined_out: Dict[BasicBlock, Set[int]] = {}
        self._compute_refinements()

    # -- dominating-branch refinement -------------------------------------
    def _compute_refinements(self) -> None:
        branch_is_ub = (
            self.semantics.branch_on_poison is BranchOnPoison.UB
        )
        own: Dict[BasicBlock, Set[int]] = {}
        for block in self.rpo:
            sources: Set[int] = set()
            if branch_is_ub:
                term = block.terminator
                if isinstance(term, BranchInst) and term.is_conditional:
                    sources = taint_sources(term.cond)
                elif isinstance(term, SwitchInst):
                    sources = taint_sources(term.value)
            own[block] = sources
        for block in self.rpo:
            inherited: Set[int] = set()
            dom = self.dt.idom.get(block)
            while dom is not None:
                inherited |= own[dom]
                dom = self.dt.idom.get(dom)
            self.refined_in[block] = inherited
            self.refined_out[block] = inherited | own[block]

    # -- fixpoint ----------------------------------------------------------
    def run(self) -> PoisonFlowResult:
        for arg in self.fn.args:
            self._set(arg, constant_fact(arg, self.semantics))
        iterations = 0
        changed = True
        while changed:
            changed = False
            iterations += 1
            NUM_FIXPOINT_ITERATIONS.inc()
            for block in self.rpo:
                for inst in block.instructions:
                    if inst.type.is_void:
                        continue
                    new = self._transfer(inst)
                    old = self.facts.get(id(inst), FACT_BOTTOM)
                    if new != old:
                        self._set(inst, new)
                        changed = True
            if iterations > 2 * len(self.rpo) + 8:  # pragma: no cover
                break  # safety net; the lattice is finite, so unreached
        NUM_FUNCTIONS_ANALYZED.inc()
        return PoisonFlowResult(self.fn, self.semantics, self.facts,
                                self.refined_in, iterations, self.pinned)

    def _set(self, value: Value, fact: PoisonFact) -> None:
        self.facts[id(value)] = fact
        self.pinned[id(value)] = value

    def _operand_fact(self, value: Value, block: BasicBlock,
                      refined: Set[int]) -> PoisonFact:
        if isinstance(value, Instruction) or isinstance(value, Argument):
            fact = self.facts.get(id(value), FACT_BOTTOM)
            if isinstance(value, Argument) and fact.is_bottom:
                fact = constant_fact(value, self.semantics)
        else:
            fact = constant_fact(value, self.semantics)
        if fact.is_must_not_poison or fact.is_bottom:
            return fact
        if id(value) in refined:
            return FACT_MUST_NOT
        return fact

    # -- transfer functions ------------------------------------------------
    def _transfer(self, inst: Instruction) -> PoisonFact:
        block = inst.parent
        refined = self.refined_in[block] if block in self.refined_in \
            else set()
        opf = lambda v: self._operand_fact(v, block, refined)  # noqa: E731

        if isinstance(inst, FreezeInst):
            # The whole point of freeze: always a defined value.
            return FACT_MUST_NOT

        if isinstance(inst, BinaryInst):
            return self._transfer_binary(inst, opf)

        if isinstance(inst, IcmpInst):
            return _propagate([opf(inst.lhs), opf(inst.rhs)])

        if isinstance(inst, CastInst):
            return _propagate([opf(inst.value)])

        if isinstance(inst, SelectInst):
            return self._transfer_select(inst, opf)

        if isinstance(inst, PhiInst):
            return self._transfer_phi(inst)

        if isinstance(inst, LoadInst):
            return self._transfer_load(inst, opf)

        if isinstance(inst, AllocaInst):
            return FACT_MUST_NOT  # a fresh address is a defined value

        if isinstance(inst, CallInst):
            callee = getattr(inst.callee, "name", "?")
            return _may(frozenset({(ORIGIN_EXTERNAL, f"call @{callee}")}))

        if isinstance(inst, GepInst):
            extra = frozenset()
            if getattr(inst, "inbounds", False):
                extra = frozenset({
                    (ORIGIN_GENERATED,
                     f"{inst.ref()} (getelementptr inbounds)")})
            return _propagate([opf(inst.pointer), opf(inst.index)], extra)

        if isinstance(inst, ExtractElementInst):
            return self._transfer_indexed(inst, [opf(inst.vector)],
                                          inst.index, opf)
        if isinstance(inst, InsertElementInst):
            return self._transfer_indexed(
                inst, [opf(inst.vector), opf(inst.element)], inst.index, opf)

        # Unknown value-producing instruction: top, external.
        return _may(frozenset({(ORIGIN_EXTERNAL,
                                f"{inst.opcode.value} result")}))

    def _transfer_binary(self, inst: BinaryInst, opf) -> PoisonFact:
        fa, fb = opf(inst.lhs), opf(inst.rhs)
        if fa.is_bottom or fb.is_bottom:
            return FACT_BOTTOM

        extra: FrozenSet[Origin] = frozenset()
        flags = []
        if inst.nsw:
            flags.append("nsw")
        if inst.nuw:
            flags.append("nuw")
        if inst.exact:
            flags.append("exact")
        if flags:
            extra = frozenset({
                (ORIGIN_GENERATED,
                 f"{inst.ref()} ({inst.opcode.value} {' '.join(flags)})")})

        if inst.opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            if not self._shift_amount_in_range(inst):
                extra |= frozenset({
                    (ORIGIN_GENERATED,
                     f"{inst.ref()} (shift amount may be out of range)")})

        if inst.opcode in DIVISION_OPCODES:
            # A zero or poison divisor is *immediate* UB (not poison),
            # so if the division executes and returns, only the dividend
            # and the exact flag can make the result poison.
            if fa.is_must_poison:
                return _must(fa.origins | extra)
            if extra:
                return _may(fa.origins | fb.origins | extra)
            if fa.is_must_not_poison:
                return FACT_MUST_NOT
            return _may(fa.origins | fb.origins)

        if fa.is_must_poison or fb.is_must_poison:
            # Poison propagates through every non-division binary op
            # regardless of flags.
            return _must(fa.origins | fb.origins | extra)
        return _propagate([fa, fb], extra)

    def _shift_amount_in_range(self, inst: BinaryInst) -> bool:
        from .value_tracking import compute_known_bits

        if not isinstance(inst.type, IntType):
            return False
        width = inst.type.bits
        rhs = inst.rhs
        if isinstance(rhs, ConstantInt):
            return rhs.value < width
        if isinstance(rhs, Instruction):
            return compute_known_bits(rhs).max_unsigned < width
        return False

    def _transfer_select(self, inst: SelectInst, opf) -> PoisonFact:
        fc, ft, ff = opf(inst.cond), opf(inst.true_value), \
            opf(inst.false_value)
        if fc.is_bottom or ft.is_bottom or ff.is_bottom:
            return FACT_BOTTOM
        sel = self.semantics.select_semantics
        if sel is SelectSemantics.ARITHMETIC:
            # Poison if *any* input is poison: a plain ternary op.
            return _propagate([fc, ft, ff])
        arms = join_facts(ft, ff)
        if sel in (SelectSemantics.UB_COND, SelectSemantics.NONDET_COND):
            # A poison condition never yields a poison *result* (it is
            # UB, or a nondet pick of a defined arm); only the arms
            # matter for the result fact.
            return arms
        # CONDITIONAL (Fig. 5): poison cond poisons the result, a
        # defined cond passes through only the chosen arm.
        if fc.is_must_poison:
            return _must(fc.origins)
        if fc.is_must_not_poison:
            return arms
        if arms.is_must_poison:
            return _must(fc.origins | arms.origins)
        return _may(fc.origins | arms.origins)

    def _transfer_phi(self, inst: PhiInst) -> PoisonFact:
        # Phi blocks poison from non-executed edges: join only over
        # incoming edges, each refined by the facts proven at the *end*
        # of the incoming block (its own conditional branch included —
        # traversing the edge means the branch executed without UB).
        result = FACT_BOTTOM
        for value, pred in inst.incoming:
            if value is inst:
                continue
            refined = self.refined_out.get(pred, set())
            fact = self._operand_fact(value, pred, refined)
            result = join_facts(result, fact)
        return result

    def _transfer_load(self, inst: LoadInst, opf) -> PoisonFact:
        # Conservative bit-level memory handling: forward the stored
        # fact only from a same-block store to the same pointer SSA
        # value with no intervening may-write instruction.
        block = inst.parent
        seen_self = False
        forwarded: Optional[PoisonFact] = None
        for other in reversed(block.instructions):
            if other is inst:
                seen_self = True
                continue
            if not seen_self:
                continue
            if isinstance(other, StoreInst) and other.pointer is inst.pointer:
                forwarded = opf(other.value)
                break
            if other.may_write_memory or isinstance(other, CallInst):
                break
        if forwarded is not None:
            if forwarded.is_bottom:
                return FACT_BOTTOM
            return forwarded
        return _may(frozenset({
            (ORIGIN_EXTERNAL, f"{inst.ref()} (load from memory)")}))

    def _transfer_indexed(self, inst, operand_facts, index: Value,
                          opf) -> PoisonFact:
        # extract/insertelement: an out-of-range or poison index makes
        # the result poison.
        facts = list(operand_facts) + [opf(index)]
        count = getattr(getattr(inst, "vector", inst).type, "count", None)
        in_range = (
            isinstance(index, ConstantInt)
            and count is not None and index.value < count
        )
        extra: FrozenSet[Origin] = frozenset()
        if not in_range:
            extra = frozenset({
                (ORIGIN_GENERATED,
                 f"{inst.ref()} (element index may be out of range)")})
        return _propagate(facts, extra)


def analyze_poison_flow(fn: Function,
                        semantics: SemanticsConfig = NEW) -> PoisonFlowResult:
    """Run the fixpoint dataflow; returns a queryable result."""
    if fn.is_declaration:
        return PoisonFlowResult(fn, semantics, {}, {}, 0, {})
    return _Analyzer(fn, semantics).run()
