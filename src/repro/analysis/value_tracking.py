"""Value tracking: known bits, power-of-two, and poison-freedom analyses.

Section 5.6 of the paper ("Pitfall 2") observes that LLVM's static
analyses return facts that hold only *if the analyzed values are not
poison*: ``isKnownToBeAPowerOfTwo(shl 1, %y)`` says "power of two", yet
if ``%y`` is poison the value is poison and can be anything.  That is
fine for expression rewriting but unsound for hoisting past control
flow.

We implement the same design, making the caveat explicit in the API:
every fact from :class:`KnownBits` / :func:`is_known_power_of_two` is an
*up-to-poison* fact, and :func:`is_guaranteed_not_poison` is the separate
analysis a hoisting client must additionally consult — exactly the API
split the paper reports LLVM considering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.instructions import (
    BinaryInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    Instruction,
    Opcode,
    PhiInst,
    SelectInst,
)
from ..ir.types import IntType
from ..ir.values import (
    Argument,
    ConstantInt,
    PoisonValue,
    UndefValue,
    Value,
)


@dataclass(frozen=True)
class KnownBits:
    """Bits known to be zero / one (valid only if the value is not
    poison/undef)."""

    zeros: int  # mask of bits known to be 0
    ones: int   # mask of bits known to be 1
    width: int

    def __post_init__(self):
        assert self.zeros & self.ones == 0, "conflicting known bits"

    @staticmethod
    def unknown(width: int) -> "KnownBits":
        return KnownBits(0, 0, width)

    @staticmethod
    def constant(value: int, width: int) -> "KnownBits":
        mask = (1 << width) - 1
        value &= mask
        return KnownBits(~value & mask, value, width)

    @property
    def is_constant(self) -> bool:
        return (self.zeros | self.ones) == (1 << self.width) - 1

    @property
    def constant_value(self) -> Optional[int]:
        return self.ones if self.is_constant else None

    @property
    def is_nonzero(self) -> bool:
        return self.ones != 0

    @property
    def max_unsigned(self) -> int:
        return ((1 << self.width) - 1) & ~self.zeros

    @property
    def min_unsigned(self) -> int:
        return self.ones

    def sign_bit(self) -> Optional[bool]:
        top = 1 << (self.width - 1)
        if self.ones & top:
            return True
        if self.zeros & top:
            return False
        return None


def compute_known_bits(value: Value, depth: int = 6) -> KnownBits:
    """Recursive known-bits analysis (up-to-poison, see module doc)."""
    ty = value.type
    if not isinstance(ty, IntType):
        return KnownBits.unknown(max(1, ty.bitwidth()))
    width = ty.bits
    mask = (1 << width) - 1

    if isinstance(value, ConstantInt):
        return KnownBits.constant(value.value, width)
    if isinstance(value, (UndefValue, PoisonValue)):
        # Deferred UB can be "any value"; report nothing known.
        return KnownBits.unknown(width)
    if depth <= 0 or not isinstance(value, Instruction):
        return KnownBits.unknown(width)

    if isinstance(value, FreezeInst):
        # freeze(x) has the same known bits as x when x is well-defined;
        # when x is poison it is arbitrary, so only up-to-poison facts
        # survive — which is what KnownBits already means.  But since
        # freeze *launders* poison into a real arbitrary value, facts
        # derived from the input's poison-producing flags must not be
        # used; we conservatively keep only plain bit facts.
        return compute_known_bits(value.value, depth - 1)

    if isinstance(value, BinaryInst):
        a = compute_known_bits(value.lhs, depth - 1)
        b = compute_known_bits(value.rhs, depth - 1)
        op = value.opcode
        if op is Opcode.AND:
            return KnownBits(a.zeros | b.zeros, a.ones & b.ones, width)
        if op is Opcode.OR:
            return KnownBits(a.zeros & b.zeros, a.ones | b.ones, width)
        if op is Opcode.XOR:
            known = (a.zeros | a.ones) & (b.zeros | b.ones)
            ones = (a.ones ^ b.ones) & known
            return KnownBits(known & ~ones, ones, width)
        if op is Opcode.SHL and isinstance(value.rhs, ConstantInt):
            s = value.rhs.value
            if s < width:
                low_zeros = (1 << s) - 1
                return KnownBits(
                    ((a.zeros << s) | low_zeros) & mask,
                    (a.ones << s) & mask,
                    width,
                )
        if op is Opcode.LSHR and isinstance(value.rhs, ConstantInt):
            s = value.rhs.value
            if s < width:
                high_zeros = mask & ~(mask >> s)
                return KnownBits(
                    (a.zeros >> s) | high_zeros, a.ones >> s, width
                )
        if op is Opcode.ADD:
            # Propagate known low bits until the first unknown position.
            known_a = a.zeros | a.ones
            known_b = b.zeros | b.ones
            low = 0
            while low < width and (known_a >> low) & 1 and (known_b >> low) & 1:
                low += 1
            if low:
                total = (a.ones + b.ones) & ((1 << low) - 1)
                lowmask = (1 << low) - 1
                return KnownBits(
                    (~total) & lowmask, total & lowmask, width
                )
        if op is Opcode.UREM and isinstance(value.rhs, ConstantInt):
            d = value.rhs.value
            if d != 0 and d & (d - 1) == 0:  # power of two
                high = mask & ~(d - 1)
                return KnownBits(a.zeros & (d - 1) | high, a.ones & (d - 1),
                                 width)
        if op is Opcode.UDIV and isinstance(value.rhs, ConstantInt):
            d = value.rhs.value
            if d != 0:
                max_q = a.max_unsigned // d
                high_zeros = 0
                for i in range(width - 1, -1, -1):
                    if max_q < (1 << i):
                        high_zeros |= 1 << i
                    else:
                        break
                return KnownBits(high_zeros, 0, width)
        return KnownBits.unknown(width)

    if isinstance(value, CastInst):
        src_ty = value.value.type
        if not isinstance(src_ty, IntType):
            return KnownBits.unknown(width)
        a = compute_known_bits(value.value, depth - 1)
        sw = src_ty.bits
        if value.opcode is Opcode.ZEXT:
            high = mask & ~((1 << sw) - 1)
            return KnownBits(a.zeros | high, a.ones, width)
        if value.opcode is Opcode.SEXT:
            sign = a.sign_bit()
            high = mask & ~((1 << sw) - 1)
            if sign is True:
                return KnownBits(a.zeros, a.ones | high, width)
            if sign is False:
                return KnownBits(a.zeros | high, a.ones, width)
            return KnownBits(a.zeros & ((1 << sw) - 1) & ~(1 << (sw - 1)),
                             a.ones & ((1 << (sw - 1)) - 1), width)
        if value.opcode is Opcode.TRUNC:
            return KnownBits(a.zeros & mask, a.ones & mask, width)
        return KnownBits.unknown(width)

    if isinstance(value, SelectInst):
        a = compute_known_bits(value.true_value, depth - 1)
        b = compute_known_bits(value.false_value, depth - 1)
        return KnownBits(a.zeros & b.zeros, a.ones & b.ones, width)

    if isinstance(value, PhiInst) and value.num_operands:
        result: Optional[KnownBits] = None
        for incoming, _ in value.incoming:
            if incoming is value:
                continue
            kb = (
                compute_known_bits(incoming, depth - 1)
                if depth > 1 else KnownBits.unknown(width)
            )
            if result is None:
                result = kb
            else:
                result = KnownBits(result.zeros & kb.zeros,
                                   result.ones & kb.ones, width)
        return result or KnownBits.unknown(width)

    return KnownBits.unknown(width)


def is_known_power_of_two(value: Value, depth: int = 6) -> bool:
    """Up-to-poison fact: if ``value`` is well-defined, it is a power of
    two (hence nonzero).  The paper's ``shl 1, %y`` example (Section 5.6)
    returns True here even though a poison ``%y`` makes the value
    arbitrary — callers hoisting past control flow must also check
    :func:`is_guaranteed_not_poison`."""
    if isinstance(value, ConstantInt):
        v = value.value
        return v != 0 and v & (v - 1) == 0
    if depth <= 0 or not isinstance(value, Instruction):
        return False
    if isinstance(value, BinaryInst):
        op = value.opcode
        if op is Opcode.SHL and isinstance(value.lhs, ConstantInt):
            if value.lhs.value == 1:
                return True
        if op in (Opcode.AND, Opcode.UREM):
            return False
        if op is Opcode.MUL:
            return (
                is_known_power_of_two(value.lhs, depth - 1)
                and is_known_power_of_two(value.rhs, depth - 1)
                and (value.nsw or value.nuw)
            )
    if isinstance(value, CastInst) and value.opcode is Opcode.ZEXT:
        return is_known_power_of_two(value.value, depth - 1)
    if isinstance(value, SelectInst):
        return (
            is_known_power_of_two(value.true_value, depth - 1)
            and is_known_power_of_two(value.false_value, depth - 1)
        )
    if isinstance(value, FreezeInst):
        # After freeze the value is arbitrary if the input was poison;
        # the power-of-two fact does NOT survive laundering.
        return False
    return False


def is_guaranteed_not_poison(value: Value, depth: int = 6,
                             flow=None, block=None) -> bool:
    """Sound (not up-to-poison) analysis: can ``value`` ever be poison or
    undef?  This is the companion API Section 5.6 says hoisting clients
    need.

    When the caller holds a
    :class:`~repro.analysis.poison_flow.PoisonFlowResult` for the
    enclosing function, passing it as ``flow`` (optionally with the use
    site's ``block`` for dominating-branch refinement) delegates to the
    fixpoint dataflow, which is strictly stronger than the local walk
    (phis through loops, guarded blocks).  The cheap walk remains the
    no-context fallback, so existing call sites keep working unchanged.
    """
    if flow is not None and flow.is_not_poison(value, block):
        return True
    if isinstance(value, ConstantInt):
        return True
    if isinstance(value, (PoisonValue, UndefValue)):
        return False
    if isinstance(value, Argument):
        # Arguments may be poison unless the caller promises otherwise.
        return False
    if depth <= 0 or not isinstance(value, Instruction):
        return False
    if isinstance(value, FreezeInst):
        return True  # the whole point of freeze
    if isinstance(value, BinaryInst):
        if value.nsw or value.nuw or value.exact:
            return False  # may generate poison itself
        if value.opcode in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            if not isinstance(value.rhs, ConstantInt):
                return False  # oob shift amount generates undef/poison
            if value.rhs.value >= value.type.bits:
                return False
        return (
            is_guaranteed_not_poison(value.lhs, depth - 1)
            and is_guaranteed_not_poison(value.rhs, depth - 1)
        )
    if isinstance(value, IcmpInst):
        return (
            is_guaranteed_not_poison(value.lhs, depth - 1)
            and is_guaranteed_not_poison(value.rhs, depth - 1)
        )
    if isinstance(value, CastInst):
        return is_guaranteed_not_poison(value.value, depth - 1)
    if isinstance(value, SelectInst):
        return (
            is_guaranteed_not_poison(value.cond, depth - 1)
            and is_guaranteed_not_poison(value.true_value, depth - 1)
            and is_guaranteed_not_poison(value.false_value, depth - 1)
        )
    if isinstance(value, PhiInst):
        if depth <= 1:
            return False
        return all(
            v is value or is_guaranteed_not_poison(v, depth - 1)
            for v, _ in value.incoming
        )
    return False


def is_known_nonzero(value: Value, depth: int = 6) -> bool:
    """Up-to-poison: if well-defined, the value is nonzero."""
    kb = compute_known_bits(value, depth)
    if kb.is_nonzero:
        return True
    return is_known_power_of_two(value, depth)
