"""Optimization remarks (LLVM's ``-Rpass`` / ``opt-remarks``).

A :class:`Remark` records one transformation decision: which pass, in
which function/block, anchored to which instruction, and a free-form
message — e.g. ``loop-unswitch: froze hoisted condition %c``.  Passes
emit through the process-wide :class:`RemarkEmitter`; anyone interested
subscribes a callback (the CLI collects them into a JSON report, the
tests into plain lists).  Subscribers are invoked synchronously in
subscription order.  When nobody is subscribed, :func:`emit_remark` is a
cheap no-op, so instrumented passes cost nothing in normal runs.

The three remark kinds follow LLVM:

* ``passed``  — an optimization was applied;
* ``missed``  — an optimization was declined (and why);
* ``analysis`` — a fact the pass derived that explains its decision.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterator, List, Optional

REMARK_PASSED = "passed"
REMARK_MISSED = "missed"
REMARK_ANALYSIS = "analysis"

REMARK_KINDS = (REMARK_PASSED, REMARK_MISSED, REMARK_ANALYSIS)


@dataclass(frozen=True)
class Remark:
    """One machine-readable optimization decision."""

    pass_name: str
    kind: str
    function: str
    block: str
    instruction: str
    message: str

    def as_dict(self) -> Dict[str, str]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, str]) -> "Remark":
        return Remark(
            pass_name=data["pass_name"],
            kind=data.get("kind", REMARK_PASSED),
            function=data.get("function", ""),
            block=data.get("block", ""),
            instruction=data.get("instruction", ""),
            message=data["message"],
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Remark":
        return Remark.from_dict(json.loads(text))

    def __str__(self) -> str:
        where = ""
        if self.function:
            where = f" [@{self.function}"
            if self.block:
                where += f":%{self.block}"
            where += "]"
        tag = "" if self.kind == REMARK_PASSED else f" ({self.kind})"
        return f"{self.pass_name}: {self.message}{tag}{where}"


Subscriber = Callable[[Remark], None]


class RemarkEmitter:
    """Dispatches remarks to subscribers, in subscription order."""

    def __init__(self):
        self._subscribers: List[Subscriber] = []

    @property
    def active(self) -> bool:
        """True when at least one subscriber is listening; passes may
        use this to skip building expensive messages."""
        return bool(self._subscribers)

    def subscribe(self, callback: Subscriber) -> Subscriber:
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        self._subscribers.remove(callback)

    def emit(self, pass_name: str, message: str, *,
             kind: str = REMARK_PASSED, function: str = "",
             block: str = "", instruction: str = "") -> Optional[Remark]:
        if not self._subscribers:
            return None
        if kind not in REMARK_KINDS:
            raise ValueError(f"unknown remark kind {kind!r}")
        remark = Remark(pass_name=pass_name, kind=kind, function=function,
                        block=block, instruction=instruction, message=message)
        for callback in list(self._subscribers):
            callback(remark)
        return remark

    def emit_remark(self, remark: Remark) -> None:
        for callback in list(self._subscribers):
            callback(remark)

    @contextmanager
    def collect(self) -> Iterator[List[Remark]]:
        """Subscribe a list for the duration of a ``with`` block::

            with emitter.collect() as remarks:
                pipeline.run(module)
            # remarks now holds every Remark, in emission order
        """
        remarks: List[Remark] = []
        self.subscribe(remarks.append)
        try:
            yield remarks
        finally:
            self.unsubscribe(remarks.append)


#: The process-wide emitter every compiler pass emits through.
_DEFAULT_EMITTER = RemarkEmitter()


def default_emitter() -> RemarkEmitter:
    return _DEFAULT_EMITTER


def emit_remark(pass_name: str, message: str, *, kind: str = REMARK_PASSED,
                function: str = "", block: str = "",
                instruction: str = "") -> Optional[Remark]:
    """Emit through the default emitter (no-op with no subscribers)."""
    return _DEFAULT_EMITTER.emit(pass_name, message, kind=kind,
                                 function=function, block=block,
                                 instruction=instruction)


def remarks_to_json(remarks: List[Remark], indent: int = 2) -> str:
    return json.dumps([r.as_dict() for r in remarks], indent=indent)


def remarks_from_json(text: str) -> List[Remark]:
    return [Remark.from_dict(d) for d in json.loads(text)]
