"""Black-box flight recorder: the last N events before a failure.

A :class:`FlightRecorder` keeps a bounded ring of recent events —
completed spans, optimization remarks, and explicit breadcrumbs like
"checking function f_0042" — per worker process.  When a pass crashes
or a shard errors, the ring is dumped into the crash bundle / errored
shard record, so post-mortems replay the last moments *without
rerunning* (the whole point of a black box: the evidence survives the
crash).

Cost discipline: the ring is a ``deque(maxlen=N)`` of small dicts, so
recording is O(1) and memory is bounded.  The recorder subscribes to
the remark emitter and the span collector only while *installed*, and
installation happens per guarded run / per worker shard — never
globally — so the emitter's ``active`` no-op fast path still holds for
uninstrumented runs.

This module deliberately imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, List, Optional

from .remarks import Remark, RemarkEmitter, default_emitter
from .spans import Span, SpanCollector, current_collector

#: default ring capacity (events, not bytes).
DEFAULT_CAPACITY = 128


class FlightRecorder:
    """Bounded ring buffer of recent diagnostic events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        #: total events ever recorded (dropped = recorded - len(ring)).
        self.recorded = 0
        self._emitter: Optional[RemarkEmitter] = None
        self._collector: Optional[SpanCollector] = None

    # -- recording ---------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one breadcrumb event (JSON-safe fields only)."""
        event = {"t": time.time(), "kind": kind}
        event.update(fields)
        self._ring.append(event)
        self.recorded += 1

    def on_remark(self, remark: Remark) -> None:
        self.record("remark", pass_name=remark.pass_name,
                    remark_kind=remark.kind, function=remark.function,
                    message=remark.message)

    def on_span(self, span: Span) -> None:
        # Store (timestamp, Span) and defer building the JSON-safe dict
        # to :meth:`events` / :meth:`dump` — those run on crashes and
        # post-mortems, while this callback runs on *every* completed
        # span (per-span dict building showed up in the E12 overhead
        # gate).  The span is final by the time it completes, so the
        # lazy rendering sees the same data.
        self._ring.append((time.time(), span))
        self.recorded += 1

    @staticmethod
    def _render(event) -> Dict[str, Any]:
        if type(event) is not tuple:
            return event  # breadcrumb/remark dicts are stored eagerly
        t, span = event
        out: Dict[str, Any] = {
            "t": t, "kind": "span", "name": span.name,
            "cat": span.cat, "dur": round(span.wall, 6),
        }
        if span.function:
            out["fn"] = span.function
        if span.attrs:
            out["attrs"] = span.attrs
        return out

    # -- wiring ------------------------------------------------------------
    def install(self, emitter: Optional[RemarkEmitter] = None,
                collector: Optional[SpanCollector] = None) -> "FlightRecorder":
        """Subscribe to the remark emitter and span collector.  Callers
        pair this with :meth:`uninstall` in a ``finally``."""
        self._emitter = emitter or default_emitter()
        self._emitter.subscribe(self.on_remark)
        self._collector = collector or current_collector()
        self._collector.on_complete.append(self.on_span)
        return self

    def uninstall(self) -> None:
        if self._emitter is not None:
            try:
                self._emitter.unsubscribe(self.on_remark)
            except ValueError:
                pass
            self._emitter = None
        if self._collector is not None:
            try:
                self._collector.on_complete.remove(self.on_span)
            except ValueError:
                pass
            self._collector = None

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[Dict[str, Any]]:
        return [self._render(e) for e in self._ring]

    def dump(self) -> Dict[str, Any]:
        """JSON-safe dump for crash bundles and errored-shard records."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": max(0, self.recorded - len(self._ring)),
            "events": [self._render(e) for e in self._ring],
        }

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0


#: The process-wide recorder, if one is installed (workers install one
#: for the duration of a shard; None means no black box is running).
_CURRENT_RECORDER: Optional[FlightRecorder] = None


def current_recorder() -> Optional[FlightRecorder]:
    return _CURRENT_RECORDER


def set_recorder(recorder: Optional[FlightRecorder]
                 ) -> Optional[FlightRecorder]:
    """Install ``recorder`` as the process-wide black box; returns the
    old one (callers restore it in a ``finally``)."""
    global _CURRENT_RECORDER
    old = _CURRENT_RECORDER
    _CURRENT_RECORDER = recorder
    return old


def recorder_dump() -> Optional[Dict[str, Any]]:
    """Dump of the installed recorder, or None when no black box is
    running (crash-bundle payloads store this verbatim)."""
    if _CURRENT_RECORDER is None:
        return None
    return _CURRENT_RECORDER.dump()
