"""Process-wide named statistic counters (LLVM's ``STATISTIC`` macro).

A pass declares its counters once at module scope::

    NUM_CONDS_FROZEN = Statistic(
        "loop-unswitch", "num-conditions-frozen",
        "Number of hoisted conditions frozen (Section 5.1)")

and bumps them with ``NUM_CONDS_FROZEN.inc()`` at each decision point.
Counter *values* live in a :class:`StatsRegistry`, keyed by
``(pass name, counter name)``; a :class:`Statistic` is a lightweight
handle, so two handles with the same key share one value and a registry
``reset()`` zeroes every counter at once (the CLI and the tests rely on
this).  The default process-wide registry is what the compiler uses;
tests can construct private registries.

Emission mirrors LLVM's ``-stats``: :func:`format_stats` prints the
classic aligned report of non-zero counters, :meth:`StatsRegistry.as_dict`
/ :meth:`StatsRegistry.to_json` give the machine-readable form the
``python -m repro`` CLI and the benchmark harness consume.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple


class StatsRegistry:
    """Holds counter values and descriptions, keyed by (pass, name)."""

    def __init__(self):
        self._values: Dict[Tuple[str, str], int] = {}
        self._descriptions: Dict[Tuple[str, str], str] = {}
        #: memoized "pass/counter" strings so flat_snapshot (taken per
        #: traced region) never re-formats keys.
        self._flat_keys: Dict[Tuple[str, str], str] = {}
        #: increment journal — a list of ("pass/counter", n) appended by
        #: :meth:`add` while :meth:`start_journal` is active.  Lets a
        #: traced region compute its stats delta from just the counters
        #: that actually moved (a handful per region) instead of two
        #: full-registry snapshots, which both cost CPU and — being
        #: fresh tracked containers — fed the GC pressure that was most
        #: of the E12 tracing-on overhead.
        self._journal: Optional[List[Tuple[str, int]]] = None

    # -- registration and update ------------------------------------------
    def register(self, pass_name: str, name: str,
                 description: str = "") -> None:
        key = (pass_name, name)
        self._values.setdefault(key, 0)
        self._flat_keys.setdefault(key, f"{pass_name}/{name}")
        if description:
            self._descriptions[key] = description

    def add(self, pass_name: str, name: str, n: int = 1) -> None:
        key = (pass_name, name)
        flat = self._flat_keys.get(key)
        if flat is None:
            flat = self._flat_keys[key] = f"{pass_name}/{name}"
        self._values[key] = self._values.get(key, 0) + n
        if self._journal is not None:
            self._journal.append((flat, n))

    def get(self, pass_name: str, name: str) -> int:
        return self._values.get((pass_name, name), 0)

    def description(self, pass_name: str, name: str) -> str:
        return self._descriptions.get((pass_name, name), "")

    def reset(self) -> None:
        """Zero every registered counter (registrations survive)."""
        for key in self._values:
            self._values[key] = 0

    # -- iteration and emission ------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for (pass_name, name), value in sorted(self._values.items()):
            yield pass_name, name, value

    def snapshot(self, nonzero_only: bool = False) -> Dict[str, Dict[str, int]]:
        """Nested ``{pass: {counter: value}}`` view of the current values."""
        out: Dict[str, Dict[str, int]] = {}
        for pass_name, name, value in self:
            if nonzero_only and not value:
                continue
            out.setdefault(pass_name, {})[name] = value
        return out

    def as_dict(self, nonzero_only: bool = False) -> Dict[str, Dict[str, int]]:
        return self.snapshot(nonzero_only=nonzero_only)

    def to_json(self, nonzero_only: bool = False, indent: int = 2) -> str:
        return json.dumps(self.snapshot(nonzero_only=nonzero_only),
                          indent=indent, sort_keys=True)

    def flat_snapshot(self, nonzero_only: bool = False) -> Dict[str, int]:
        """Flat ``{"pass/counter": value}`` copy — cheap enough to take
        before and after a traced region (:func:`flat_delta`)."""
        keys = self._flat_keys
        if nonzero_only:
            return {keys[k]: v for k, v in self._values.items() if v}
        return {keys[k]: v for k, v in self._values.items()}

    # -- increment journal -------------------------------------------------
    def start_journal(self) -> None:
        """Begin recording every :meth:`add` as a ``("pass/counter", n)``
        entry.  Campaign workers enable this for traced shards so each
        check-function span can attach its stats delta without taking
        before/after registry snapshots."""
        self._journal = []

    def stop_journal(self) -> None:
        self._journal = None

    def journal_mark(self) -> int:
        """Position token for :meth:`journal_delta` (0 when inactive)."""
        journal = self._journal
        return len(journal) if journal is not None else 0

    def journal_delta(self, mark: int,
                      truncate: bool = False) -> Dict[str, int]:
        """Aggregate increments recorded since ``mark`` — the same
        nonzero delta :func:`flat_delta` would compute from snapshots
        bracketing the region, in O(increments) instead of O(registry).

        ``truncate`` drops the consumed entries so a long-lived journal
        (one per shard, marked per function) stays a few entries long.
        """
        journal = self._journal
        if journal is None:
            return {}
        out: Dict[str, int] = {}
        for flat, n in journal[mark:]:
            out[flat] = out.get(flat, 0) + n
        if truncate:
            del journal[mark:]
        if not all(out.values()):  # rare: increments that net to zero
            out = {k: v for k, v in out.items() if v}
        return out

    def load_dict(self, data: Dict[str, Dict[str, int]]) -> None:
        """Inverse of :meth:`snapshot` (JSON round-trips in the tests)."""
        for pass_name, counters in data.items():
            for name, value in counters.items():
                key = (pass_name, name)
                self._values[key] = value
                self._flat_keys.setdefault(key, f"{pass_name}/{name}")

    def format_text(self, nonzero_only: bool = True) -> str:
        """The classic LLVM ``-stats`` report."""
        rows = [(value, pass_name, name,
                 self.description(pass_name, name))
                for pass_name, name, value in self
                if value or not nonzero_only]
        header = [
            "===" + "-" * 62 + "===",
            "{:^68}".format("... Statistics Collected ..."),
            "===" + "-" * 62 + "===",
            "",
        ]
        if not rows:
            return "\n".join(header + ["  (no statistics collected)"])
        vw = max(len(str(v)) for v, _, _, _ in rows)
        pw = max(len(p) for _, p, _, _ in rows)
        lines = header + [
            f"{value:>{vw}} {pass_name:<{pw}} - {name}"
            + (f" ({description})" if description else "")
            for value, pass_name, name, description in rows
        ]
        return "\n".join(lines)


#: The process-wide registry every compiler-side Statistic defaults to.
_DEFAULT_REGISTRY = StatsRegistry()


def default_registry() -> StatsRegistry:
    return _DEFAULT_REGISTRY


def reset_stats() -> None:
    """Zero every counter in the default registry."""
    _DEFAULT_REGISTRY.reset()


def stats_snapshot(nonzero_only: bool = False) -> Dict[str, Dict[str, int]]:
    return _DEFAULT_REGISTRY.snapshot(nonzero_only=nonzero_only)


def format_stats(nonzero_only: bool = True) -> str:
    return _DEFAULT_REGISTRY.format_text(nonzero_only=nonzero_only)


def flat_delta(before: Dict[str, int],
               after: Dict[str, int]) -> Dict[str, int]:
    """Nonzero increments between two :meth:`StatsRegistry.flat_snapshot`
    copies — the stat delta spans attach to a traced region."""
    out = {}
    for key, value in after.items():
        diff = value - before.get(key, 0)
        if diff:
            out[key] = diff
    return out


class Statistic:
    """A named counter handle; the value lives in the registry."""

    __slots__ = ("pass_name", "name", "description", "_registry")

    def __init__(self, pass_name: str, name: str, description: str = "",
                 registry: Optional[StatsRegistry] = None):
        self.pass_name = pass_name
        self.name = name
        self.description = description
        self._registry = registry or _DEFAULT_REGISTRY
        self._registry.register(pass_name, name, description)

    @property
    def value(self) -> int:
        return self._registry.get(self.pass_name, self.name)

    def inc(self, n: int = 1) -> None:
        self._registry.add(self.pass_name, self.name, n)

    def __iadd__(self, n: int) -> "Statistic":
        self.inc(n)
        return self

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return (f"<Statistic {self.pass_name}/{self.name} "
                f"= {self.value}>")
