"""Process-wide named statistic counters (LLVM's ``STATISTIC`` macro).

A pass declares its counters once at module scope::

    NUM_CONDS_FROZEN = Statistic(
        "loop-unswitch", "num-conditions-frozen",
        "Number of hoisted conditions frozen (Section 5.1)")

and bumps them with ``NUM_CONDS_FROZEN.inc()`` at each decision point.
Counter *values* live in a :class:`StatsRegistry`, keyed by
``(pass name, counter name)``; a :class:`Statistic` is a lightweight
handle, so two handles with the same key share one value and a registry
``reset()`` zeroes every counter at once (the CLI and the tests rely on
this).  The default process-wide registry is what the compiler uses;
tests can construct private registries.

Emission mirrors LLVM's ``-stats``: :func:`format_stats` prints the
classic aligned report of non-zero counters, :meth:`StatsRegistry.as_dict`
/ :meth:`StatsRegistry.to_json` give the machine-readable form the
``python -m repro`` CLI and the benchmark harness consume.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, Optional, Tuple


class StatsRegistry:
    """Holds counter values and descriptions, keyed by (pass, name)."""

    def __init__(self):
        self._values: Dict[Tuple[str, str], int] = {}
        self._descriptions: Dict[Tuple[str, str], str] = {}

    # -- registration and update ------------------------------------------
    def register(self, pass_name: str, name: str,
                 description: str = "") -> None:
        key = (pass_name, name)
        self._values.setdefault(key, 0)
        if description:
            self._descriptions[key] = description

    def add(self, pass_name: str, name: str, n: int = 1) -> None:
        key = (pass_name, name)
        self._values[key] = self._values.get(key, 0) + n

    def get(self, pass_name: str, name: str) -> int:
        return self._values.get((pass_name, name), 0)

    def description(self, pass_name: str, name: str) -> str:
        return self._descriptions.get((pass_name, name), "")

    def reset(self) -> None:
        """Zero every registered counter (registrations survive)."""
        for key in self._values:
            self._values[key] = 0

    # -- iteration and emission ------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for (pass_name, name), value in sorted(self._values.items()):
            yield pass_name, name, value

    def snapshot(self, nonzero_only: bool = False) -> Dict[str, Dict[str, int]]:
        """Nested ``{pass: {counter: value}}`` view of the current values."""
        out: Dict[str, Dict[str, int]] = {}
        for pass_name, name, value in self:
            if nonzero_only and not value:
                continue
            out.setdefault(pass_name, {})[name] = value
        return out

    def as_dict(self, nonzero_only: bool = False) -> Dict[str, Dict[str, int]]:
        return self.snapshot(nonzero_only=nonzero_only)

    def to_json(self, nonzero_only: bool = False, indent: int = 2) -> str:
        return json.dumps(self.snapshot(nonzero_only=nonzero_only),
                          indent=indent, sort_keys=True)

    def load_dict(self, data: Dict[str, Dict[str, int]]) -> None:
        """Inverse of :meth:`snapshot` (JSON round-trips in the tests)."""
        for pass_name, counters in data.items():
            for name, value in counters.items():
                self._values[(pass_name, name)] = value

    def format_text(self, nonzero_only: bool = True) -> str:
        """The classic LLVM ``-stats`` report."""
        rows = [(value, pass_name, name,
                 self.description(pass_name, name))
                for pass_name, name, value in self
                if value or not nonzero_only]
        header = [
            "===" + "-" * 62 + "===",
            "{:^68}".format("... Statistics Collected ..."),
            "===" + "-" * 62 + "===",
            "",
        ]
        if not rows:
            return "\n".join(header + ["  (no statistics collected)"])
        vw = max(len(str(v)) for v, _, _, _ in rows)
        pw = max(len(p) for _, p, _, _ in rows)
        lines = header + [
            f"{value:>{vw}} {pass_name:<{pw}} - {name}"
            + (f" ({description})" if description else "")
            for value, pass_name, name, description in rows
        ]
        return "\n".join(lines)


#: The process-wide registry every compiler-side Statistic defaults to.
_DEFAULT_REGISTRY = StatsRegistry()


def default_registry() -> StatsRegistry:
    return _DEFAULT_REGISTRY


def reset_stats() -> None:
    """Zero every counter in the default registry."""
    _DEFAULT_REGISTRY.reset()


def stats_snapshot(nonzero_only: bool = False) -> Dict[str, Dict[str, int]]:
    return _DEFAULT_REGISTRY.snapshot(nonzero_only=nonzero_only)


def format_stats(nonzero_only: bool = True) -> str:
    return _DEFAULT_REGISTRY.format_text(nonzero_only=nonzero_only)


class Statistic:
    """A named counter handle; the value lives in the registry."""

    __slots__ = ("pass_name", "name", "description", "_registry")

    def __init__(self, pass_name: str, name: str, description: str = "",
                 registry: Optional[StatsRegistry] = None):
        self.pass_name = pass_name
        self.name = name
        self.description = description
        self._registry = registry or _DEFAULT_REGISTRY
        self._registry.register(pass_name, name, description)

    @property
    def value(self) -> int:
        return self._registry.get(self.pass_name, self.name)

    def inc(self, n: int = 1) -> None:
        self._registry.add(self.pass_name, self.name, n)

    def __iadd__(self, n: int) -> "Statistic":
        self.inc(n)
        return self

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return (f"<Statistic {self.pass_name}/{self.name} "
                f"= {self.value}>")
