"""The documented name set for every stat and metric the stack emits.

Dashboards, the Prometheus surface, BENCH gates, and the campaign
report all key on stat names.  Renaming a counter — or adding one
without documenting it — silently breaks those consumers, so the full
set is pinned here and a test asserts that every stat emitted while the
test suite runs is cataloged.  Adding a counter therefore *requires* a
matching catalog entry (one line, reviewed like any interface change).

Two forms of entry:

* :data:`STAT_CATALOG` — exact ``(pass, counter)`` pairs;
* :data:`STAT_PATTERNS` — ``("*", counter)`` wildcards for families of
  dynamically named stats (per-pass guard failures, per-rule lint
  counters).

This module deliberately imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import fnmatch
from typing import Set, Tuple

from .metrics import prom_name

#: Exact (pass, counter) pairs the stack is documented to emit.
STAT_CATALOG: Set[Tuple[str, str]] = {
    # campaign executor
    ("campaign", "num-dedup-hits"),
    ("campaign", "num-functions-checked"),
    ("campaign", "num-pass-crashes"),
    ("campaign", "num-pass-recoveries"),
    ("campaign", "num-refinement-failures"),
    ("campaign", "num-shards-done"),
    ("campaign", "num-shards-errored"),
    ("campaign", "num-shards-skipped"),
    ("campaign", "num-timeout-verdicts"),
    # chaos / fault injection
    ("chaos", "num-corrupt-faults"),
    ("chaos", "num-faults-injected"),
    ("chaos", "num-io-faults"),
    ("chaos", "num-kill-faults"),
    ("chaos", "num-raise-faults"),
    # optimization passes
    ("freeze-opts", "num-freezes-simplified"),
    ("gvn", "num-equality-replacements"),
    ("gvn", "num-freezes-folded"),
    ("gvn", "num-instructions-eliminated"),
    ("instcombine", "num-combined"),
    ("instcombine", "num-dead-removed"),
    ("instcombine", "num-mul-to-add"),
    ("instcombine", "num-mul-to-shl"),
    ("instcombine", "num-select-undef-collapsed"),
    ("instcombine", "num-selects-frozen"),
    ("instcombine", "num-selects-to-arith"),
    ("instcombine", "num-udiv-to-select"),
    ("licm", "num-guarded-div-hoisted"),
    ("licm", "num-hoisted"),
    ("loop-unswitch", "num-conditions-frozen"),
    ("loop-unswitch", "num-loops-unswitched"),
    ("simplifycfg", "num-blocks-merged"),
    ("simplifycfg", "num-branches-folded"),
    ("simplifycfg", "num-freeze-threads-blocked"),
    ("simplifycfg", "num-jumps-threaded"),
    ("simplifycfg", "num-phis-to-select"),
    # interpreter / execution plans
    ("interp", "num-fuel-exhausted"),
    ("interp", "num-plans-compiled"),
    ("interp", "num-ub-executions"),
    # lint engine and audit
    ("lint", "num-functions-linted"),
    ("lint-audit", "num-claims-checked"),
    ("lint-audit", "num-contradictions"),
    ("lint-audit", "num-functions-audited"),
    ("lint-audit", "num-observations"),
    # adversarial lint-attack campaigns
    ("lint-attack", "num-seeds-attacked"),
    ("lint-attack", "num-mutants"),
    ("lint-attack", "num-observations"),
    ("lint-attack", "num-oracle-events"),
    ("lint-attack", "num-disagreements"),
    ("lint-attack", "num-unclassified"),
    # fuzzers
    ("optfuzz", "num-functions-enumerated"),
    ("optfuzz", "num-random-functions"),
    # perf: memoization and caches
    ("perf", "num-memo-disk-entries-loaded"),
    ("perf", "num-memo-hits"),
    ("perf", "num-memo-misses"),
    ("perf", "num-memo-quarantined"),
    ("perf", "num-memo-disk-errors"),
    # pipeline summary counters
    ("pipeline", "num-freeze-instructions"),
    ("pipeline", "num-ir-instructions"),
    # poison dataflow analysis
    ("poison-flow", "num-branch-refinements"),
    ("poison-flow", "num-fixpoint-iterations"),
    ("poison-flow", "num-functions-analyzed"),
    # validation service front-end
    ("serve", "num-batched-functions"),
    ("serve", "num-batches"),
    ("serve", "num-campaign-shards"),
    ("serve", "num-connections"),
    ("serve", "num-refines-memo-served"),
    ("serve", "num-request-errors"),
    ("serve", "num-request-timeouts"),
    ("serve", "num-requests"),
    ("serve", "num-requests-completed"),
    ("serve", "num-requests-rejected"),
    ("serve", "num-stream-chunks"),
    ("serve", "num-poller-leaks"),
    ("serve", "num-idempotent-replays"),
    # retrying clients / circuit breakers
    ("serve-client", "num-retries"),
    ("serve-client", "num-breaker-opens"),
    ("serve-client", "num-breaker-shed"),
    # worker supervision
    ("supervisor", "num-worker-restarts"),
    ("supervisor", "num-jobs-quarantined"),
    ("supervisor", "num-restart-budget-exhausted"),
    # refinement checker
    ("refine", "num-checks"),
    ("refine", "num-inputs-checked"),
    ("refine", "num-deadline-aborts"),
    ("refine", "num-undef-expansion-overflow"),
    # vector (numpy lane-parallel) refinement engine
    ("refine", "num-vector-checks"),
    ("refine", "num-vector-fallbacks"),
    ("refine", "num-cross-checks"),
    ("refine", "num-vector-lanes"),
    ("vector", "num-plans-lowered"),
    ("vector", "num-plan-runs"),
    # pass-guard resilience layer
    ("resilience", "num-bisect-skipped"),
    ("resilience", "num-guard-failures"),
    ("resilience", "num-pass-exceptions"),
    ("resilience", "num-quarantined-passes"),
    ("resilience", "num-recoveries"),
    ("resilience", "num-verify-failures"),
    # SMT layer
    ("smt", "num-circuits-reused"),
    ("smt", "num-session-queries"),
    # lint rules (per-rule counters use the rule id as counter name)
    ("lint", "num-branch-on-maybe-poison"),
    ("lint", "num-ub-sink-reaches-poison"),
    ("lint", "num-redundant-freeze"),
    ("lint", "num-missing-freeze-on-hoist"),
    ("lint", "num-dead-on-poison-flag"),
}

#: Wildcard entries for dynamically named stat families.  The pass (or
#: counter) component is an :mod:`fnmatch` pattern.
STAT_PATTERNS: Set[Tuple[str, str]] = {
    # GuardedPassManager also books failures under the failing pass's
    # own name, whatever it is.
    ("*", "num-guard-failures"),
    # lint rules are pluggable; any rule id is a legal counter.
    ("lint", "num-*"),
    # lint-attack books one counter per (rule, taxonomy verdict).
    ("lint-attack", "num-*"),
    # vector-engine fallbacks book one counter per ineligibility
    # reason slug (see repro.semantics.vector.VectorIneligible).
    ("refine", "num-vector-ineligible-*"),
}

#: First-class (non-stat-derived) metric names the diag layer exports.
METRIC_CATALOG: Set[str] = {
    "repro_worker_uptime_seconds",
    "repro_worker_functions_inflight",
    "repro_span_seconds",
    # validation service front-end
    "repro_serve_queue_depth",
    "repro_serve_inflight",
    "repro_serve_request_seconds",
}


def is_cataloged(pass_name: str, counter: str) -> bool:
    """Is this stat documented (exactly or via a pattern)?"""
    if (pass_name, counter) in STAT_CATALOG:
        return True
    for pass_pat, counter_pat in STAT_PATTERNS:
        if (fnmatch.fnmatchcase(pass_name, pass_pat)
                and fnmatch.fnmatchcase(counter, counter_pat)):
            return True
    return False


def uncataloged(pairs) -> Set[Tuple[str, str]]:
    """The subset of ``(pass, counter)`` pairs that are not documented."""
    return {(p, c) for p, c in pairs if not is_cataloged(p, c)}


def catalog_prom_names() -> Set[str]:
    """Every documented stat's stable Prometheus name, plus the
    first-class metric names."""
    names = {prom_name(p, c) for p, c in STAT_CATALOG}
    names.update(METRIC_CATALOG)
    return names
