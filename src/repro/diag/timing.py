"""Hierarchical pass timing (LLVM's ``-time-passes``).

:class:`PassTiming` replaces the flat per-pass record the old
``PassManager`` kept: each pass accumulates totals *and* a per-function
breakdown, so the compile-time experiment (E2) can see not just that a
pipeline got slower but *which pass on which function* did.  Timing is
recorded through the :meth:`PassTiming.measure` context manager, whose
``finally``-based accounting guarantees a pass that raises mid-run still
gets its wall time and run count recorded (no orphaned seconds).

One :class:`PassTiming` may be shared by several :class:`PassManager`
instances (the harness threads a single collector through the -O2 and
codegen pipelines of one compilation), and :meth:`report` renders the
classic ``-time-passes`` table.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class TimeRecord:
    """Leaf record: one pass on one function (or one pass in total)."""

    runs: int = 0
    changes: int = 0
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"runs": self.runs, "changes": self.changes,
                "seconds": self.seconds}


@dataclass
class PassStats:
    """Per-pass statistics with a per-function breakdown.

    The successor of the old flat ``PassStats``; the aggregate fields
    (``runs``/``changes``/``seconds``) keep their historical names so
    existing consumers of ``PassManager.stats`` keep working.
    """

    runs: int = 0
    changes: int = 0
    seconds: float = 0.0
    per_function: Dict[str, TimeRecord] = field(default_factory=dict)

    def record(self, function: str, seconds: float, changed: bool) -> None:
        self.runs += 1
        self.seconds += seconds
        if changed:
            self.changes += 1
        rec = self.per_function.setdefault(function, TimeRecord())
        rec.runs += 1
        rec.seconds += seconds
        if changed:
            rec.changes += 1

    def as_dict(self) -> Dict:
        """Stable serialization for the bench harness and the CLI."""
        return {
            "runs": self.runs,
            "changes": self.changes,
            "seconds": self.seconds,
            "per_function": {
                name: rec.as_dict()
                for name, rec in sorted(self.per_function.items())
            },
        }


class _Measurement:
    """Handle yielded by :meth:`PassTiming.measure`; the caller sets
    ``changed`` before the block exits."""

    __slots__ = ("changed",)

    def __init__(self):
        self.changed = False


class PassTiming:
    """Per-pass × per-function wall-clock collector."""

    def __init__(self):
        self.passes: Dict[str, PassStats] = {}

    @contextmanager
    def measure(self, pass_name: str,
                function: str) -> Iterator[_Measurement]:
        """Time one pass invocation on one function.  Accounting happens
        in a ``finally`` block, so a pass that raises still records its
        elapsed time together with a matching ``runs`` increment."""
        stats = self.passes.setdefault(pass_name, PassStats())
        handle = _Measurement()
        start = time.perf_counter()
        try:
            yield handle
        finally:
            stats.record(function, time.perf_counter() - start,
                         handle.changed)

    # -- queries ------------------------------------------------------------
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.passes.values())

    def reset(self) -> None:
        self.passes.clear()

    def as_dict(self) -> Dict[str, Dict]:
        return {name: stats.as_dict()
                for name, stats in sorted(self.passes.items())}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    # -- emission ------------------------------------------------------------
    def report(self, per_function: bool = False,
               title: str = "Pass execution timing report") -> str:
        """The ``-time-passes`` table: passes sorted by total wall time,
        with percentages; optionally a per-function breakdown."""
        total = self.total_seconds()
        lines = [
            "===" + "-" * 62 + "===",
            "{:^68}".format(f"... {title} ..."),
            "===" + "-" * 62 + "===",
            f"  Total execution time: {total:.6f} seconds",
            "",
            f"  {'---seconds---':>13} {'--%--':>6} {'runs':>5} "
            f"{'chg':>4}  --- pass name ---",
        ]
        ranked = sorted(self.passes.items(),
                        key=lambda kv: -kv[1].seconds)
        for name, stats in ranked:
            pct = (stats.seconds / total * 100.0) if total else 0.0
            lines.append(
                f"  {stats.seconds:>13.6f} {pct:>5.1f}% {stats.runs:>5} "
                f"{stats.changes:>4}  {name}"
            )
            if per_function:
                for fn_name, rec in sorted(stats.per_function.items(),
                                           key=lambda kv: -kv[1].seconds):
                    lines.append(
                        f"  {rec.seconds:>13.6f} {'':>6} {rec.runs:>5} "
                        f"{rec.changes:>4}    @{fn_name}"
                    )
        return "\n".join(lines)

    def merge(self, other: "PassTiming") -> None:
        """Fold another collector's records into this one."""
        for name, stats in other.passes.items():
            mine = self.passes.setdefault(name, PassStats())
            mine.runs += stats.runs
            mine.changes += stats.changes
            mine.seconds += stats.seconds
            for fn_name, rec in stats.per_function.items():
                dest = mine.per_function.setdefault(fn_name, TimeRecord())
                dest.runs += rec.runs
                dest.changes += rec.changes
                dest.seconds += rec.seconds
