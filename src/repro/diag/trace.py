"""Interpreter event tracing.

:class:`ExecTrace` counts the semantically interesting events of one
interpreter execution: steps, memory traffic, poison creation, freeze
resolutions (how often ``freeze`` actually had to pick a value —
Section 4), per-use undef expansions (the OLD-semantics multiplicity of
Section 3.1), and UB triggers with their reason.  The interpreter
attaches the trace to the :class:`~repro.semantics.interp.Behavior` it
returns (excluded from equality/hashing: two runs observing the same
behavior through different events are still the same behavior), which
lets the refinement checker report *which* UB event a failing target
executed rather than just "UB".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ExecTrace:
    """Mutable event counters for one interpreter execution."""

    steps: int = 0
    loads: int = 0
    stores: int = 0
    poison_created: int = 0
    undef_expansions: int = 0
    freeze_resolutions: int = 0
    external_calls: int = 0
    ub_triggers: int = 0
    ub_reason: str = ""
    fuel_exhausted: int = 0

    def as_dict(self) -> Dict:
        return {
            "steps": self.steps,
            "loads": self.loads,
            "stores": self.stores,
            "poison_created": self.poison_created,
            "undef_expansions": self.undef_expansions,
            "freeze_resolutions": self.freeze_resolutions,
            "external_calls": self.external_calls,
            "ub_triggers": self.ub_triggers,
            "ub_reason": self.ub_reason,
            "fuel_exhausted": self.fuel_exhausted,
        }

    def merge(self, other: "ExecTrace") -> None:
        """Accumulate another execution's counters (path enumeration)."""
        self.steps += other.steps
        self.loads += other.loads
        self.stores += other.stores
        self.poison_created += other.poison_created
        self.undef_expansions += other.undef_expansions
        self.freeze_resolutions += other.freeze_resolutions
        self.external_calls += other.external_calls
        self.ub_triggers += other.ub_triggers
        if other.ub_reason and not self.ub_reason:
            self.ub_reason = other.ub_reason
        self.fuel_exhausted += other.fuel_exhausted

    def __str__(self) -> str:
        parts = [f"steps={self.steps}", f"loads={self.loads}",
                 f"stores={self.stores}",
                 f"poison_created={self.poison_created}",
                 f"undef_expansions={self.undef_expansions}",
                 f"freeze_resolutions={self.freeze_resolutions}",
                 f"ub_triggers={self.ub_triggers}"]
        if self.ub_reason:
            parts.append(f"ub_reason={self.ub_reason!r}")
        if self.fuel_exhausted:
            parts.append(f"fuel_exhausted={self.fuel_exhausted}")
        return "trace(" + ", ".join(parts) + ")"
