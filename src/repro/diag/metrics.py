"""Typed metrics over the statistics registry: counters, gauges,
histograms, JSONL time series, and a Prometheus text renderer.

The :mod:`repro.diag.stats` counters are the compiler's ``-stats``
surface — process-wide, reset-able, keyed by ``(pass, name)``.  This
module is the *export* surface on top of them, shaped the way a
long-running service is scraped:

* stable metric names: every stat maps deterministically through
  :func:`prom_name` (``perf/num-memo-hits`` →
  ``repro_perf_num_memo_hits_total``), and first-class metrics are
  declared with their final names up front.  The documented name set
  lives in :mod:`repro.diag.metrics_catalog`; a test holds that every
  emitted stat is cataloged, so renames cannot silently break
  dashboards or BENCH gates.
* typed instruments: :class:`Counter` (monotonic), :class:`Gauge`
  (set-able), :class:`Histogram` (fixed cumulative buckets + sum +
  count) in a :class:`MetricsRegistry`.
* :class:`MetricsWriter` — append-only JSONL time series; long-running
  campaign shards flush snapshots periodically, and the loader
  (:func:`load_metrics_series`) tolerates torn final lines exactly like
  campaign checkpoints.
* :func:`render_prometheus` — the text exposition format the future
  validation-as-a-service front-end will serve from ``/metrics``.

This module deliberately imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import functools
import json
import os
import re
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from .stats import StatsRegistry, default_registry

#: prefix of every exported metric name.
METRIC_PREFIX = "repro"

_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: default histogram bucket upper bounds (seconds-flavored).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


def _sanitize(part: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_]", "_", part).strip("_").lower()
    return out or "x"


@functools.lru_cache(maxsize=4096)
def prom_name(pass_name: str, counter: str) -> str:
    """The stable Prometheus name of one ``(pass, counter)`` stat."""
    return (f"{METRIC_PREFIX}_{_sanitize(pass_name)}"
            f"_{_sanitize(counter)}_total")


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "help", "buckets", "counts", "total", "count")

    def __init__(self, name: str, help_text: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets))
        #: per-bucket counts (non-cumulative; snapshot cumulates).
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + self.counts[-1]
        return {"buckets": cumulative, "sum": self.total,
                "count": self.count}


class MetricsRegistry:
    """Holds typed instruments, keyed by their stable names."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r} "
                             f"(want [a-z_][a-z0-9_]*)")
        return name

    def counter(self, name: str, help_text: str = "") -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self._check_name(name),
                                               help_text)
        return c

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(self._check_name(name),
                                           help_text)
        return g

    def histogram(self, name: str, help_text: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                self._check_name(name), help_text, buckets)
        return h

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def reset(self) -> None:
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0.0
        for h in self._histograms.values():
            h.counts = [0] * (len(h.buckets) + 1)
            h.total = 0.0
            h.count = 0

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every instrument's current value."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self._histograms.items())},
        }

    def help_texts(self) -> Dict[str, str]:
        out = {}
        for table in (self._counters, self._gauges, self._histograms):
            for name, inst in table.items():
                if inst.help:
                    out[name] = inst.help
        return out


def stats_as_metrics(registry: Optional[StatsRegistry] = None
                     ) -> Dict[str, int]:
    """Every stat counter under its stable Prometheus name."""
    registry = registry or default_registry()
    return {prom_name(pass_name, name): value
            for pass_name, name, value in registry}


def metrics_snapshot(metrics: Optional[MetricsRegistry] = None,
                     stats: Optional[StatsRegistry] = None
                     ) -> Dict[str, Any]:
    """One combined snapshot: typed instruments + stat-derived counters.

    This is the JSONL time-series payload and the Prometheus render
    input — the exact surface a service scrape would export.
    """
    metrics = metrics or default_metrics()
    snap = metrics.snapshot()
    snap["stats"] = stats_as_metrics(stats)
    return snap


# -- Prometheus text exposition ---------------------------------------------
def render_prometheus(snapshot: Dict[str, Any],
                      help_texts: Optional[Dict[str, str]] = None) -> str:
    """Render a :func:`metrics_snapshot` in the Prometheus text format."""
    help_texts = help_texts or {}
    lines: List[str] = []

    def emit_help(name: str, kind: str) -> None:
        text = help_texts.get(name)
        if text:
            lines.append(f"# HELP {name} {text}")
        lines.append(f"# TYPE {name} {kind}")

    for name, value in sorted(snapshot.get("counters", {}).items()):
        emit_help(name, "counter")
        lines.append(f"{name} {value}")
    for name, value in sorted(snapshot.get("stats", {}).items()):
        emit_help(name, "counter")
        lines.append(f"{name} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        emit_help(name, "gauge")
        lines.append(f"{name} {_fmt(value)}")
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        emit_help(name, "histogram")
        for le, count in h.get("buckets", {}).items():
            lines.append(f'{name}_bucket{{le="{le}"}} {count}')
        lines.append(f"{name}_sum {_fmt(h.get('sum', 0.0))}")
        lines.append(f"{name}_count {h.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    return repr(value) if isinstance(value, float) else str(value)


# -- JSONL time series -------------------------------------------------------
class MetricsWriter:
    """Appends periodic metric snapshots to a JSONL time-series file.

    One writer per file (the per-process discipline of the memo's disk
    layer); records carry a wall-clock timestamp and a monotonically
    increasing sequence number so merged series sort stably.
    """

    def __init__(self, path: str, interval: float = 5.0):
        self.path = path
        #: minimum seconds between :meth:`maybe_flush` flushes;
        #: ``<= 0`` flushes on every call.
        self.interval = interval
        self.flushes = 0
        self._last = None  # monotonic time of the last flush
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def flush(self,
              snapshot: Union[Dict[str, Any],
                              Callable[[], Dict[str, Any]], None] = None,
              **extra: Any) -> None:
        """Append one snapshot record now.

        ``snapshot`` may be a callable producing the snapshot dict —
        it is only invoked when a record is actually written, so hot
        loops can pass a lazy thunk to :meth:`maybe_flush` without
        paying the registry walk on the calls the interval suppresses.
        """
        if callable(snapshot):
            snapshot = snapshot()
        record = {
            "ts": time.time(),
            "seq": self.flushes,
            "metrics": snapshot if snapshot is not None
            else metrics_snapshot(),
        }
        record.update(extra)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(record) + "\n")
        self.flushes += 1
        self._last = time.monotonic()

    def maybe_flush(self,
                    snapshot: Union[Dict[str, Any],
                                    Callable[[], Dict[str, Any]],
                                    None] = None,
                    **extra: Any) -> bool:
        """Flush if at least ``interval`` seconds elapsed since the
        last flush (always flushes the first call)."""
        now = time.monotonic()
        if (self._last is not None and self.interval > 0
                and now - self._last < self.interval):
            return False
        self.flush(snapshot, **extra)
        return True


def load_metrics_series(path: str) -> List[Dict[str, Any]]:
    """Load a metrics JSONL file, skipping torn/corrupt lines."""
    out: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return out
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                out.append(record)
    return out


def merge_latest_metrics(paths: Iterable[str]) -> Dict[str, Any]:
    """Fold several per-shard series into one combined latest snapshot:
    counters/stats sum across shards, gauges take the last value,
    histograms merge bucket-wise."""
    combined: Dict[str, Any] = {"counters": {}, "gauges": {},
                                "histograms": {}, "stats": {}}
    for path in paths:
        series = load_metrics_series(path)
        if not series:
            continue
        latest = series[-1].get("metrics", {})
        for table in ("counters", "stats"):
            for name, value in latest.get(table, {}).items():
                combined[table][name] = combined[table].get(name, 0) + value
        for name, value in latest.get("gauges", {}).items():
            combined["gauges"][name] = value
        for name, h in latest.get("histograms", {}).items():
            dest = combined["histograms"].setdefault(
                name, {"buckets": {}, "sum": 0.0, "count": 0})
            for le, count in h.get("buckets", {}).items():
                dest["buckets"][le] = dest["buckets"].get(le, 0) + count
            dest["sum"] += h.get("sum", 0.0)
            dest["count"] += h.get("count", 0)
    return combined


#: The process-wide typed-metrics registry.
_DEFAULT_METRICS = MetricsRegistry()


def default_metrics() -> MetricsRegistry:
    return _DEFAULT_METRICS
