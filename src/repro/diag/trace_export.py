"""Merging per-shard span files into one Chrome-trace-event JSON, and
aggregating it into a profile report (``python -m repro diag top``).

Each campaign worker streams its spans to a per-shard JSONL file
(:meth:`repro.diag.spans.SpanCollector.open`).  :func:`merge_trace`
folds those files into a single ``trace.json`` in the Chrome trace
event format, which Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` load directly:

* one complete event (``"ph": "X"``) per span, with microsecond
  timestamps relative to each session's first span;
* ``pid`` = the logical shard id from the file's ``meta`` line, so the
  UI groups lanes by worker;
* ``tid`` = a small integer per function name (falling back to the
  span category), so concurrent work on different functions gets
  separate lanes, with ``"M"`` metadata events naming both axes;
* span id / parent id, CPU time, phase tables, and stat deltas ride in
  ``args`` — nothing is lost in the conversion.

Torn final lines (a worker killed mid-write) are skipped exactly like
campaign checkpoints, and a retried shard that re-opened the same file
starts a new *session* at its ``meta`` line, giving its span ids a
fresh namespace so parents never resolve across retries.

:func:`build_profile` inverts the trace into per-name aggregates:
call count, total time, self time (total minus direct children),
CPU time, per-phase rollups (phases appear as ``name/phase``
pseudo-entries), and memo hit rates recovered from attached stat
deltas.  :func:`render_top` prints it like a profiler's ``top``.

This module deliberately imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: glob pattern the campaign worker's span files follow.
SPAN_FILE_PATTERN = "spans-*.jsonl"


def load_span_file(path: str) -> List[Dict[str, Any]]:
    """Raw records (meta + spans) from one JSONL file, skipping torn or
    corrupt lines."""
    out: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return out
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                out.append(record)
            elif isinstance(record, list):
                # a batched line: one JSON array of span dicts per
                # sink write (SpanCollector.SINK_BATCH)
                out.extend(r for r in record if isinstance(r, dict))
    return out


def _sessions(records: Iterable[Dict[str, Any]]
              ) -> List[Tuple[Dict[str, Any], List[Dict[str, Any]]]]:
    """Split a file's records at ``meta`` lines.  Each (meta, spans)
    session is an independent span-id namespace (shard retries append
    to the same file with a fresh meta line)."""
    sessions: List[Tuple[Dict[str, Any], List[Dict[str, Any]]]] = []
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    for record in records:
        if record.get("kind") == "meta":
            if spans or meta:
                sessions.append((meta, spans))
            meta, spans = record, []
        elif "name" in record and "ts" in record:
            spans.append(record)
    if spans or meta:
        sessions.append((meta, spans))
    return sessions


def merge_traces(span_records: List[Tuple[Dict[str, Any],
                                          List[Dict[str, Any]]]]
                 ) -> Dict[str, Any]:
    """Fold (meta, spans) sessions into one Chrome-trace-event object."""
    events: List[Dict[str, Any]] = []
    named_pids: Dict[int, str] = {}
    tids: Dict[Tuple[int, str], int] = {}

    for session_index, (meta, spans) in enumerate(span_records):
        pid = int(meta.get("pid", 0))
        label = meta.get("label") or f"shard {pid}"
        if pid not in named_pids:
            named_pids[pid] = label
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": label}})
        if not spans:
            continue
        # Timestamps are perf_counter seconds, comparable only within a
        # process; rebase each session to its earliest span start.
        base = min(s["ts"] for s in spans)
        for s in spans:
            lane = s.get("fn") or s.get("cat") or "main"
            tid_key = (pid, lane)
            tid = tids.get(tid_key)
            if tid is None:
                tid = tids[tid_key] = 1 + sum(
                    1 for k in tids if k[0] == pid)
                events.append({"name": "thread_name", "ph": "M",
                               "pid": pid, "tid": tid,
                               "args": {"name": lane}})
            args: Dict[str, Any] = {"id": s.get("id"),
                                    "session": session_index}
            if "parent" in s:
                args["parent"] = s["parent"]
            if "cpu" in s:
                args["cpu_ms"] = round(s["cpu"] * 1e3, 3)
            for key in ("attrs", "phases", "stats"):
                if s.get(key):
                    args[key] = s[key]
            events.append({
                "name": s["name"],
                "cat": s.get("cat") or "span",
                "ph": "X",
                "ts": round((s["ts"] - base) * 1e6, 1),
                "dur": round(s.get("dur", 0.0) * 1e6, 1),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def find_span_files(spans_dir: str) -> List[str]:
    return sorted(glob.glob(os.path.join(spans_dir, SPAN_FILE_PATTERN)))


def merge_trace(spans_dir: str, out_path: Optional[str] = None
                ) -> Dict[str, Any]:
    """Merge every per-shard span file under ``spans_dir`` into one
    Chrome trace object, optionally writing it to ``out_path``."""
    sessions: List[Tuple[Dict[str, Any], List[Dict[str, Any]]]] = []
    for path in find_span_files(spans_dir):
        sessions.extend(_sessions(load_span_file(path)))
    trace = merge_traces(sessions)
    if out_path:
        parent = os.path.dirname(out_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as f:
            json.dump(trace, f)
    return trace


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


# -- profile aggregation ------------------------------------------------------
def build_profile(trace: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Aggregate a merged trace into per-span-name rows.

    Self time is total time minus the duration of *direct* children
    (resolved through span parent ids within each (pid, session)
    namespace).  Phases become ``parent-name/phase-name`` pseudo-rows
    (they have no own records by design — that is the cheap tier).
    Memo hit rates are recovered from attached stat deltas.
    """
    events = [e for e in trace.get("traceEvents", [])
              if e.get("ph") == "X"]

    # Map (pid, session, span id) -> event for parent resolution.
    by_id: Dict[Tuple[int, int, Any], Dict[str, Any]] = {}
    for e in events:
        args = e.get("args", {})
        if args.get("id") is not None:
            by_id[(e.get("pid", 0), args.get("session", 0),
                   args["id"])] = e

    child_time: Dict[int, float] = {}
    for e in events:
        args = e.get("args", {})
        parent = args.get("parent")
        if parent is None:
            continue
        parent_event = by_id.get((e.get("pid", 0),
                                  args.get("session", 0), parent))
        if parent_event is not None:
            child_time[id(parent_event)] = (
                child_time.get(id(parent_event), 0.0)
                + e.get("dur", 0.0))

    profile: Dict[str, Dict[str, Any]] = {}

    def row(name: str, cat: str) -> Dict[str, Any]:
        r = profile.get(name)
        if r is None:
            r = profile[name] = {
                "cat": cat, "count": 0, "total_us": 0.0,
                "self_us": 0.0, "cpu_ms": 0.0, "stats": {},
            }
        return r

    for e in events:
        args = e.get("args", {})
        r = row(e.get("name", "?"), e.get("cat", ""))
        dur = e.get("dur", 0.0)
        r["count"] += 1
        r["total_us"] += dur
        phase_us = 0.0
        for phase_name, p in args.get("phases", {}).items():
            pr = row(f"{e.get('name', '?')}/{phase_name}", "phase")
            pr["count"] += p.get("count", 0)
            seconds = p.get("seconds", 0.0)
            pr["total_us"] += seconds * 1e6
            pr["self_us"] += seconds * 1e6
            pr["cpu_ms"] += p.get("cpu_seconds", 0.0) * 1e3
            phase_us += seconds * 1e6
        r["self_us"] += max(
            0.0, dur - child_time.get(id(e), 0.0) - phase_us)
        r["cpu_ms"] += args.get("cpu_ms", 0.0)
        for stat, delta in args.get("stats", {}).items():
            r["stats"][stat] = r["stats"].get(stat, 0) + delta

    # Derived rates: memo hit rate wherever hit/miss deltas were seen.
    for r in profile.values():
        hits = r["stats"].get("perf/num-memo-hits", 0)
        misses = r["stats"].get("perf/num-memo-misses", 0)
        if hits + misses:
            r["memo_hit_rate"] = hits / (hits + misses)
    return profile


def render_top(profile: Dict[str, Dict[str, Any]], sort: str = "self",
               limit: int = 20) -> str:
    """A profiler-style ``top`` table over :func:`build_profile` rows."""
    key = {"self": lambda r: r[1]["self_us"],
           "total": lambda r: r[1]["total_us"],
           "count": lambda r: r[1]["count"]}.get(sort)
    if key is None:
        raise ValueError(f"unknown sort {sort!r} "
                         f"(want self, total, or count)")
    rows = sorted(profile.items(), key=key, reverse=True)[:limit]
    if not rows:
        return "(empty trace)"
    name_w = max(4, max(len(name) for name, _ in rows))
    lines = [f"{'name':<{name_w}} {'cat':<8} {'count':>7} "
             f"{'total':>10} {'self':>10} {'cpu':>9}  extras",
             "-" * (name_w + 52)]
    for name, r in rows:
        extras = []
        if "memo_hit_rate" in r:
            extras.append(f"memo-hit={r['memo_hit_rate']:.0%}")
        for stat, delta in sorted(r["stats"].items())[:3]:
            extras.append(f"{stat}=+{delta}")
        lines.append(
            f"{name:<{name_w}} {r['cat']:<8} {r['count']:>7} "
            f"{_ms(r['total_us']):>10} {_ms(r['self_us']):>10} "
            f"{r['cpu_ms']:>7.1f}ms  {' '.join(extras)}".rstrip())
    return "\n".join(lines)


def _ms(us: float) -> str:
    return f"{us / 1e3:.1f}ms"
