"""Hierarchical spans: cross-process tracing for the validation stack.

A *span* is one timed region of work — a pass application, a refinement
check, an SMT query — with a name, a category, wall + CPU time, a parent
(spans nest), free-form attributes, and optionally a statistics delta
covering exactly that region.  Spans are recorded through a
:class:`SpanCollector` whose context-manager API mirrors
:meth:`~repro.diag.timing.PassTiming.measure`::

    sc = current_collector()
    with sc.span("refine-check", cat="refine", function=fn.name) as sp:
        ...
        sp.set(verdict=result.verdict)

Two cost tiers keep instrumented hot paths honest:

* **spans** produce one record each.  When tracing is disabled (the
  default), :meth:`SpanCollector.span` returns a shared no-op context —
  a branch and a singleton, no allocation — so instrumentation costs
  ~nothing in normal runs (BENCH_e12 gates this).
* **phases** (:meth:`SpanCollector.phase`) are for per-input work that
  is far too frequent to record individually (one refinement check
  enumerates hundreds of inputs).  A phase accumulates ``(count,
  wall)`` into the *enclosing open span's* phase table instead of
  emitting its own record; the context objects are cached per span and
  name, and phases deliberately skip CPU-time sampling
  (``time.process_time`` is ~3x the cost of ``perf_counter`` and was
  the bulk of the tracing-on overhead E12 measures).

Cross-process operation: each campaign worker opens its own JSONL sink
(one writer per file, append-only — the checkpoint-store discipline), a
``meta`` line records the logical pid (shard id) and OS pid, and
completed spans are written as JSON array lines of up to
:data:`SINK_BATCH` spans each.  The runner merges the
per-shard files into a Chrome-trace-event ``trace.json``
(:mod:`repro.diag.trace_export`).  Torn final lines from killed workers
are tolerated by the loader, exactly like campaign checkpoints.

This module deliberately imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, IO, List, Optional

#: schema version stamped on every meta line.
SPAN_SCHEMA = 1

#: completed spans buffered before each sink write.  A batch is
#: serialized as ONE JSON array line in a single C-encoder call — far
#: cheaper than per-span ``json.dumps`` — and written in one call,
#: amortizing the text-IO lock and syscall.  The loader accepts array
#: lines alongside plain dict lines.  A worker killed mid-shard loses
#: at most this many trailing spans, which the torn-line-tolerant
#: loader already accepts.
SINK_BATCH = 64

#: reusable compact encoder (json.dumps with separators would build a
#: fresh JSONEncoder on every call).
_ENCODE = json.JSONEncoder(separators=(",", ":")).encode


class Span:
    """One completed (or in-flight) timed region.

    A Span is its own context manager (``__enter__`` returns it,
    ``__exit__`` finishes it through the collector that created it) —
    one object per recorded region instead of a span plus a wrapper.
    """

    __slots__ = ("name", "cat", "function", "span_id", "parent_id",
                 "start", "wall", "cpu_start", "cpu", "attrs", "phases",
                 "stats", "_phase_ctxs", "_collector")

    def __init__(self, name: str, cat: str, function: str,
                 span_id: int, parent_id: Optional[int],
                 start: float, cpu_start: float,
                 collector: Optional["SpanCollector"] = None):
        self._collector = collector
        self.name = name
        self.cat = cat
        self.function = function
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.cpu_start = cpu_start
        self.wall = 0.0
        self.cpu = 0.0
        #: free-form JSON-safe attributes (set via :meth:`set`).
        self.attrs: Dict[str, Any] = {}
        #: phase name -> [count, wall seconds]; with the per-name phase
        #: context cache, allocated lazily on first use — most spans
        #: never accumulate phases.
        self.phases: Optional[Dict[str, List[float]]] = None
        self._phase_ctxs: Optional[Dict[str, "_PhaseContext"]] = None
        #: optional "pass/counter" -> increment stats delta.
        self.stats: Dict[str, int] = {}

    def __enter__(self) -> "Span":
        self._collector._stack.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._collector._finish(self)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (JSON-safe values) to this span."""
        if self.attrs:
            self.attrs.update(attrs)
        else:
            self.attrs = attrs  # adopt the kwargs dict (hot-path alloc)
        return self

    def as_dict(self) -> Dict[str, Any]:
        """The JSONL line schema (also what the merger consumes)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "id": self.span_id,
            "ts": round(self.start, 9),
            "dur": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
        }
        if self.function:
            out["fn"] = self.function
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        if self.phases:
            phases = {
                name: {"count": int(c), "seconds": round(w, 9)}
                for name, (c, w) in sorted(self.phases.items())
                if c  # a never-entered cached context leaves count 0
            }
            if phases:
                out["phases"] = phases
        if self.stats:
            out["stats"] = self.stats
        return out


class _NullContext:
    """Shared no-op span/phase context — the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullContext":
        return self

    # mirror the Span surface sites may poke at
    stats: Dict[str, int] = {}
    attrs: Dict[str, Any] = {}


NULL_SPAN = _NullContext()


class _PhaseContext:
    """Accumulates one timed region into the enclosing span's phase
    table (per-input granularity without per-input records).

    Deliberately minimal: bound directly to its ``[count, wall]``
    accumulator, one ``perf_counter`` call per side, no CPU-time
    sampling, and cached per ``(span, name)`` so the hot loop never
    allocates.  Not reentrant for the same name — real call sites
    never nest a phase inside itself.
    """

    __slots__ = ("_entry", "_start")

    def __init__(self, entry: List[float]):
        self._entry = entry

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        entry = self._entry
        entry[0] += 1
        entry[1] += time.perf_counter() - self._start
        return False


class SpanCollector:
    """Per-process span recorder with an optional streaming JSONL sink.

    ``enabled`` gates everything: a disabled collector's :meth:`span`
    and :meth:`phase` return the shared :data:`NULL_SPAN` without
    allocating.  Enabling happens either by :meth:`open`-ing a sink
    (campaign workers) or by setting ``keep=True`` for in-memory
    collection (single-compile ``--trace-out``, tests).
    """

    def __init__(self, pid: int = 0, label: str = "",
                 keep: bool = False):
        self.enabled = keep
        #: logical process id for the merged trace (campaigns: shard id).
        self.pid = pid
        self.label = label or f"pid {pid}"
        #: completed spans retained in memory when ``keep`` is set.
        self.keep = keep
        self.spans: List[Span] = []
        #: callbacks invoked with every completed Span (flight recorder).
        self.on_complete: List[Any] = []
        self._sink: Optional[IO[str]] = None
        self._buf: List[Span] = []  # completed spans awaiting a batch write
        self._stack: List[Span] = []
        self._next_id = 1

    # -- sink management ---------------------------------------------------
    def open(self, path: str, pid: Optional[int] = None,
             label: str = "") -> None:
        """Stream completed spans to ``path`` (append mode; one writer
        per file).  Writes a ``meta`` line identifying this session."""
        if pid is not None:
            self.pid = pid
        if label:
            self.label = label
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._sink = open(path, "a", encoding="utf-8")
        self._sink.write(_ENCODE({
            "kind": "meta", "schema": SPAN_SCHEMA, "pid": self.pid,
            "os_pid": os.getpid(), "label": self.label,
        }) + "\n")
        self.enabled = True

    def close(self) -> None:
        if self._sink is not None:
            self._drain()
            self._sink.flush()
            self._sink.close()
            self._sink = None
        if not self.keep:
            self.enabled = False

    def _drain(self) -> None:
        """Serialize and write the batched spans as one array line."""
        if self._buf:
            self._sink.write(
                _ENCODE([s.as_dict() for s in self._buf]) + "\n")
            self._buf.clear()

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "", function: str = ""):
        """Open a span; use as a context manager yielding the Span."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, cat, function, self._next_id, parent,
                    time.perf_counter(), time.process_time(),
                    collector=self)
        self._next_id += 1
        return span

    def phase(self, name: str):
        """Accumulate a timed region into the innermost open span."""
        stack = self._stack
        if not self.enabled or not stack:
            return NULL_SPAN
        span = stack[-1]
        ctxs = span._phase_ctxs
        if ctxs is None:
            ctxs = span._phase_ctxs = {}
            span.phases = {}
        ctx = ctxs.get(name)
        if ctx is None:
            entry = span.phases[name] = [0, 0.0]
            ctx = ctxs[name] = _PhaseContext(entry)
        return ctx

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _finish(self, span: Span) -> None:
        span.wall = time.perf_counter() - span.start
        span.cpu = time.process_time() - span.cpu_start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if self.keep:
            self.spans.append(span)
        if self._sink is not None:
            self._buf.append(span)
            if len(self._buf) >= SINK_BATCH:
                self._drain()
        for callback in self.on_complete:
            callback(span)


#: The process-wide collector instrumented code records through.  It
#: starts disabled; campaign workers and the CLI swap in enabled ones.
_DEFAULT_COLLECTOR = SpanCollector()


def current_collector() -> SpanCollector:
    return _DEFAULT_COLLECTOR


def set_collector(collector: SpanCollector) -> SpanCollector:
    """Install ``collector`` as the process default; returns the old
    one (callers restore it in a ``finally``)."""
    global _DEFAULT_COLLECTOR
    old = _DEFAULT_COLLECTOR
    _DEFAULT_COLLECTOR = collector
    return old


def span(name: str, cat: str = "", function: str = ""):
    """Record a span through the process-wide collector (no-op context
    when tracing is disabled)."""
    return _DEFAULT_COLLECTOR.span(name, cat, function=function)


def phase(name: str):
    """Accumulate a phase into the current span of the process-wide
    collector (no-op context when tracing is disabled)."""
    return _DEFAULT_COLLECTOR.phase(name)


def phase_entries(*names: str) -> Optional[List[List[float]]]:
    """Raw ``[count, seconds]`` accumulators on the innermost open
    span of the process-wide collector, or ``None`` when tracing is
    off (or no span is open).

    The escape hatch for the very hottest loops: where even the cached
    :meth:`SpanCollector.phase` context costs too much (six clock
    reads and six method calls per input for three adjacent phases), a
    call site can chain ``perf_counter`` timestamps once and add the
    differences into these lists directly.  The accumulators are the
    same ones ``phase()`` would feed, so the merged trace cannot tell
    the two styles apart.
    """
    collector = _DEFAULT_COLLECTOR
    stack = collector._stack
    if not collector.enabled or not stack:
        return None
    span = stack[-1]
    phases = span.phases
    if phases is None:
        phases = span.phases = {}
        span._phase_ctxs = {}
    out = []
    for name in names:
        entry = phases.get(name)
        if entry is None:
            entry = phases[name] = [0, 0.0]
        out.append(entry)
    return out
