"""Compiler observability: statistics, remarks, timing, and tracing.

The diagnostics layer mirrors LLVM's telemetry surfaces:

* :mod:`repro.diag.stats` — ``STATISTIC``-style named counters with a
  process-wide registry (``-stats``);
* :mod:`repro.diag.remarks` — optimization remarks with a subscriber
  API (``-Rpass`` / serialized remark files);
* :mod:`repro.diag.timing` — hierarchical per-pass × per-function
  timing (``-time-passes``);
* :mod:`repro.diag.trace` — interpreter event traces attached to
  :class:`~repro.semantics.interp.Behavior` results.

This package deliberately imports nothing from the rest of ``repro``,
so every subsystem (opt, semantics, fuzz, bench) can depend on it.
"""

from .remarks import (
    REMARK_ANALYSIS,
    REMARK_KINDS,
    REMARK_MISSED,
    REMARK_PASSED,
    Remark,
    RemarkEmitter,
    default_emitter,
    emit_remark,
    remarks_from_json,
    remarks_to_json,
)
from .stats import (
    Statistic,
    StatsRegistry,
    default_registry,
    format_stats,
    reset_stats,
    stats_snapshot,
)
from .timing import PassStats, PassTiming, TimeRecord
from .trace import ExecTrace

__all__ = [
    "REMARK_ANALYSIS", "REMARK_KINDS", "REMARK_MISSED", "REMARK_PASSED",
    "Remark", "RemarkEmitter", "default_emitter", "emit_remark",
    "remarks_from_json", "remarks_to_json",
    "Statistic", "StatsRegistry", "default_registry", "format_stats",
    "reset_stats", "stats_snapshot",
    "PassStats", "PassTiming", "TimeRecord",
    "ExecTrace",
]
