"""Compiler observability: statistics, remarks, timing, and tracing.

The diagnostics layer mirrors LLVM's telemetry surfaces:

* :mod:`repro.diag.stats` — ``STATISTIC``-style named counters with a
  process-wide registry (``-stats``);
* :mod:`repro.diag.remarks` — optimization remarks with a subscriber
  API (``-Rpass`` / serialized remark files);
* :mod:`repro.diag.timing` — hierarchical per-pass × per-function
  timing (``-time-passes``);
* :mod:`repro.diag.trace` — interpreter event traces attached to
  :class:`~repro.semantics.interp.Behavior` results;
* :mod:`repro.diag.spans` — hierarchical cross-process spans streamed
  to per-shard JSONL files;
* :mod:`repro.diag.trace_export` — merges span files into a Chrome
  trace-event ``trace.json`` and aggregates profile reports;
* :mod:`repro.diag.metrics` — typed counters/gauges/histograms, JSONL
  time series, and the Prometheus text renderer;
* :mod:`repro.diag.metrics_catalog` — the documented stat/metric name
  set (tested against everything actually emitted);
* :mod:`repro.diag.recorder` — black-box flight recorder dumped into
  crash bundles and errored-shard records.

This package deliberately imports nothing from the rest of ``repro``,
so every subsystem (opt, semantics, fuzz, bench) can depend on it.
"""

from .remarks import (
    REMARK_ANALYSIS,
    REMARK_KINDS,
    REMARK_MISSED,
    REMARK_PASSED,
    Remark,
    RemarkEmitter,
    default_emitter,
    emit_remark,
    remarks_from_json,
    remarks_to_json,
)
from .metrics import (
    MetricsRegistry,
    MetricsWriter,
    default_metrics,
    load_metrics_series,
    metrics_snapshot,
    prom_name,
    render_prometheus,
)
from .recorder import (
    FlightRecorder,
    current_recorder,
    recorder_dump,
    set_recorder,
)
from .spans import (
    NULL_SPAN,
    Span,
    SpanCollector,
    current_collector,
    phase,
    phase_entries,
    set_collector,
    span,
)
from .stats import (
    Statistic,
    StatsRegistry,
    default_registry,
    flat_delta,
    format_stats,
    reset_stats,
    stats_snapshot,
)
from .timing import PassStats, PassTiming, TimeRecord
from .trace import ExecTrace

__all__ = [
    "REMARK_ANALYSIS", "REMARK_KINDS", "REMARK_MISSED", "REMARK_PASSED",
    "Remark", "RemarkEmitter", "default_emitter", "emit_remark",
    "remarks_from_json", "remarks_to_json",
    "Statistic", "StatsRegistry", "default_registry", "flat_delta",
    "format_stats", "reset_stats", "stats_snapshot",
    "NULL_SPAN", "Span", "SpanCollector", "current_collector",
    "set_collector", "span", "phase", "phase_entries",
    "MetricsRegistry", "MetricsWriter", "default_metrics",
    "load_metrics_series", "metrics_snapshot", "prom_name",
    "render_prometheus",
    "FlightRecorder", "current_recorder", "recorder_dump", "set_recorder",
    "PassStats", "PassTiming", "TimeRecord",
    "ExecTrace",
]
