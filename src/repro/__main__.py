"""Entry point: ``python -m repro <file.ll> [flags]``."""

import sys

from .cli import main

sys.exit(main())
