"""Entry point: ``python -m repro <file.ll> [flags]``."""

import os
import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # piping report output into `head`/`grep -q` closes stdout early;
    # exit quietly instead of tracebacking (the Python docs recipe)
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(120)
