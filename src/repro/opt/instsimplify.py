"""InstSimplify: folds that return an *existing* value (no new IR).

These are the always-sound algebraic identities.  Rules that are only
sound under particular poison semantics live in
:mod:`repro.opt.instcombine` behind config toggles.
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    FreezeInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    PhiInst,
    SelectInst,
)
from ..ir.types import IntType
from ..ir.values import ConstantInt, UndefValue, Value
from ..analysis.value_tracking import (
    compute_known_bits,
    is_guaranteed_not_poison,
)
from .constfold import try_constant_fold
from .pass_manager import FunctionPass


def simplify_instruction(inst: Instruction,
                         config=None, flow=None) -> Optional[Value]:
    """Return a simpler existing value equal to ``inst``, or ``None``.

    ``flow`` is an optional
    :class:`~repro.analysis.poison_flow.PoisonFlowResult` for the
    enclosing function; when present, every poison-freedom check
    delegates to the fixpoint dataflow (with dominating-branch
    refinement at this instruction's block), which proves strictly more
    facts than the shallow walk.
    """
    from ..semantics.config import NEW

    semantics = config.semantics if config is not None else NEW
    folded = try_constant_fold(inst, semantics)
    if folded is not None:
        return folded

    if isinstance(inst, BinaryInst):
        return _simplify_binary(inst, flow)
    if isinstance(inst, IcmpInst):
        return _simplify_icmp(inst, flow)
    if isinstance(inst, SelectInst):
        return _simplify_select(inst)
    if isinstance(inst, FreezeInst):
        return _simplify_freeze(inst, flow)
    if isinstance(inst, PhiInst):
        return _simplify_phi(inst)
    return None


def _not_poison(value: Value, inst: Instruction, flow) -> bool:
    """Poison-freedom at this use site: fixpoint facts when available
    (refined at the use block), shallow walk otherwise."""
    return is_guaranteed_not_poison(
        value, flow=flow, block=inst.parent if flow is not None else None)


def _const_val(v: Value) -> Optional[int]:
    if isinstance(v, ConstantInt):
        return v.value
    return None


def _simplify_binary(inst: BinaryInst, flow=None) -> Optional[Value]:
    if not isinstance(inst.type, IntType):
        return None
    op = inst.opcode
    a, b = inst.lhs, inst.rhs
    bv = _const_val(b)
    av = _const_val(a)
    all_ones = inst.type.unsigned_max

    if op is Opcode.ADD:
        if bv == 0:
            return a
        if av == 0:
            return b
    elif op is Opcode.SUB:
        if bv == 0:
            return a
        # x - x == 0 requires x not poison/undef (undef uses may differ!)
        if a is b and _not_poison(a, inst, flow):
            return ConstantInt(inst.type, 0)
    elif op is Opcode.MUL:
        if bv == 1:
            return a
        if av == 1:
            return b
        if bv == 0 or av == 0:
            # x * 0 == 0 even for poison x?  No: poison * 0 is poison.
            # Sound only when x cannot be poison.
            other = a if bv == 0 else b
            if _not_poison(other, inst, flow):
                return ConstantInt(inst.type, 0)
    elif op is Opcode.AND:
        if bv == all_ones:
            return a
        if av == all_ones:
            return b
        if a is b and _not_poison(a, inst, flow):
            return a
        if bv == 0 and _not_poison(a, inst, flow):
            return ConstantInt(inst.type, 0)
        if av == 0 and _not_poison(b, inst, flow):
            return ConstantInt(inst.type, 0)
    elif op is Opcode.OR:
        if bv == 0:
            return a
        if av == 0:
            return b
        if a is b and _not_poison(a, inst, flow):
            return a
        if bv == all_ones and _not_poison(a, inst, flow):
            return ConstantInt(inst.type, all_ones)
        if av == all_ones and _not_poison(b, inst, flow):
            return ConstantInt(inst.type, all_ones)
    elif op is Opcode.XOR:
        if bv == 0:
            return a
        if av == 0:
            return b
        if a is b and _not_poison(a, inst, flow):
            return ConstantInt(inst.type, 0)
    elif op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        if bv == 0:
            return a
    elif op in (Opcode.UDIV, Opcode.SDIV):
        if bv == 1:
            return a
    elif op in (Opcode.UREM, Opcode.SREM):
        if bv == 1 and _not_poison(a, inst, flow):
            return ConstantInt(inst.type, 0)
    return None


def _simplify_icmp(inst: IcmpInst, flow=None) -> Optional[Value]:
    a, b = inst.lhs, inst.rhs
    i1 = IntType(1)
    if a is b and _not_poison(a, inst, flow):
        return ConstantInt(
            i1,
            int(inst.pred in (IcmpPred.EQ, IcmpPred.UGE, IcmpPred.ULE,
                              IcmpPred.SGE, IcmpPred.SLE)),
        )
    if isinstance(a.type, IntType):
        bv = _const_val(b)
        # unsigned range tautologies
        if bv == 0 and inst.pred is IcmpPred.ULT:
            if _not_poison(a, inst, flow):
                return ConstantInt(i1, 0)
        if bv == 0 and inst.pred is IcmpPred.UGE:
            if _not_poison(a, inst, flow):
                return ConstantInt(i1, 1)
        if bv == a.type.unsigned_max and inst.pred is IcmpPred.UGT:
            if _not_poison(a, inst, flow):
                return ConstantInt(i1, 0)
        folded = _fold_icmp_by_known_bits(inst)
        if folded is not None:
            return folded
    return None


def _fold_icmp_by_known_bits(inst: IcmpInst) -> Optional[Value]:
    """Fold comparisons decided by known bits.

    Section 5.6 discipline: known-bits facts hold only *up to poison*,
    and that is sufficient here — this is pure expression rewriting.  If
    an operand is poison the original icmp is poison and the constant we
    substitute is covered by it; no ``is_guaranteed_not_poison`` check is
    needed (contrast with LICM's hoisting client, which does need one).
    """
    from ..ir.instructions import Instruction as _Inst

    if not isinstance(inst.lhs, _Inst) and not isinstance(inst.rhs, _Inst):
        return None
    ka = compute_known_bits(inst.lhs)
    kb = compute_known_bits(inst.rhs)
    i1 = IntType(1)
    pred = inst.pred
    # unsigned interval [min, max] per side
    a_lo, a_hi = ka.min_unsigned, ka.max_unsigned
    b_lo, b_hi = kb.min_unsigned, kb.max_unsigned
    if pred is IcmpPred.ULT:
        if a_hi < b_lo:
            return ConstantInt(i1, 1)
        if a_lo >= b_hi:
            return ConstantInt(i1, 0)
    elif pred is IcmpPred.ULE:
        if a_hi <= b_lo:
            return ConstantInt(i1, 1)
        if a_lo > b_hi:
            return ConstantInt(i1, 0)
    elif pred is IcmpPred.UGT:
        if a_lo > b_hi:
            return ConstantInt(i1, 1)
        if a_hi <= b_lo:
            return ConstantInt(i1, 0)
    elif pred is IcmpPred.UGE:
        if a_lo >= b_hi:
            return ConstantInt(i1, 1)
        if a_hi < b_lo:
            return ConstantInt(i1, 0)
    elif pred.is_equality:
        # disjoint known bits: definitely unequal
        conflict = (ka.ones & kb.zeros) | (kb.ones & ka.zeros)
        if conflict:
            return ConstantInt(i1, int(pred is IcmpPred.NE))
    return None


def _simplify_select(inst: SelectInst) -> Optional[Value]:
    # select c, x, x -> x: the condition's poison would make the result
    # poison under the ARITHMETIC and CONDITIONAL readings, so this is a
    # refinement in every configuration (poison covers x).
    if inst.true_value is inst.false_value:
        return inst.true_value
    return None


def _simplify_freeze(inst: FreezeInst, flow=None) -> Optional[Value]:
    v = inst.value
    # freeze(freeze(x)) -> freeze(x) (Section 6's InstCombine addition).
    if isinstance(v, FreezeInst):
        return v
    # freeze(x) -> x when x is provably never poison/undef at this
    # program point.  With a fixpoint result this includes values a
    # dominating branch already observed (branch-on-poison is UB), which
    # the shallow walk can never prove.
    if _not_poison(v, inst, flow):
        return v
    return None


def _simplify_phi(inst: PhiInst) -> Optional[Value]:
    distinct = {id(v) for v, _ in inst.incoming if v is not inst}
    if len(distinct) == 1:
        for v, _ in inst.incoming:
            if v is not inst:
                return v
    return None


class InstSimplify(FunctionPass):
    name = "instsimplify"

    #: consult the poison dataflow fixpoint (strictly stronger facts);
    #: disable to fall back to the shallow walk only.
    use_flow = True

    def run_on_function(self, fn: Function) -> bool:
        from ..analysis.poison_flow import analyze_poison_flow

        flow = (analyze_poison_flow(fn, self.config.semantics)
                if self.use_flow else None)
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if inst.type.is_void or inst.is_terminator:
                    continue
                simpler = simplify_instruction(inst, self.config, flow=flow)
                if simpler is not None and simpler is not inst:
                    inst.replace_all_uses_with(simpler)
                    block.erase(inst)
                    changed = True
        return changed
