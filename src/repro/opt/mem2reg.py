"""mem2reg: promote allocas to SSA registers.

The classic phi-placement algorithm over iterated dominance frontiers
(Cytron et al.), as run by ``opt -mem2reg`` immediately after Clang-style
codegen.  Only allocas whose address never escapes (all uses are direct
loads and stores) are promoted.

The UB tie-in: a load from a promoted-but-never-stored location is a
read of uninitialized memory, which is ``undef`` under OLD and
``poison`` under NEW — exactly Figure 2's uninitialized ``x``.  The pass
consults the semantics configuration for which constant to substitute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.dominators import DominatorTree
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.values import PoisonValue, UndefValue, Value
from .pass_manager import FunctionPass


def _is_promotable(alloca: AllocaInst) -> bool:
    if not alloca.allocated_type.is_int:
        return False  # arrays/structs stay in memory
    for use in alloca.uses:
        user = use.user
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca \
                and user.value is not alloca:
            continue
        return False
    return True


class Mem2Reg(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration:
            return False
        # The renaming walk only covers reachable blocks; drop the rest
        # first so no stale load/store keeps the alloca alive.
        from ..analysis.cfg import remove_unreachable_blocks

        remove_unreachable_blocks(fn)
        allocas = [
            inst for inst in fn.instructions()
            if isinstance(inst, AllocaInst) and _is_promotable(inst)
        ]
        if not allocas:
            return False
        dt = DominatorTree(fn)
        df = dt.dominance_frontier()
        for alloca in allocas:
            self._promote(fn, alloca, dt, df)
        return True

    def _uninit_value(self, alloca: AllocaInst) -> Value:
        if self.config.semantics.has_undef:
            return UndefValue(alloca.allocated_type)
        return PoisonValue(alloca.allocated_type)

    def _promote(self, fn: Function, alloca: AllocaInst,
                 dt: DominatorTree, df) -> None:
        stores = [u.user for u in alloca.uses
                  if isinstance(u.user, StoreInst)]
        loads = [u.user for u in alloca.uses if isinstance(u.user, LoadInst)]

        # Fast path: single store dominating everything.
        def_blocks = {s.parent for s in stores}

        # Phi placement at the iterated dominance frontier of the defs.
        phi_blocks: Set[BasicBlock] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            for frontier in df.get(block, ()):
                if frontier not in phi_blocks:
                    phi_blocks.add(frontier)
                    work.append(frontier)

        phis: Dict[BasicBlock, PhiInst] = {}
        for block in phi_blocks:
            phi = PhiInst(alloca.allocated_type,
                          (alloca.name or "mem") + ".phi")
            block.instructions.insert(0, phi)
            phi.parent = block
            phis[block] = phi

        uninit = self._uninit_value(alloca)

        # Renaming walk over the dominator tree.
        def rename(block: BasicBlock, incoming: Value) -> None:
            current = incoming
            if block in phis:
                current = phis[block]
            for inst in list(block.instructions):
                if isinstance(inst, LoadInst) and inst.pointer is alloca:
                    inst.replace_all_uses_with(current)
                    block.erase(inst)
                elif isinstance(inst, StoreInst) and inst.pointer is alloca:
                    current = inst.value
                    block.erase(inst)
            for succ in block.successors():
                phi = phis.get(succ)
                if phi is not None:
                    phi.add_incoming(current, block)
            for child in dt.children.get(block, ()):  # dominator children
                rename(child, current)

        rename(fn.entry, uninit)
        alloca.erase_from_parent()

        # Prune phis in unreachable-from-def positions with missing
        # incoming edges (preds never visited): give them uninit.
        from ..analysis.cfg import predecessor_map

        preds = predecessor_map(fn)
        for block, phi in phis.items():
            have = set(phi.incoming_blocks)
            for pred in preds[block]:
                if pred not in have:
                    phi.add_incoming(uninit, pred)
            if phi.num_operands == 0:
                phi.replace_all_uses_with(uninit)
                block.erase(phi)
