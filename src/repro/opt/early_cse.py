"""EarlyCSE: block-local redundancy elimination over memory.

Two pieces, both scoped to a single basic block and invalidated
conservatively (any store or call clobbers everything, since distinct
pointer SSA values may alias):

* *store-to-load forwarding*: a load from the same pointer SSA value as
  an earlier store (with no intervening clobber) returns the stored
  value;
* *load-load CSE*: two loads from the same pointer with no intervening
  clobber return the same value.

This is what cleans up the Section 5.3 bit-field sequences after GVN
has unified the address computations: the reload after each masked
store disappears.

Poison note: forwarding is exact — the load would have returned
precisely the stored value's bits through ty-down/ty-up, including
poison bits (scalar round-trip of a poisoned scalar is the poisoned
scalar).  Forwarding a *narrower-typed* load from a wider store is NOT
done; only same-type accesses match.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import CallInst, Instruction, LoadInst, StoreInst
from ..ir.values import Value
from .pass_manager import FunctionPass


class EarlyCSE(FunctionPass):
    name = "early-cse"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            #: pointer SSA value -> (value available there, its type)
            available: Dict[Value, Value] = {}
            for inst in list(block.instructions):
                if isinstance(inst, StoreInst):
                    # aliasing: any store may clobber any other pointer
                    available.clear()
                    available[inst.pointer] = inst.value
                elif isinstance(inst, CallInst):
                    available.clear()
                elif isinstance(inst, LoadInst):
                    known = available.get(inst.pointer)
                    if known is not None and known.type is inst.type:
                        inst.replace_all_uses_with(known)
                        block.erase(inst)
                        changed = True
                    else:
                        available[inst.pointer] = inst
        return changed
