"""The optimizer: passes, pipelines, and configuration."""

from .clone import clone_instruction, clone_region
from .codegenprepare import CodeGenPrepare
from .constfold import try_constant_fold
from .dce import DCE, is_trivially_dead
from .early_cse import EarlyCSE
from .freeze_opts import FreezeOpts
from .gvn import GVN
from .inliner import Inliner, inline_call
from .instcombine import InstCombine
from .instsimplify import InstSimplify, simplify_instruction
from .licm import LICM
from .load_widen import LoadWidening
from .loop_unswitch import LoopUnswitch
from .mem2reg import Mem2Reg
from .pass_manager import FunctionPass, OptConfig, PassManager, PassStats
from .pipelines import (
    baseline_config,
    codegen_pipeline,
    o2_pipeline,
    prototype_config,
    quick_pipeline,
    single_pass_pipeline,
)
from .reassociate import Reassociate
from .resilience import (
    ChaosEngine,
    ChaosFault,
    ChaosPass,
    GuardedPassError,
    GuardedPassManager,
    PassFailure,
    bisect_failure,
    guarded_pipeline,
    replay_bundle,
)
from .sccp import SCCP
from .simplify_cfg import SimplifyCFG
from .sink import Sink

__all__ = [
    "clone_instruction", "clone_region",
    "CodeGenPrepare", "try_constant_fold", "DCE", "is_trivially_dead",
    "EarlyCSE", "FreezeOpts", "GVN", "Inliner", "inline_call", "InstCombine",
    "InstSimplify", "simplify_instruction", "LICM", "LoopUnswitch",
    "LoadWidening", "Mem2Reg",
    "FunctionPass", "OptConfig", "PassManager", "PassStats",
    "baseline_config", "codegen_pipeline", "o2_pipeline",
    "prototype_config", "quick_pipeline", "single_pass_pipeline",
    "Reassociate", "SCCP", "SimplifyCFG", "Sink",
    "ChaosEngine", "ChaosFault", "ChaosPass", "GuardedPassError",
    "GuardedPassManager", "PassFailure", "bisect_failure",
    "guarded_pipeline", "replay_bundle",
]
