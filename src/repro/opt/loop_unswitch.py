"""Loop unswitching (Sections 3.3 and 5.1).

Hoists a loop-invariant conditional branch out of the loop by versioning
the loop::

    while (c) { if (c2) foo else bar }
      ==>
    if (c2') { while (c) foo } else { while (c) bar }

Moving the branch on ``c2`` to a point where the loop may never have
executed can *introduce* a branch on poison.  Under branch-on-poison-UB
(the NEW semantics, and the reading GVN needs) that is a miscompilation;
the paper's fix (Section 5.1) is ``c2' = freeze c2``.  The
``unswitch_freeze`` toggle selects the fixed (freeze) or historical
(no freeze) variant.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..diag import REMARK_ANALYSIS, Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BranchInst,
    FreezeInst,
    Instruction,
    PhiInst,
)
from ..ir.values import Constant, Value
from .pass_manager import FunctionPass


NUM_UNSWITCHED = Statistic(
    "loop-unswitch", "num-loops-unswitched", "Loops unswitched")
NUM_CONDITIONS_FROZEN = Statistic(
    "loop-unswitch", "num-conditions-frozen",
    "Hoisted conditions frozen (the Section 5.1 fix)")


class LoopUnswitch(FunctionPass):
    name = "loop-unswitch"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration:
            return False
        changed = False
        # Re-analyze after each unswitch (the CFG changes drastically).
        for _ in range(4):
            li = LoopInfo(fn)
            candidate = self._find_candidate(li)
            if candidate is None:
                break
            loop, branch = candidate
            if self._unswitch(fn, loop, branch, li.dt):
                changed = True
            else:
                break
        return changed

    # -- candidate search -----------------------------------------------------
    def _find_candidate(self, li: LoopInfo):
        for loop in sorted(li.loops, key=lambda l: l.depth):
            for block in loop.blocks:
                term = block.terminator
                if not isinstance(term, BranchInst) or not term.is_conditional:
                    continue
                cond = term.cond
                if isinstance(cond, Constant):
                    continue  # constant folding's job
                if not loop.is_invariant(cond):
                    continue
                # Both targets must stay in the loop (an exiting branch is
                # the loop guard, not an unswitchable body branch).
                if not all(t in loop.blocks for t in term.successors()):
                    continue
                if term.true_block is term.false_block:
                    continue
                if self._already_unswitched(block):
                    continue
                return loop, term
        return None

    @staticmethod
    def _already_unswitched(block: BasicBlock) -> bool:
        return block.name.endswith(".unswitched")

    # -- the transformation ---------------------------------------------------------
    def _unswitch(self, fn: Function, loop: Loop, branch: BranchInst,
                  dt: DominatorTree) -> bool:
        from .clone import clone_region

        preheader = loop.preheader()
        if preheader is None:
            return False
        exits = loop.exit_blocks()
        if len(exits) != 1:
            return False
        exit_block = exits[0]
        exiting = [
            b for b in loop.blocks
            if exit_block in b.successors()
        ]
        if len(exiting) != 1:
            return False
        if any(p not in loop.blocks for p in exit_block.predecessors()):
            return False

        cond = branch.cond

        # Values defined in the loop and used after it need merge phis.
        escaping: List[Instruction] = []
        for block in loop.blocks:
            for inst in block.instructions:
                for use in inst.uses:
                    user = use.user
                    if isinstance(user, Instruction) \
                            and user.parent not in loop.blocks:
                        escaping.append(inst)
                        break
        # Uses in exit-block phis are fine; uses elsewhere need the
        # merge phi to be placed in the exit block, which requires the
        # exit block to be dominated by the loop — guaranteed here since
        # all its preds are in the loop.

        block_map, value_map = clone_region(fn, loop.blocks, ".us")

        # Fold the unswitched branch: original loop takes the true side,
        # the clone takes the false side.
        branch_block = branch.parent
        branch_block.erase(branch)
        branch_block.append(BranchInst(target=branch.targets[0]))
        clone_branch_block = block_map[branch_block]
        cloned_term = clone_branch_block.terminator
        false_target = cloned_term.targets[1]
        clone_branch_block.erase(cloned_term)
        clone_branch_block.append(BranchInst(target=false_target))

        # New dispatch: preheader branches on (frozen) condition.
        header = loop.header
        clone_header = block_map[header]
        pre_term = preheader.terminator
        preheader.erase(pre_term)
        dispatch_cond: Value = cond
        NUM_UNSWITCHED.inc()
        self.remark(
            f"unswitched loop at %{header.name} on invariant condition "
            f"{cond.ref()}", block=preheader, fn=fn)
        if self.config.unswitch_freeze:
            # Section 5.1: freeze the hoisted condition so that a poison
            # c2 forces a nondeterministic choice instead of UB.
            freeze = FreezeInst(cond, (cond.name or "cond") + ".fr")
            preheader.append(freeze)
            dispatch_cond = freeze
            NUM_CONDITIONS_FROZEN.inc()
            self.remark(
                f"froze hoisted condition {cond.ref()}",
                inst=freeze, block=preheader, fn=fn)
        else:
            self.remark(
                f"hoisted condition {cond.ref()} without freeze "
                "(legacy; may introduce a branch on poison)",
                kind=REMARK_ANALYSIS, block=preheader, fn=fn)
        preheader.append(
            BranchInst(cond=dispatch_cond, true_block=header,
                       false_block=clone_header)
        )
        branch_block.name += ".unswitched"
        clone_branch_block.name += ".unswitched"

        # Header phis: original keeps its preheader edge; the clone's
        # phis must take their entry value from the preheader as well.
        for phi in clone_header.phis():
            phi.replace_incoming_block(preheader, preheader)  # no-op, clarity

        # Exit block: merge escaping values from the two versions.
        clone_exiting = block_map[exiting[0]]
        for phi in exit_block.phis():
            incoming = phi.incoming_for_block(exiting[0])
            phi.add_incoming(value_map.get(incoming, incoming), clone_exiting)
        for inst in escaping:
            uses_outside = [
                use for use in inst.uses
                if isinstance(use.user, Instruction)
                and use.user.parent not in loop.blocks
                and use.user.parent not in block_map.values()
            ]
            uses_outside = [
                use for use in uses_outside
                if not (isinstance(use.user, PhiInst)
                        and use.user.parent is exit_block)
            ]
            if not uses_outside:
                continue
            merge = PhiInst(inst.type, inst.name + ".merge")
            exit_block.instructions.insert(0, merge)
            merge.parent = exit_block
            merge.add_incoming(inst, exiting[0])
            merge.add_incoming(value_map.get(inst, inst), clone_exiting)
            for use in uses_outside:
                if use.user is not merge:
                    use.set(merge)
        return True
