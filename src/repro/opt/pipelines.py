"""Standard pass pipelines.

``o2_pipeline`` approximates the -O2 middle-end ordering the paper
validated (Section 6): peephole + CFG cleanup, inlining, scalar
optimizations, loop optimizations, then late cleanup.
``codegen_pipeline`` is the late, pre-ISel stage (CodeGenPrepare).

``baseline`` = legacy configuration (OLD semantics, historical pass
behaviors); ``prototype`` = the paper's fixed configuration (NEW
semantics, freeze-based fixes).  The benchmark harness compiles every
workload under both and compares (experiments E1–E4).
"""

from __future__ import annotations

from typing import List, Optional

from ..semantics.config import NEW, OLD, SemanticsConfig
from .codegenprepare import CodeGenPrepare
from .dce import DCE
from .early_cse import EarlyCSE
from .freeze_opts import FreezeOpts
from .gvn import GVN
from .inliner import Inliner
from .instcombine import InstCombine
from .instsimplify import InstSimplify
from .licm import LICM
from .loop_unswitch import LoopUnswitch
from .mem2reg import Mem2Reg
from ..diag import PassTiming
from .pass_manager import FunctionPass, OptConfig, PassManager
from .poison_check import PoisonFlowCheck
from .reassociate import Reassociate
from .sccp import SCCP
from .simplify_cfg import SimplifyCFG
from .sink import Sink


def o2_pipeline(config: Optional[OptConfig] = None,
                timing: Optional[PassTiming] = None) -> PassManager:
    config = config or OptConfig.fixed()
    passes: List[FunctionPass] = [
        Mem2Reg(config),
        SimplifyCFG(config),
        InstCombine(config),
        Inliner(config),
        SCCP(config),
        SimplifyCFG(config),
        Reassociate(config),
        GVN(config),
        EarlyCSE(config),
        InstCombine(config),
        LICM(config),
        LoopUnswitch(config),
        SimplifyCFG(config),
        GVN(config),
        InstCombine(config),
        FreezeOpts(config),
        DCE(config),
    ]
    return PassManager(passes, max_iterations=2, timing=timing)


def quick_pipeline(config: Optional[OptConfig] = None,
                   timing: Optional[PassTiming] = None) -> PassManager:
    """-O1-ish: peephole and cleanup only."""
    config = config or OptConfig.fixed()
    return PassManager(
        [SimplifyCFG(config), InstCombine(config), DCE(config)],
        max_iterations=2, timing=timing,
    )


def codegen_pipeline(config: Optional[OptConfig] = None,
                     timing: Optional[PassTiming] = None) -> PassManager:
    config = config or OptConfig.fixed()
    return PassManager(
        [CodeGenPrepare(config), FreezeOpts(config), DCE(config)],
        max_iterations=1, timing=timing,
    )


def baseline_config() -> OptConfig:
    """Pre-paper LLVM: OLD semantics, historical (buggy) pass variants."""
    return OptConfig.legacy(OLD)


def prototype_config() -> OptConfig:
    """The paper's prototype: NEW semantics, freeze-based fixes."""
    return OptConfig.fixed(NEW)


#: Single-pass pipelines, used by the E5 opt-fuzz validation to blame
#: individual passes (the paper validated InstCombine, GVN, Reassociation
#: and SCCP separately).
def single_pass_pipeline(pass_name: str,
                         config: Optional[OptConfig] = None,
                         timing: Optional[PassTiming] = None) -> PassManager:
    config = config or OptConfig.fixed()
    factory = {
        "mem2reg": Mem2Reg,
        "instcombine": InstCombine,
        "instsimplify": InstSimplify,
        "gvn": GVN,
        "early-cse": EarlyCSE,
        "reassociate": Reassociate,
        "sccp": SCCP,
        "simplifycfg": SimplifyCFG,
        "licm": LICM,
        "loop-unswitch": LoopUnswitch,
        "dce": DCE,
        "freeze-opts": FreezeOpts,
        "sink": Sink,
        "codegenprepare": CodeGenPrepare,
        "inline": Inliner,
        # Analysis-only: replays lint-audit / lint-attack bundles.
        "poison-flow": PoisonFlowCheck,
    }
    if pass_name not in factory:
        raise ValueError(f"unknown pass {pass_name!r}")
    return PassManager([factory[pass_name](config)], max_iterations=1,
                       timing=timing)
