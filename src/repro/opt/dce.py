"""Dead code elimination: remove side-effect-free instructions with no
uses, iterating to a fixpoint."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Instruction
from .pass_manager import FunctionPass


def is_trivially_dead(inst: Instruction) -> bool:
    if inst.num_uses:
        return False
    if inst.is_terminator:
        return False
    return not inst.may_have_side_effects


class DCE(FunctionPass):
    name = "dce"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in fn.blocks:
                for inst in list(reversed(block.instructions)):
                    if is_trivially_dead(inst):
                        block.erase(inst)
                        changed = progress = True
        return changed
