"""Fault injection: prove the resilience machinery works.

A :class:`ChaosEngine` decides, deterministically from a seed, which
pass applications fault and how; :class:`ChaosPass` wraps a real pass
and consults the engine on every run.  Two fault kinds:

* ``raise``   — the wrapped pass application raises :class:`ChaosFault`
  before the inner pass runs (a crashing pass);
* ``corrupt`` — the inner pass runs normally, then the function is
  structurally corrupted in a verifier-detectable way (a silently
  miscompiling pass — the bug class ``--verify-each`` exists to catch).

Determinism is the load-bearing property: the engine numbers executed
applications 1, 2, 3, … and derives each decision from
``(seed, application index)`` alone.  Re-running the same pipeline with
the same seed replays the identical fault schedule, which is what lets
the bisection driver pinpoint an injected fault and lets campaign
records stay independent of worker count.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import time
from typing import Iterable, List, Optional, Tuple

from ...diag import Statistic
from ...ir.function import Function
from ...ir.instructions import PhiInst
from ..pass_manager import FunctionPass

CHAOS_RAISE = "raise"
CHAOS_CORRUPT = "corrupt"
CHAOS_MIXED = "mixed"
CHAOS_MODES = (CHAOS_RAISE, CHAOS_CORRUPT, CHAOS_MIXED)

NUM_FAULTS = Statistic(
    "chaos", "num-faults-injected",
    "Total faults injected by chaos mode")
NUM_RAISE_FAULTS = Statistic(
    "chaos", "num-raise-faults",
    "Injected exceptions (crashing-pass simulation)")
NUM_CORRUPT_FAULTS = Statistic(
    "chaos", "num-corrupt-faults",
    "Injected IR corruptions (silently-buggy-pass simulation)")
NUM_KILL_FAULTS = Statistic(
    "chaos", "num-kill-faults",
    "Worker processes SIGKILLed mid-shard by service chaos")
NUM_IO_FAULTS = Statistic(
    "chaos", "num-io-faults",
    "Injected I/O faults (corrupted memo records, dropped/stalled "
    "connections)")


class ChaosFault(RuntimeError):
    """The exception a ``raise`` fault throws; marks itself injected so
    the guard can label the failure (and its crash bundle) as chaos."""

    injected = True


class ChaosEngine:
    """Seeded fault schedule over executed pass applications."""

    def __init__(self, seed: int = 0, rate: float = 0.05,
                 mode: str = CHAOS_MIXED,
                 fail_at: Iterable[int] = ()):
        if mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("chaos rate must be in [0, 1]")
        self.seed = seed
        self.rate = rate
        self.mode = mode
        #: explicit injection points (1-based executed-application
        #: indices); when non-empty, ``rate`` is ignored.
        self.fail_at = frozenset(fail_at)
        self.count = 0
        self.injected = 0

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"chaos:{self.seed}:{index}")

    def plan(self, index: int) -> Optional[str]:
        """The fault (if any) for executed application ``index``."""
        rng = self._rng(index)
        if self.fail_at:
            if index not in self.fail_at:
                return None
        elif rng.random() >= self.rate:
            return None
        if self.mode == CHAOS_MIXED:
            return rng.choice((CHAOS_RAISE, CHAOS_CORRUPT))
        return self.mode

    def next_event(self) -> Tuple[int, Optional[str]]:
        """Number the next executed application and plan its fault."""
        self.count += 1
        action = self.plan(self.count)
        if action is not None:
            self.injected += 1
            NUM_FAULTS.inc()
            (NUM_RAISE_FAULTS if action == CHAOS_RAISE
             else NUM_CORRUPT_FAULTS).inc()
        return self.count, action

    def corrupt(self, fn: Function, index: int) -> str:
        """Deterministically corrupt ``fn``; returns a description."""
        return inject_corruption(fn, self._rng(index))

    def as_dict(self) -> dict:
        return {"seed": self.seed, "rate": self.rate, "mode": self.mode,
                "fail_at": sorted(self.fail_at)}


def inject_corruption(fn: Function, rng: random.Random) -> str:
    """Apply one verifier-detectable structural corruption to ``fn``.

    Every corruption keeps use lists consistent (no dangling ``Use``
    entries on shared values), so a later rollback leaves the world
    clean.
    """
    choices = []
    blocks_with_term = [b for b in fn.blocks if b.terminator is not None]
    if blocks_with_term:
        choices.append("drop-terminator")
        if any(len(b) > 1 for b in blocks_with_term):
            choices.append("misplace-instruction")
    phis = [i for i in fn.instructions()
            if isinstance(i, PhiInst) and i.incoming_blocks]
    if phis:
        choices.append("duplicate-phi-incoming")
    if not choices:
        return "no corruption applicable"

    kind = rng.choice(choices)
    if kind == "drop-terminator":
        block = rng.choice(blocks_with_term)
        term = block.instructions.pop()
        term.drop_all_operands()
        term.parent = None
        return f"dropped terminator of %{block.name}"
    if kind == "misplace-instruction":
        block = rng.choice([b for b in blocks_with_term if len(b) > 1])
        # Move a non-terminator after the terminator: "terminator in the
        # middle of the block".
        inst = block.instructions.pop(len(block.instructions) - 2)
        block.instructions.append(inst)
        return f"moved {inst.opcode.value} past the terminator of %{block.name}"
    phi = rng.choice(phis)
    pick = rng.randrange(len(phi.incoming_blocks))
    phi.add_incoming(phi.incoming[pick][0], phi.incoming_blocks[pick])
    return f"duplicated a phi incoming edge in %{phi.parent.name}"


class ChaosPass(FunctionPass):
    """Wraps a real pass; injects faults per the shared engine.

    The wrapper reports the inner pass's name so stats, remarks, timing,
    and bundles attribute failures to the pass under test, not to the
    harness.
    """

    def __init__(self, inner: FunctionPass, engine: ChaosEngine):
        super().__init__(inner.config)
        self.inner = inner
        self.engine = engine
        self.name = inner.name
        #: the fault injected by the most recent run (None = clean) —
        #: read by the guard to mark failures as chaos-injected.
        self.last_action: Optional[str] = None

    def run_on_function(self, fn: Function) -> bool:
        index, action = self.engine.next_event()
        # last_action is only set once the fault actually lands, so a
        # genuine inner-pass crash is never mislabeled as injected.
        self.last_action = None
        if action == CHAOS_RAISE:
            self.last_action = CHAOS_RAISE
            raise ChaosFault(
                f"injected exception at pass application #{index} "
                f"({self.inner.name} on @{fn.name})")
        changed = self.inner.run_on_function(fn)
        if action == CHAOS_CORRUPT:
            what = self.engine.corrupt(fn, index)
            self.last_action = CHAOS_CORRUPT
            self.remark(f"chaos: {what} (application #{index})", fn=fn)
            return True
        return changed

    def __repr__(self) -> str:
        return f"<ChaosPass {self.inner!r}>"


def wrap_with_chaos(passes, engine: ChaosEngine):
    """Wrap every pass in a pipeline's pass list with one shared engine."""
    return [ChaosPass(p, engine) for p in passes]


class ServiceChaos:
    """Process- and I/O-level faults against a live validation service.

    Where :class:`ChaosEngine` faults *pass applications inside* a
    worker, this faults the *environment around* the service — the
    three failure families the self-healing machinery exists to
    contain:

    * :meth:`kill_worker` — SIGKILL a shard worker mid-run (the
      supervisor must respawn it and re-run the shard, verdicts
      unchanged);
    * :meth:`corrupt_memo_record` — flip one byte inside a complete
      record of an on-disk memo file (the checksum layer must
      quarantine exactly that record and keep serving the rest);
    * :meth:`drop_connection` / :meth:`stall_connection` — abandon a
      request socket mid-frame, or hold one open half-written (the
      server must shrug both off without failing other clients).

    Deterministic from its seed, like the engine: every byte position
    and file choice comes from one seeded RNG, and every injected fault
    is appended to :attr:`events` for the bench report.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(f"service-chaos:{seed}")
        self.events: List[dict] = []

    def _record(self, kind: str, **detail) -> None:
        self.events.append({"kind": kind, **detail})
        NUM_FAULTS.inc()
        (NUM_KILL_FAULTS if kind == "kill-worker" else NUM_IO_FAULTS).inc()

    # -- process faults ------------------------------------------------------
    def kill_worker(self, executor) -> Optional[int]:
        """SIGKILL one live shard worker of a
        :class:`~repro.campaign.executor.ShardExecutor`; returns the
        pid, or None when nothing was running."""
        running = getattr(executor, "_running", {})
        for job_id, entry in sorted(running.items()):
            proc = entry[0]
            pid = getattr(proc, "pid", None)
            if pid is None or not proc.is_alive():
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                continue
            self._record("kill-worker", pid=pid, job_id=job_id)
            return pid
        return None

    def kill_worker_when_busy(self, executor, timeout: float = 10.0,
                              poll: float = 0.01) -> Optional[int]:
        """Wait until the executor has a live worker, then kill it."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            pid = self.kill_worker(executor)
            if pid is not None:
                return pid
            time.sleep(poll)
        return None

    # -- I/O faults ----------------------------------------------------------
    def corrupt_memo_record(self, memo_dir: str) -> Optional[str]:
        """Flip one byte inside one complete record line of one
        ``memo-*.jsonl`` under ``memo_dir``; returns a description, or
        None when no complete record exists to corrupt."""
        candidates = []
        try:
            names = sorted(os.listdir(memo_dir))
        except OSError:
            return None
        for name in names:
            if not (name.startswith("memo-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(memo_dir, name)
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                continue
            # only complete (newline-terminated) lines are fair game —
            # a torn tail is the *writer's* fault family, not bit rot.
            end = data.rfind(b"\n")
            if end > 0:
                candidates.append((path, data, end))
        if not candidates:
            return None
        path, data, end = candidates[
            self._rng.randrange(len(candidates))]
        lines = data[:end].split(b"\n")
        idx = self._rng.randrange(len(lines))
        line = lines[idx]
        if not line:
            return None
        pos = self._rng.randrange(len(line))
        old = line[pos]
        new = old ^ 0x20 if 0x21 <= (old ^ 0x20) <= 0x7E else 0x21
        if new == old:
            new = 0x23
        lines[idx] = line[:pos] + bytes([new]) + line[pos + 1:]
        patched = b"\n".join(lines) + data[end:]
        try:
            with open(path, "wb") as fh:
                fh.write(patched)
        except OSError:
            return None
        what = (f"flipped byte {pos} of record {idx} in "
                f"{os.path.basename(path)}")
        self._record("corrupt-memo", file=os.path.basename(path),
                     record=idx, byte=pos)
        return what

    def drop_connection(self, host: str, port: int) -> bool:
        """Connect, send half a request frame, vanish (RST via
        SO_LINGER 0 where supported, plain close otherwise)."""
        try:
            sock = socket.create_connection((host, port), timeout=5)
            try:
                sock.sendall(b'{"op": "ping", "id": "chaos-dr')
                try:
                    import struct
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
                except OSError:
                    pass
            finally:
                sock.close()
        except OSError:
            return False
        self._record("drop-connection", host=host, port=port)
        return True

    def stall_connection(self, host: str, port: int,
                         hold: float = 0.25) -> bool:
        """Hold a half-written frame open for ``hold`` seconds, then
        close without ever completing it."""
        try:
            sock = socket.create_connection((host, port), timeout=5)
            try:
                sock.sendall(b'{"op": "lint", "payload": {"sou')
                time.sleep(hold)
            finally:
                sock.close()
        except OSError:
            return False
        self._record("stall-connection", host=host, port=port,
                     hold=hold)
        return True

    def report(self) -> dict:
        kinds: dict = {}
        for event in self.events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        return {"seed": self.seed, "events": len(self.events),
                "by_kind": kinds}
