"""Fault injection: prove the resilience machinery works.

A :class:`ChaosEngine` decides, deterministically from a seed, which
pass applications fault and how; :class:`ChaosPass` wraps a real pass
and consults the engine on every run.  Two fault kinds:

* ``raise``   — the wrapped pass application raises :class:`ChaosFault`
  before the inner pass runs (a crashing pass);
* ``corrupt`` — the inner pass runs normally, then the function is
  structurally corrupted in a verifier-detectable way (a silently
  miscompiling pass — the bug class ``--verify-each`` exists to catch).

Determinism is the load-bearing property: the engine numbers executed
applications 1, 2, 3, … and derives each decision from
``(seed, application index)`` alone.  Re-running the same pipeline with
the same seed replays the identical fault schedule, which is what lets
the bisection driver pinpoint an injected fault and lets campaign
records stay independent of worker count.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Tuple

from ...diag import Statistic
from ...ir.function import Function
from ...ir.instructions import PhiInst
from ..pass_manager import FunctionPass

CHAOS_RAISE = "raise"
CHAOS_CORRUPT = "corrupt"
CHAOS_MIXED = "mixed"
CHAOS_MODES = (CHAOS_RAISE, CHAOS_CORRUPT, CHAOS_MIXED)

NUM_FAULTS = Statistic(
    "chaos", "num-faults-injected",
    "Total faults injected by chaos mode")
NUM_RAISE_FAULTS = Statistic(
    "chaos", "num-raise-faults",
    "Injected exceptions (crashing-pass simulation)")
NUM_CORRUPT_FAULTS = Statistic(
    "chaos", "num-corrupt-faults",
    "Injected IR corruptions (silently-buggy-pass simulation)")


class ChaosFault(RuntimeError):
    """The exception a ``raise`` fault throws; marks itself injected so
    the guard can label the failure (and its crash bundle) as chaos."""

    injected = True


class ChaosEngine:
    """Seeded fault schedule over executed pass applications."""

    def __init__(self, seed: int = 0, rate: float = 0.05,
                 mode: str = CHAOS_MIXED,
                 fail_at: Iterable[int] = ()):
        if mode not in CHAOS_MODES:
            raise ValueError(f"unknown chaos mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("chaos rate must be in [0, 1]")
        self.seed = seed
        self.rate = rate
        self.mode = mode
        #: explicit injection points (1-based executed-application
        #: indices); when non-empty, ``rate`` is ignored.
        self.fail_at = frozenset(fail_at)
        self.count = 0
        self.injected = 0

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"chaos:{self.seed}:{index}")

    def plan(self, index: int) -> Optional[str]:
        """The fault (if any) for executed application ``index``."""
        rng = self._rng(index)
        if self.fail_at:
            if index not in self.fail_at:
                return None
        elif rng.random() >= self.rate:
            return None
        if self.mode == CHAOS_MIXED:
            return rng.choice((CHAOS_RAISE, CHAOS_CORRUPT))
        return self.mode

    def next_event(self) -> Tuple[int, Optional[str]]:
        """Number the next executed application and plan its fault."""
        self.count += 1
        action = self.plan(self.count)
        if action is not None:
            self.injected += 1
            NUM_FAULTS.inc()
            (NUM_RAISE_FAULTS if action == CHAOS_RAISE
             else NUM_CORRUPT_FAULTS).inc()
        return self.count, action

    def corrupt(self, fn: Function, index: int) -> str:
        """Deterministically corrupt ``fn``; returns a description."""
        return inject_corruption(fn, self._rng(index))

    def as_dict(self) -> dict:
        return {"seed": self.seed, "rate": self.rate, "mode": self.mode,
                "fail_at": sorted(self.fail_at)}


def inject_corruption(fn: Function, rng: random.Random) -> str:
    """Apply one verifier-detectable structural corruption to ``fn``.

    Every corruption keeps use lists consistent (no dangling ``Use``
    entries on shared values), so a later rollback leaves the world
    clean.
    """
    choices = []
    blocks_with_term = [b for b in fn.blocks if b.terminator is not None]
    if blocks_with_term:
        choices.append("drop-terminator")
        if any(len(b) > 1 for b in blocks_with_term):
            choices.append("misplace-instruction")
    phis = [i for i in fn.instructions()
            if isinstance(i, PhiInst) and i.incoming_blocks]
    if phis:
        choices.append("duplicate-phi-incoming")
    if not choices:
        return "no corruption applicable"

    kind = rng.choice(choices)
    if kind == "drop-terminator":
        block = rng.choice(blocks_with_term)
        term = block.instructions.pop()
        term.drop_all_operands()
        term.parent = None
        return f"dropped terminator of %{block.name}"
    if kind == "misplace-instruction":
        block = rng.choice([b for b in blocks_with_term if len(b) > 1])
        # Move a non-terminator after the terminator: "terminator in the
        # middle of the block".
        inst = block.instructions.pop(len(block.instructions) - 2)
        block.instructions.append(inst)
        return f"moved {inst.opcode.value} past the terminator of %{block.name}"
    phi = rng.choice(phis)
    pick = rng.randrange(len(phi.incoming_blocks))
    phi.add_incoming(phi.incoming[pick][0], phi.incoming_blocks[pick])
    return f"duplicated a phi incoming edge in %{phi.parent.name}"


class ChaosPass(FunctionPass):
    """Wraps a real pass; injects faults per the shared engine.

    The wrapper reports the inner pass's name so stats, remarks, timing,
    and bundles attribute failures to the pass under test, not to the
    harness.
    """

    def __init__(self, inner: FunctionPass, engine: ChaosEngine):
        super().__init__(inner.config)
        self.inner = inner
        self.engine = engine
        self.name = inner.name
        #: the fault injected by the most recent run (None = clean) —
        #: read by the guard to mark failures as chaos-injected.
        self.last_action: Optional[str] = None

    def run_on_function(self, fn: Function) -> bool:
        index, action = self.engine.next_event()
        # last_action is only set once the fault actually lands, so a
        # genuine inner-pass crash is never mislabeled as injected.
        self.last_action = None
        if action == CHAOS_RAISE:
            self.last_action = CHAOS_RAISE
            raise ChaosFault(
                f"injected exception at pass application #{index} "
                f"({self.inner.name} on @{fn.name})")
        changed = self.inner.run_on_function(fn)
        if action == CHAOS_CORRUPT:
            what = self.engine.corrupt(fn, index)
            self.last_action = CHAOS_CORRUPT
            self.remark(f"chaos: {what} (application #{index})", fn=fn)
            return True
        return changed

    def __repr__(self) -> str:
        return f"<ChaosPass {self.inner!r}>"


def wrap_with_chaos(passes, engine: ChaosEngine):
    """Wrap every pass in a pipeline's pass list with one shared engine."""
    return [ChaosPass(p, engine) for p in passes]
