"""Function snapshots: detached deep clones for rollback.

The guarded pass manager snapshots each function *before* every pass
application.  A snapshot is a structural deep copy of the function body
(blocks and instructions cloned, external references — arguments,
constants, callees, globals — shared), detached from any module, so
taking one never mutates the function or its module.

On a pass failure the snapshot is transplanted back
(:func:`restore_function`), which restores the function byte-for-byte
(same printer output) while keeping the *identity* of the
:class:`~repro.ir.function.Function` object — callers and the module
symbol table keep working.  On success the snapshot is discarded
(:func:`discard_snapshot`), unlinking its operand uses so the use lists
of shared values (arguments, constants) do not accumulate stale entries
across thousands of pass applications.
"""

from __future__ import annotations

from typing import Dict, List

from ...ir.basicblock import BasicBlock
from ...ir.function import Function
from ...ir.instructions import BranchInst, CallInst, PhiInst, SwitchInst
from ...ir.printer import print_function
from ...ir.values import GlobalVariable, Value
from ..clone import clone_instruction


def clone_function(fn: Function) -> Function:
    """A detached structural deep copy of ``fn``.

    Blocks and instructions are cloned; arguments map index-for-index to
    fresh :class:`Argument` objects; everything defined *outside* the
    function (constants, globals, callees) stays shared.  The clone has
    ``module=None`` and never appears in any symbol table.
    """
    clone = Function(fn.function_type, fn.name, module=None,
                     arg_names=[a.name for a in fn.args])
    value_map: Dict[Value, Value] = {
        a: ca for a, ca in zip(fn.args, clone.args)
    }
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in fn.blocks:
        block_map[block] = BasicBlock(block.name, parent=clone)
    for block in fn.blocks:
        target = block_map[block]
        for inst in block.instructions:
            new_inst = clone_instruction(inst)
            target.append(new_inst)
            value_map[inst] = new_inst
    for block in fn.blocks:
        for inst in block_map[block].instructions:
            for i, op in enumerate(inst.operands):
                if op in value_map:
                    inst.set_operand(i, value_map[op])
            if isinstance(inst, PhiInst):
                inst.incoming_blocks = [
                    block_map.get(b, b) for b in inst.incoming_blocks
                ]
            if isinstance(inst, BranchInst):
                inst.targets = [block_map.get(t, t) for t in inst.targets]
            if isinstance(inst, SwitchInst):
                inst.default = block_map.get(inst.default, inst.default)
                inst.cases = [
                    (c, block_map.get(b, b)) for c, b in inst.cases
                ]
    return clone


def restore_function(fn: Function, snapshot: Function) -> None:
    """Transplant ``snapshot``'s body into ``fn``, replacing whatever is
    there (typically the corrupted remains of a failed pass run).

    The snapshot is *consumed*: its blocks become ``fn``'s blocks, with
    snapshot arguments remapped back to ``fn``'s own arguments.  The
    discarded body is fully unlinked, so shared values keep clean use
    lists.
    """
    for block in fn.blocks:
        for inst in block.instructions:
            inst.drop_all_operands()
            inst.parent = None
        block.parent = None
    fn.blocks = []

    arg_map: Dict[Value, Value] = {
        sa: a for sa, a in zip(snapshot.args, fn.args)
    }
    for block in snapshot.blocks:
        block.parent = fn
        fn.blocks.append(block)
    snapshot.blocks = []
    for block in fn.blocks:
        for inst in block.instructions:
            for i, op in enumerate(inst.operands):
                if op in arg_map:
                    inst.set_operand(i, arg_map[op])


def print_standalone(fn: Function) -> str:
    """Print ``fn`` as a *self-contained* module: referenced globals and
    called functions are emitted as definitions/declarations first, so
    the text round-trips through :func:`~repro.ir.parser.parse_function`
    (crash bundles rely on this)."""
    parts: List[str] = []
    seen_globals = set()
    seen_fns = set()

    def note(op: Value) -> None:
        if isinstance(op, GlobalVariable) and op.name not in seen_globals:
            seen_globals.add(op.name)
            init = (f" {op.initializer.ref()}"
                    if op.initializer is not None else "")
            parts.append(f"@{op.name} = global {op.value_type}{init}")
        elif (isinstance(op, Function) and op is not fn
              and op.name not in seen_fns):
            seen_fns.add(op.name)
            params = ", ".join(str(p) for p in op.function_type.params)
            parts.append(
                f"declare {op.function_type.ret} @{op.name}({params})")

    for inst in fn.instructions():
        # the callee of a call is an out-of-band attribute, not an operand
        if isinstance(inst, CallInst):
            note(inst.callee)
        for op in inst.operands:
            note(op)
    parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"


def discard_snapshot(snapshot: Function) -> None:
    """Unlink an unused snapshot from every shared value's use list."""
    for block in snapshot.blocks:
        for inst in block.instructions:
            inst.drop_all_operands()
            inst.parent = None
        block.parent = None
    snapshot.blocks = []
