"""The guarded pass manager: snapshot, verify, roll back, continue.

LLVM survives buggy passes with CrashRecoveryContext, ``-verify-each``
and ``-opt-bisect-limit``; this module is our analog.
:class:`GuardedPassManager` runs the same pipelines as
:class:`~repro.opt.pass_manager.PassManager` but snapshots every
function before every pass application and treats a raised exception
*or* a ``verify-each`` rejection as a recoverable event:

* the function rolls back to the pre-pass snapshot,
* a ``resilience`` remark and stats (``resilience/num-recoveries`` plus
  a per-pass failure counter) record the event,
* a replayable crash bundle is captured (written to ``crash_dir`` when
  set, always kept in-memory on the :class:`PassFailure` record),

and then the **policy** decides what happens next:

* ``strict``     — re-raise as :class:`GuardedPassError` (the CLI maps
  this to a nonzero exit code);
* ``recover``    — keep running the rest of the pipeline;
* ``quarantine`` — recover, and disable a pass entirely after it fails
  ``quarantine_after`` times.

``bisect_limit`` is the ``-opt-bisect-limit`` analog: a global counter
numbers every pass application and applications beyond the limit are
skipped, which is what the bisection driver binary-searches over.
"""

from __future__ import annotations

import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...diag import (
    REMARK_ANALYSIS,
    Statistic,
    default_registry,
    emit_remark,
    recorder_dump,
    span,
)
from ...diag.timing import PassTiming
from ...ir.function import Function
from ...ir.module import Module
from ...ir.verifier import VerificationError, verify_function
from ..pass_manager import FunctionPass, PassManager
from .bundle import make_bundle_payload, write_bundle
from .chaos import ChaosFault
from .snapshot import (
    clone_function,
    discard_snapshot,
    print_standalone,
    restore_function,
)

POLICY_STRICT = "strict"
POLICY_RECOVER = "recover"
POLICY_QUARANTINE = "quarantine"
POLICIES = (POLICY_STRICT, POLICY_RECOVER, POLICY_QUARANTINE)

NUM_RECOVERIES = Statistic(
    "resilience", "num-recoveries",
    "Pass failures rolled back with the pipeline continuing")
NUM_GUARD_FAILURES = Statistic(
    "resilience", "num-guard-failures",
    "Guarded pass applications that raised or failed verification")
NUM_PASS_EXCEPTIONS = Statistic(
    "resilience", "num-pass-exceptions",
    "Guarded pass applications that raised an exception")
NUM_VERIFY_FAILURES = Statistic(
    "resilience", "num-verify-failures",
    "Guarded pass applications rejected by --verify-each")
NUM_QUARANTINED = Statistic(
    "resilience", "num-quarantined-passes",
    "Passes disabled after repeated failures (quarantine policy)")
NUM_BISECT_SKIPPED = Statistic(
    "resilience", "num-bisect-skipped",
    "Pass applications skipped beyond the opt-bisect limit")


@dataclass
class PassFailure:
    """One recovered (or re-raised) guarded pass failure."""

    pass_name: str
    function: str
    #: "exception" (the pass raised) or "verify" (--verify-each rejected
    #: the transformed IR).
    kind: str
    error: str
    traceback: str
    #: the global 1-based pass-application index (the bisect counter).
    application: int
    #: chaos fault kind when the failure was injected, else None.
    injected_action: Optional[str] = None
    #: the full crash-bundle payload (always built).
    bundle: dict = field(default_factory=dict)
    #: on-disk bundle path when the manager has a ``crash_dir``.
    bundle_path: Optional[str] = None

    @property
    def injected(self) -> bool:
        return self.injected_action is not None


class GuardedPassError(Exception):
    """Raised under the ``strict`` policy; carries the failure record
    (the function has already been rolled back when this propagates)."""

    def __init__(self, failure: PassFailure):
        super().__init__(
            f"pass {failure.pass_name!r} failed on @{failure.function} "
            f"(application #{failure.application}, {failure.kind}): "
            f"{failure.error}")
        self.failure = failure


class GuardedPassManager(PassManager):
    """A :class:`PassManager` with crash recovery, verify-each gating,
    an opt-bisect counter, and crash-bundle capture."""

    def __init__(self, passes: List[FunctionPass], max_iterations: int = 3,
                 timing: Optional[PassTiming] = None, *,
                 policy: str = POLICY_RECOVER,
                 verify_each: bool = False,
                 forbid_undef: bool = False,
                 quarantine_after: int = 3,
                 bisect_limit: Optional[int] = None,
                 crash_dir: Optional[str] = None,
                 seed: Optional[int] = None):
        super().__init__(passes, max_iterations=max_iterations,
                         timing=timing)
        if policy not in POLICIES:
            raise ValueError(f"unknown recovery policy {policy!r}")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.policy = policy
        self.verify_each = verify_each
        self.forbid_undef = forbid_undef
        self.quarantine_after = quarantine_after
        self.bisect_limit = bisect_limit
        self.crash_dir = crash_dir
        self.seed = seed
        #: global pass-application counter (the -opt-bisect-limit analog).
        self.pass_counter = 0
        #: every counted application: (index, pass name, function name).
        self.applications: List[Tuple[int, str, str]] = []
        self.failures: List[PassFailure] = []
        self.quarantined: Set[str] = set()
        self._failure_counts: Dict[str, int] = {}

    # -- queries -----------------------------------------------------------
    @property
    def num_recoveries(self) -> int:
        return len(self.failures)

    def application(self, index: int) -> Tuple[int, str, str]:
        """The (index, pass, function) triple of application ``index``."""
        return self.applications[index - 1]

    # -- execution ---------------------------------------------------------
    def run_on_function(self, fn: Function) -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            changed = False
            for p in self.passes:
                changed |= self._run_guarded(p, fn)
            changed_any |= changed
            if not changed:
                break
        return changed_any

    def _run_guarded(self, p: FunctionPass, fn: Function) -> bool:
        self.pass_counter += 1
        index = self.pass_counter
        self.applications.append((index, p.name, fn.name))
        if self.bisect_limit is not None and index > self.bisect_limit:
            NUM_BISECT_SKIPPED.inc()
            return False
        if p.name in self.quarantined:
            return False

        snapshot = clone_function(fn)
        with span(p.name, cat="pass", function=fn.name) as sp:
            try:
                with self.timing.measure(p.name, fn.name) as m:
                    m.changed = p.run_on_function(fn)
                if self.verify_each:
                    verify_function(fn, forbid_undef=self.forbid_undef)
                discard_snapshot(snapshot)
                sp.set(changed=m.changed)
                return m.changed
            except Exception as e:
                sp.set(failed=True)
                self._handle_failure(p, fn, snapshot, e, index)
                return False

    # -- failure handling --------------------------------------------------
    def _handle_failure(self, p: FunctionPass, fn: Function,
                        snapshot: Function, error: Exception,
                        index: int) -> None:
        kind = "verify" if isinstance(error, VerificationError) else "exception"
        injected_action = None
        if isinstance(error, ChaosFault):
            injected_action = "raise"
        elif getattr(p, "last_action", None) == "corrupt":
            injected_action = "corrupt"
        error_text = f"{type(error).__name__}: {error}"
        tb = traceback_module.format_exc()
        pre_ir = print_standalone(snapshot)
        restore_function(fn, snapshot)

        NUM_GUARD_FAILURES.inc()
        (NUM_VERIFY_FAILURES if kind == "verify"
         else NUM_PASS_EXCEPTIONS).inc()
        default_registry().add(p.name, "num-guard-failures")

        payload = make_bundle_payload(
            pre_ir=pre_ir, pass_name=p.name, application=index,
            kind=kind, error=error_text, traceback_text=tb,
            config=getattr(p, "config", None), function=fn.name,
            seed=self.seed, injected_action=injected_action,
            policy=self.policy, flight_recorder=recorder_dump(),
        )
        failure = PassFailure(
            pass_name=p.name, function=fn.name, kind=kind,
            error=error_text, traceback=tb, application=index,
            injected_action=injected_action, bundle=payload,
        )
        if self.crash_dir is not None:
            failure.bundle_path = write_bundle(self.crash_dir, payload)
        self.failures.append(failure)

        first_line = error_text.splitlines()[0] if error_text else kind
        emit_remark(
            "resilience",
            f"rolled back {p.name} on @{fn.name} "
            f"(application #{index}, {kind}"
            f"{', chaos-injected' if injected_action else ''}): "
            f"{first_line}",
            kind=REMARK_ANALYSIS, function=fn.name,
        )

        if self.policy == POLICY_STRICT:
            raise GuardedPassError(failure) from error
        NUM_RECOVERIES.inc()
        if self.policy == POLICY_QUARANTINE:
            count = self._failure_counts.get(p.name, 0) + 1
            self._failure_counts[p.name] = count
            if count >= self.quarantine_after and p.name not in self.quarantined:
                self.quarantined.add(p.name)
                NUM_QUARANTINED.inc()
                emit_remark(
                    "resilience",
                    f"quarantined {p.name} after {count} failure(s); "
                    f"the pass is disabled for the rest of this pipeline",
                    kind=REMARK_ANALYSIS, function=fn.name,
                )

    # -- reporting ---------------------------------------------------------
    def resilience_report(self) -> dict:
        """Machine-readable summary for the CLI's ``resilience`` section."""
        return {
            "policy": self.policy,
            "verify_each": self.verify_each,
            "applications": self.pass_counter,
            "failures": len(self.failures),
            "recoveries": (len(self.failures)
                           if self.policy != POLICY_STRICT else 0),
            "quarantined": sorted(self.quarantined),
            "bisect_limit": self.bisect_limit,
            "bundles": [f.bundle_path for f in self.failures
                        if f.bundle_path],
            "failed_passes": sorted(
                {f"{f.pass_name}@{f.function}#{f.application}"
                 for f in self.failures}),
        }


def run_guarded(manager: GuardedPassManager, module: Module) -> bool:
    """Convenience alias mirroring ``PassManager.run``."""
    return manager.run(module)
