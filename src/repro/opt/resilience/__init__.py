"""Resilient pass pipelines: crash recovery, verify-each, opt-bisect,
crash bundles, and chaos fault injection.

The paper shows optimization passes silently disagreeing about UB
semantics; this package makes the pipeline *survive* buggy passes
instead of corrupting modules or killing campaign shards.  See
:mod:`repro.opt.resilience.guard` for the core machinery.
"""

from __future__ import annotations

from typing import Optional

from ...diag.timing import PassTiming
from ..pass_manager import OptConfig
from ..pipelines import (
    codegen_pipeline,
    o2_pipeline,
    quick_pipeline,
    single_pass_pipeline,
)
from .bisect import BisectResult, bisect_failure
from .bundle import (
    ReplayResult,
    bundle_id,
    list_bundles,
    load_bundle,
    make_bundle_payload,
    replay_bundle,
    write_bundle,
)
from .chaos import (
    CHAOS_CORRUPT,
    CHAOS_MIXED,
    CHAOS_MODES,
    CHAOS_RAISE,
    ChaosEngine,
    ChaosFault,
    ChaosPass,
    ServiceChaos,
    inject_corruption,
    wrap_with_chaos,
)
from .guard import (
    POLICIES,
    POLICY_QUARANTINE,
    POLICY_RECOVER,
    POLICY_STRICT,
    GuardedPassError,
    GuardedPassManager,
    PassFailure,
)
from .snapshot import clone_function, discard_snapshot, restore_function

_NAMED_PIPELINES = {
    "o2": o2_pipeline,
    "quick": quick_pipeline,
    "codegen": codegen_pipeline,
}


def guarded_pipeline(name: str = "o2",
                     config: Optional[OptConfig] = None,
                     timing: Optional[PassTiming] = None, *,
                     policy: str = POLICY_RECOVER,
                     verify_each: bool = False,
                     forbid_undef: bool = False,
                     quarantine_after: int = 3,
                     bisect_limit: Optional[int] = None,
                     crash_dir: Optional[str] = None,
                     chaos: Optional[ChaosEngine] = None
                     ) -> GuardedPassManager:
    """A guarded version of a named pipeline (``o2``, ``quick``,
    ``codegen``, or any single-pass name).

    When a chaos engine is given, every pass is wrapped with
    :class:`ChaosPass` sharing that engine, and the manager's ``seed``
    is taken from it (so crash bundles record the fault schedule).
    """
    factory = _NAMED_PIPELINES.get(name)
    base = (factory(config, timing=timing) if factory is not None
            else single_pass_pipeline(name, config, timing=timing))
    passes = base.passes
    seed = None
    if chaos is not None:
        passes = wrap_with_chaos(passes, chaos)
        seed = chaos.seed
    return GuardedPassManager(
        passes, max_iterations=base.max_iterations, timing=base.timing,
        policy=policy, verify_each=verify_each, forbid_undef=forbid_undef,
        quarantine_after=quarantine_after, bisect_limit=bisect_limit,
        crash_dir=crash_dir, seed=seed,
    )


__all__ = [
    "BisectResult", "bisect_failure",
    "ReplayResult", "bundle_id", "list_bundles", "load_bundle",
    "make_bundle_payload", "replay_bundle", "write_bundle",
    "CHAOS_CORRUPT", "CHAOS_MIXED", "CHAOS_MODES", "CHAOS_RAISE",
    "ChaosEngine", "ChaosFault", "ChaosPass", "ServiceChaos",
    "inject_corruption", "wrap_with_chaos",
    "POLICIES", "POLICY_QUARANTINE", "POLICY_RECOVER", "POLICY_STRICT",
    "GuardedPassError", "GuardedPassManager", "PassFailure",
    "clone_function", "discard_snapshot", "restore_function",
    "guarded_pipeline",
]
