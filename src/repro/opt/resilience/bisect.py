"""Opt-bisect: binary-search the first bad pass application.

LLVM's ``-opt-bisect-limit=N`` numbers every pass application and skips
the ones beyond N; debugging a miscompile is then a binary search over
N.  :func:`bisect_failure` automates that search: given a way to build
a fresh (limited) pipeline, a way to build a fresh module, and a
user-supplied checker over the optimized module, it finds the smallest
limit at which the checker starts failing — i.e. **the exact pass
application that introduces the problem** — in O(log N) pipeline runs.

The search assumes the standard bisect invariant (once bad, stays bad
as the limit grows), which holds for deterministic pipelines: the first
K applications behave identically whatever the limit, because skipped
applications never run and chaos fault schedules are keyed to executed
application indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ...ir.module import Module
from .guard import GuardedPassManager

PipelineFactory = Callable[[Optional[int]], GuardedPassManager]
ModuleFactory = Callable[[], Module]
Checker = Callable[[Module], bool]


@dataclass
class BisectResult:
    """Outcome of a bisection run."""

    #: smallest 1-based application index whose inclusion makes the
    #: checker fail; 0 when no failure was found (or the unoptimized
    #: module already fails).
    culprit: int
    pass_name: str
    function: str
    total_applications: int
    probes: int
    #: "found", "clean" (full pipeline passes the checker), or
    #: "fails-without-passes" (the input module itself fails).
    status: str

    @property
    def found(self) -> bool:
        return self.status == "found"

    def as_dict(self) -> dict:
        return {
            "culprit": self.culprit,
            "pass": self.pass_name,
            "function": self.function,
            "total_applications": self.total_applications,
            "probes": self.probes,
            "status": self.status,
        }

    def __str__(self) -> str:
        if self.status == "clean":
            return (f"bisect: checker passes after all "
                    f"{self.total_applications} pass application(s)")
        if self.status == "fails-without-passes":
            return "bisect: checker fails before any pass runs"
        return (f"bisect: first bad pass application is #{self.culprit} "
                f"of {self.total_applications}: {self.pass_name} on "
                f"@{self.function} ({self.probes} probe(s))")


def bisect_failure(make_pipeline: PipelineFactory,
                   make_module: ModuleFactory,
                   checker: Checker,
                   log: Optional[Callable[[str], None]] = None
                   ) -> BisectResult:
    """Find the first pass application that makes ``checker`` fail.

    ``make_pipeline(limit)`` must return a fresh
    :class:`GuardedPassManager` with that ``bisect_limit`` (``None`` =
    unlimited); ``make_module()`` a fresh copy of the input; and
    ``checker(module)`` True when the optimized module is acceptable.
    A pipeline run that raises counts as a failing probe.
    """
    probes = 0

    def probe(limit: Optional[int]) -> Tuple[bool, GuardedPassManager]:
        nonlocal probes
        probes += 1
        manager = make_pipeline(limit)
        module = make_module()
        try:
            manager.run(module)
            ok = bool(checker(module))
        except Exception:
            ok = False
        if log is not None:
            shown = "all" if limit is None else str(limit)
            log(f"bisect probe: limit={shown} -> "
                f"{'ok' if ok else 'BAD'}")
        return ok, manager

    full_ok, full_manager = probe(None)
    total = full_manager.pass_counter
    if full_ok:
        return BisectResult(0, "", "", total, probes, "clean")

    base_ok, _ = probe(0)
    if not base_ok:
        return BisectResult(0, "", "", total, probes,
                            "fails-without-passes")

    lo, hi = 0, total  # invariant: limit=lo ok, limit=hi bad
    last_bad_manager = full_manager
    while hi - lo > 1:
        mid = (lo + hi) // 2
        ok, manager = probe(mid)
        if ok:
            lo = mid
        else:
            hi = mid
            last_bad_manager = manager

    # Identify application ``hi`` from a run that executed it.  The
    # last bad probe had limit >= hi, so its application log contains
    # the culprit triple.
    if last_bad_manager.pass_counter < hi:
        _, last_bad_manager = probe(hi)
    _, pass_name, function = last_bad_manager.application(hi)
    return BisectResult(hi, pass_name, function, total, probes, "found")
