"""Crash bundles: replayable records of guarded-pass failures.

When a guarded pass application fails (raise or verifier rejection),
the guard packages everything needed to reproduce it off-line:

* ``before.ll``   — the pre-pass IR (the rollback snapshot);
* ``bundle.json`` — pass name, global application index, the
  :class:`~repro.opt.pass_manager.OptConfig`, the error and traceback,
  the chaos seed (when injected), and a content-derived bundle id.

Bundle directory names are **content-hashed and deterministic** —
``<pass>-<application %04d>-<sha256 prefix>`` — with no wall-clock
component, so re-running a campaign produces byte-identical bundle
paths and two distinct failures can never collide.

``python -m repro crash replay <bundle>`` re-runs the recorded pass on
the recorded IR.  For chaos-injected failures the recorded injection is
re-applied (same fault kind at application 1), so even synthetic
crashes replay faithfully.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import List, Optional

from ...ir import parse_function, verify_function
from ...ir.parser import ParseError
from ..pass_manager import OptConfig
from ..pipelines import single_pass_pipeline
from .chaos import CHAOS_RAISE, ChaosEngine, ChaosFault, ChaosPass

MANIFEST_NAME = "bundle.json"
BEFORE_IR_NAME = "before.ll"


def bundle_id(payload: dict) -> str:
    """Deterministic, collision-free directory name for a failure.

    Hashes the identifying content (pre-pass IR, pass, application
    index, error) — never timestamps — so reruns reproduce the same
    name and distinct failures get distinct names.
    """
    key = json.dumps(
        {
            "pass": payload.get("pass", ""),
            "application": payload.get("application", 0),
            "kind": payload.get("kind", ""),
            "error": payload.get("error", ""),
            "before_ir": payload.get("before_ir", ""),
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
    safe_pass = "".join(
        c if c.isalnum() or c in "-_" else "-"
        for c in payload.get("pass", "unknown")
    )
    return f"{safe_pass}-{payload.get('application', 0):04d}-{digest[:12]}"


def make_bundle_payload(*, pre_ir: str, pass_name: str, application: int,
                        kind: str, error: str, traceback_text: str,
                        config: Optional[OptConfig] = None,
                        function: str = "", seed: Optional[int] = None,
                        injected_action: Optional[str] = None,
                        policy: str = "",
                        flight_recorder: Optional[dict] = None) -> dict:
    """The self-contained (JSON-serializable) form of one failure.

    ``flight_recorder`` is the black-box dump of the worker's last
    events before the failure (:func:`repro.diag.recorder_dump`).  It
    rides in the manifest but is excluded from :func:`bundle_id`, which
    hashes only the identifying content — two runs of the same failure
    still land in the same bundle directory.
    """
    payload = {
        "schema": 1,
        "pass": pass_name,
        "function": function,
        "application": application,
        "kind": kind,
        "error": error,
        "traceback": traceback_text,
        "opt_config": config.as_dict() if config is not None else None,
        "seed": seed,
        "injected": injected_action is not None,
        "injected_action": injected_action,
        "policy": policy,
        "flight_recorder": flight_recorder,
        "before_ir": pre_ir,
    }
    payload["bundle_id"] = bundle_id(payload)
    return payload


def write_bundle(root: str, payload: dict) -> str:
    """Materialize a payload under ``root``; returns the bundle path.

    Idempotent: the same failure always writes the same directory with
    the same contents.
    """
    path = os.path.join(root, payload.get("bundle_id") or bundle_id(payload))
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, BEFORE_IR_NAME), "w",
              encoding="utf-8") as f:
        f.write(payload.get("before_ir", ""))
        if not payload.get("before_ir", "").endswith("\n"):
            f.write("\n")
    manifest = {k: v for k, v in payload.items() if k != "before_ir"}
    with open(os.path.join(path, MANIFEST_NAME), "w",
              encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_bundle(path: str) -> dict:
    """Read a bundle directory back into payload form."""
    with open(os.path.join(path, MANIFEST_NAME), encoding="utf-8") as f:
        payload = json.load(f)
    with open(os.path.join(path, BEFORE_IR_NAME), encoding="utf-8") as f:
        payload["before_ir"] = f.read()
    return payload


def list_bundles(root: str) -> List[str]:
    """Every bundle directory under ``root``, sorted by name."""
    if not os.path.isdir(root):
        return []
    out = []
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if os.path.isfile(os.path.join(path, MANIFEST_NAME)):
            out.append(path)
    return out


@dataclass
class ReplayResult:
    """Outcome of replaying one crash bundle."""

    bundle: str
    pass_name: str
    reproduced: bool
    outcome: str
    error: str = ""

    def as_dict(self) -> dict:
        return {"bundle": self.bundle, "pass": self.pass_name,
                "reproduced": self.reproduced, "outcome": self.outcome,
                "error": self.error}


def replay_bundle(path: str) -> ReplayResult:
    """Re-run the recorded pass on the recorded pre-pass IR.

    * a recorded real failure *reproduces* when the pass raises again or
      the verifier rejects its output;
    * a chaos-injected failure is replayed by re-injecting the recorded
      fault kind at application 1 of a fresh engine.
    """
    payload = load_bundle(path)
    pass_name = payload.get("pass", "")
    try:
        fn = parse_function(payload["before_ir"])
    except (ParseError, ValueError) as e:
        return ReplayResult(path, pass_name, False,
                            f"bundle IR does not parse: {e}")
    config_dict = payload.get("opt_config")
    config = (OptConfig.from_dict(config_dict)
              if config_dict else OptConfig.fixed())
    try:
        manager = single_pass_pipeline(pass_name, config)
    except ValueError as e:
        return ReplayResult(path, pass_name, False, f"unknown pass: {e}")
    the_pass = manager.passes[0]

    injected_action = payload.get("injected_action")
    if injected_action:
        engine = ChaosEngine(seed=payload.get("seed") or 0, rate=1.0,
                             mode=injected_action, fail_at=(1,))
        the_pass = ChaosPass(the_pass, engine)

    try:
        the_pass.run_on_function(fn)
        verify_function(fn)
    except ChaosFault as e:
        return ReplayResult(path, pass_name, True,
                            "re-injected fault reproduced", repr(e))
    except Exception as e:  # real pass crash or verifier rejection
        kind = payload.get("kind", "")
        same_kind = (
            (kind == "verify") == (type(e).__name__ == "VerificationError")
        )
        outcome = ("failure reproduced" if same_kind
                   else "failed, but with a different failure kind")
        return ReplayResult(path, pass_name, True, outcome, repr(e))

    if injected_action == CHAOS_RAISE:
        # The injected exception should have fired before the pass ran.
        return ReplayResult(path, pass_name, False,
                            "recorded raise fault did not re-fire")
    return ReplayResult(path, pass_name, False,
                        "pass ran clean; failure did not reproduce")
