"""Global value numbering.

Two ingredients, matching Section 3.3's description:

1. *Expression-based redundancy elimination*: instructions computing a
   syntactically identical expression (same opcode, value-numbered
   operands, flags) are replaced by a dominating representative.

2. *Equality propagation*: after ``br (icmp eq %a, %b), %T, %F``, within
   blocks dominated by the true edge, ``%a`` may be replaced by ``%b``
   (one representative is picked).  This is the step that passes a
   potentially-poison ``%y`` into a call in the paper's example — it is
   sound **only if branching on poison is UB** (so that the guarding
   branch would already have been UB when the compared values were
   poison).  The ``gvn_replace_with_equal`` toggle exists so the
   experiments can run GVN under the semantics where it is unsound.

``freeze`` instructions are never value-numbered: two freezes of the
same value may legitimately differ (Section 6 notes GVN would need to
replace *all* uses of a freeze to fold two of them; like the paper's
prototype, we conservatively do not).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..diag import Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    PhiInst,
    SelectInst,
)
from ..ir.values import Argument, Constant, Value
from .pass_manager import FunctionPass


NUM_ELIMINATED = Statistic(
    "gvn", "num-instructions-eliminated",
    "Redundant instructions replaced by a dominating leader")
NUM_EQUALITY_REPLACEMENTS = Statistic(
    "gvn", "num-equality-replacements",
    "Operands replaced via a dominating equality (Section 3.3)")
NUM_FREEZES_FOLDED = Statistic(
    "gvn", "num-freezes-folded",
    "Equivalent freezes folded (Section 6 extension)")


class _ValueTable:
    def __init__(self):
        self._numbers: Dict[int, int] = {}  # id(value) -> number
        self._constants: Dict[Constant, int] = {}
        self._expressions: Dict[Tuple, int] = {}
        self._next = 0

    def _fresh(self) -> int:
        self._next += 1
        return self._next

    def number_of(self, value: Value) -> int:
        if isinstance(value, Constant):
            try:
                if value in self._constants:
                    return self._constants[value]
                n = self._fresh()
                self._constants[value] = n
                return n
            except TypeError:
                pass
        if id(value) in self._numbers:
            return self._numbers[id(value)]
        n = self._fresh()
        self._numbers[id(value)] = n
        return n

    def expression_key(self, inst: Instruction,
                       fold_freeze: bool = False) -> Optional[Tuple]:
        """A hashable key identifying the expression, or ``None`` when the
        instruction must not be value-numbered."""
        if isinstance(inst, FreezeInst):
            if not fold_freeze:
                return None  # each freeze is its own value
            # Extension (Section 6): freezes of the same value may be
            # folded *provided all uses are replaced* — which
            # replace_all_uses_with guarantees.  Folding shrinks the
            # nondeterminism (two independent choices become one), a
            # refinement.
            return (inst.opcode, self.number_of(inst.value),
                    str(inst.type))
        if inst.may_have_side_effects or inst.is_terminator:
            return None
        if isinstance(inst, PhiInst):
            return None
        ops = tuple(self.number_of(op) for op in inst.operands)
        if isinstance(inst, BinaryInst):
            if inst.is_commutative:
                ops = tuple(sorted(ops))
            return (inst.opcode, ops, inst.nsw, inst.nuw, inst.exact,
                    str(inst.type))
        if isinstance(inst, IcmpInst):
            a, b = ops
            pred = inst.pred
            if b < a:
                a, b = b, a
                pred = pred.swapped()
            return (inst.opcode, pred, a, b)
        if isinstance(inst, CastInst):
            return (inst.opcode, ops, str(inst.type))
        if isinstance(inst, SelectInst):
            return (inst.opcode, ops, str(inst.type))
        if isinstance(inst, GepInst):
            return (inst.opcode, ops, inst.inbounds, str(inst.type))
        return None

    def assign(self, inst: Instruction, number: int) -> None:
        self._numbers[id(inst)] = number

    def merge(self, a: Value, b: Value) -> None:
        """Record that ``a`` and ``b`` hold equal values."""
        na = self.number_of(a)
        self._numbers[id(b)] = na


class GVN(FunctionPass):
    name = "gvn"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration or not fn.blocks:
            return False
        dt = DominatorTree(fn)
        table = _ValueTable()
        #: value number -> list of (defining block, representative value)
        leaders: Dict[int, List[Tuple[BasicBlock, Value]]] = {}
        #: block -> equalities (old value -> representative) active there
        changed = False

        equalities = self._collect_branch_equalities(fn, dt) \
            if self.config.gvn_replace_with_equal else {}

        for block in dt.rpo:
            for inst in list(block.instructions):
                # Equality propagation: rewrite operands to the
                # representative chosen by a dominating guard.
                for i, op in enumerate(inst.operands):
                    rep = self._representative(op, block, inst, equalities,
                                               dt)
                    if rep is not None and rep is not op:
                        if isinstance(inst, PhiInst):
                            continue  # keep phi shape simple
                        inst.set_operand(i, rep)
                        NUM_EQUALITY_REPLACEMENTS.inc()
                        self.remark(
                            f"replaced operand {op.ref()} of {inst.ref()} "
                            f"with {rep.ref()} under a dominating equality "
                            "(sound only when branch-on-poison is UB)",
                            inst=inst)
                        changed = True

                key = table.expression_key(
                    inst, fold_freeze=self.config.gvn_fold_freeze)
                if key is None:
                    continue
                number = table._expressions.get(key)
                if number is None:
                    number = table.number_of(inst)
                    table._expressions[key] = number
                    leaders.setdefault(number, []).append((block, inst))
                    continue
                table.assign(inst, number)
                leader = self._find_dominating_leader(
                    leaders.get(number, []), inst, dt
                )
                if leader is not None and leader is not inst:
                    NUM_ELIMINATED.inc()
                    if isinstance(inst, FreezeInst):
                        NUM_FREEZES_FOLDED.inc()
                        self.remark(
                            f"folded {inst.ref()} into equivalent freeze "
                            f"{leader.ref()} (all uses replaced)",
                            inst=inst)
                    else:
                        self.remark(
                            f"eliminated {inst.ref()} in favor of "
                            f"dominating {leader.ref()}", inst=inst)
                    inst.replace_all_uses_with(leader)
                    block.erase(inst)
                    changed = True
                else:
                    leaders.setdefault(number, []).append((block, inst))
        return changed

    # -- helpers ---------------------------------------------------------------
    def _find_dominating_leader(self, candidates, inst: Instruction,
                                dt: DominatorTree) -> Optional[Value]:
        for _, leader in candidates:
            if isinstance(leader, Instruction):
                if leader.parent is not None and dt.dominates(leader, inst):
                    return leader
            else:
                return leader
        return None

    def _collect_branch_equalities(self, fn: Function, dt: DominatorTree):
        """Map: block guarded by an equality -> list of (a, b) known equal
        there.  Only true-edges of ``icmp eq`` guards whose target has a
        single predecessor are used."""
        equalities: Dict[BasicBlock, List[Tuple[Value, Value]]] = {}
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            cond = term.cond
            if not isinstance(cond, IcmpInst):
                continue
            if cond.pred is IcmpPred.EQ:
                target = term.true_block
            elif cond.pred is IcmpPred.NE:
                target = term.false_block
            else:
                continue
            if len(target.predecessors()) != 1 or target is block:
                continue
            equalities.setdefault(target, []).append((cond.lhs, cond.rhs))
        return equalities

    def _representative(self, op: Value, block: BasicBlock,
                        inst: Instruction, equalities, dt: DominatorTree
                        ) -> Optional[Value]:
        """If a dominating guard says ``op == rep``, return ``rep``."""
        for guarded, pairs in equalities.items():
            if not dt.dominates_block(guarded, block):
                continue
            for a, b in pairs:
                # One direction only (no oscillation): constants win;
                # otherwise the RHS of the comparison is the
                # representative, as in the paper's example where
                # ``t == y`` makes ``y`` the representative for ``t``.
                if isinstance(a, Constant) and op is b:
                    return a
                if op is a:
                    return self._valid_rep(b, inst, dt)
        return None

    def _valid_rep(self, rep: Value, inst: Instruction,
                   dt: DominatorTree) -> Optional[Value]:
        if isinstance(rep, (Constant, Argument)):
            return rep
        if isinstance(rep, Instruction) and rep.parent is not None \
                and dt.dominates(rep, inst):
            return rep
        return None
