"""Load widening (Section 5.4).

Widening a narrow load to the machine word is profitable, but under the
NEW semantics a *scalar* widened load is wrong: one poison bit anywhere
in the word poisons the whole loaded value, including the lanes the
program actually wanted.  The paper's fix is to widen to a *vector*
load — ``ty-up`` for vectors is per-lane, so unrelated poison stays in
its own lane::

    %a = load i16, i16* %p
      ==>
    %tmp = load <2 x i16>, <2 x i16>* %p
    %a   = extractelement <2 x i16> %tmp, i32 0

This pass implements both the sound vector widening (default) and — for
the E-series demonstrations — the unsound scalar widening
(``scalar_widening=True``), which the refinement checker duly rejects.

Widening is only applied when the pointer provably addresses an object
large enough for the wide access (a global or alloca seen through
bitcasts), since the wide load must not fault.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CastInst,
    ExtractElementInst,
    LoadInst,
    Opcode,
)
from ..ir.types import IntType, PointerType, VectorType
from ..ir.values import ConstantInt, GlobalVariable, Value
from .pass_manager import FunctionPass


def _underlying_object_bits(pointer: Value) -> Optional[int]:
    """Size in bits of the object ``pointer`` definitely points at (its
    start), or None."""
    seen = 0
    while isinstance(pointer, CastInst) \
            and pointer.opcode is Opcode.BITCAST and seen < 8:
        pointer = pointer.value
        seen += 1
    if isinstance(pointer, GlobalVariable):
        return pointer.value_type.bitwidth()
    if isinstance(pointer, AllocaInst):
        return pointer.allocated_type.bitwidth()
    return None


class LoadWidening(FunctionPass):
    """Widen narrow integer loads to ``widen_factor`` lanes."""

    name = "load-widen"

    def __init__(self, config=None, widen_factor: int = 2,
                 scalar_widening: bool = False):
        super().__init__(config)
        self.widen_factor = widen_factor
        #: the historically-tempting (and unsound under NEW) variant
        self.scalar_widening = scalar_widening

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, LoadInst):
                    continue
                if not isinstance(inst.type, IntType):
                    continue
                narrow = inst.type.bits
                wide = narrow * self.widen_factor
                object_bits = _underlying_object_bits(inst.pointer)
                if object_bits is None or object_bits < wide:
                    continue
                if self.scalar_widening:
                    self._widen_scalar(block, inst, narrow, wide)
                else:
                    self._widen_vector(block, inst, narrow)
                changed = True
        return changed

    def _widen_vector(self, block, load: LoadInst, narrow: int) -> None:
        vec_ty = VectorType(self.widen_factor, IntType(narrow))
        ptr_cast = CastInst(Opcode.BITCAST, load.pointer,
                            PointerType(vec_ty), load.name + ".vp")
        block.insert_before(load, ptr_cast)
        wide_load = LoadInst(ptr_cast, load.name + ".wide")
        block.insert_before(load, wide_load)
        extract = ExtractElementInst(
            wide_load, ConstantInt(IntType(32), 0), load.name)
        block.insert_before(load, extract)
        load.replace_all_uses_with(extract)
        block.erase(load)

    def _widen_scalar(self, block, load: LoadInst, narrow: int,
                      wide: int) -> None:
        wide_ty = IntType(wide)
        ptr_cast = CastInst(Opcode.BITCAST, load.pointer,
                            PointerType(wide_ty), load.name + ".wp")
        block.insert_before(load, ptr_cast)
        wide_load = LoadInst(ptr_cast, load.name + ".wide")
        block.insert_before(load, wide_load)
        trunc = CastInst(Opcode.TRUNC, wide_load, IntType(narrow),
                         load.name)
        block.insert_before(load, trunc)
        load.replace_all_uses_with(trunc)
        block.erase(load)
