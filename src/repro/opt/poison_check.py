"""PoisonFlowCheck: an analysis-only pass wrapping the checker stack.

Crash bundles produced by ``campaign lint-audit`` and
``campaign lint-attack`` record ``pass_name = "poison-flow"``: the
"pass" under test is the static-analysis stack itself (the poison
dataflow fixpoint plus the lint rules), not an IR transform.  This pass
makes those bundles genuinely replayable via ``repro crash replay``: the
replay re-runs the analyzer and every lint rule over the reduced IR, so
an analyzer crash or verifier-visible corruption reproduces, while a
clean run means the recorded disagreement is a *verdict* bug (consult
the bundle's ``error`` field for the expected-vs-observed taxonomy).

The pass never mutates the function.
"""

from __future__ import annotations

from .pass_manager import FunctionPass


class PoisonFlowCheck(FunctionPass):
    name = "poison-flow"

    def run_on_function(self, fn) -> bool:
        # Imported lazily: repro.lint pulls in the analysis layer, and
        # opt passes must stay importable without it.
        from ..analysis.poison_flow import analyze_poison_flow
        from ..lint import lint_function

        semantics = self.config.semantics
        analyze_poison_flow(fn, semantics)
        lint_function(fn, semantics=semantics)
        return False
