"""Region cloning: duplicate a set of blocks with a value remap.

Used by loop unswitching (Section 5.1) to create the two loop versions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.values import Value


def clone_instruction(inst: Instruction) -> Instruction:
    """Shallow clone with the *same* operands (remapped afterwards)."""
    name = inst.name
    if isinstance(inst, BinaryInst):
        return BinaryInst(inst.opcode, inst.lhs, inst.rhs, name,
                          nsw=inst.nsw, nuw=inst.nuw, exact=inst.exact)
    if isinstance(inst, IcmpInst):
        return IcmpInst(inst.pred, inst.lhs, inst.rhs, name)
    if isinstance(inst, SelectInst):
        return SelectInst(inst.cond, inst.true_value, inst.false_value, name)
    if isinstance(inst, FreezeInst):
        return FreezeInst(inst.value, name)
    if isinstance(inst, CastInst):
        return CastInst(inst.opcode, inst.value, inst.type, name)
    if isinstance(inst, GepInst):
        return GepInst(inst.pointer, inst.index, name, inbounds=inst.inbounds)
    if isinstance(inst, AllocaInst):
        return AllocaInst(inst.allocated_type, name)
    if isinstance(inst, LoadInst):
        return LoadInst(inst.pointer, name)
    if isinstance(inst, StoreInst):
        return StoreInst(inst.value, inst.pointer)
    if isinstance(inst, ExtractElementInst):
        return ExtractElementInst(inst.vector, inst.index, name)
    if isinstance(inst, InsertElementInst):
        return InsertElementInst(inst.vector, inst.element, inst.index, name)
    if isinstance(inst, PhiInst):
        phi = PhiInst(inst.type, name)
        for value, block in inst.incoming:
            phi.add_incoming(value, block)
        return phi
    if isinstance(inst, CallInst):
        return CallInst(inst.callee, list(inst.args), name)
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return BranchInst(cond=inst.cond, true_block=inst.true_block,
                              false_block=inst.false_block)
        return BranchInst(target=inst.targets[0])
    if isinstance(inst, SwitchInst):
        sw = SwitchInst(inst.value, inst.default)
        for const, block in inst.cases:
            sw.add_case(const, block)
        return sw
    if isinstance(inst, ReturnInst):
        return ReturnInst(inst.value)
    if isinstance(inst, UnreachableInst):
        return UnreachableInst()
    raise NotImplementedError(f"clone {inst.opcode}")


def clone_region(fn: Function, blocks: Iterable[BasicBlock],
                 suffix: str = ".clone"
                 ) -> Tuple[Dict[BasicBlock, BasicBlock],
                            Dict[Value, Value]]:
    """Clone ``blocks`` into ``fn``.

    Returns (block map, value map).  Operands and branch targets that
    point *inside* the region are remapped; everything else is shared.
    Phi incoming blocks from outside the region are preserved (callers
    typically rewrite them)."""
    block_list = list(blocks)
    block_map: Dict[BasicBlock, BasicBlock] = {}
    value_map: Dict[Value, Value] = {}

    for block in block_list:
        clone = BasicBlock(block.name + suffix, parent=fn)
        block_map[block] = clone

    for block in block_list:
        clone = block_map[block]
        for inst in block.instructions:
            new_inst = clone_instruction(inst)
            clone.append(new_inst)
            value_map[inst] = new_inst

    # Remap operands, phi incoming blocks, and branch targets.
    for block in block_list:
        clone = block_map[block]
        for inst in clone.instructions:
            for i, op in enumerate(inst.operands):
                if op in value_map:
                    inst.set_operand(i, value_map[op])
            if isinstance(inst, PhiInst):
                inst.incoming_blocks = [
                    block_map.get(b, b) for b in inst.incoming_blocks
                ]
            if isinstance(inst, BranchInst):
                inst.targets = [block_map.get(t, t) for t in inst.targets]
            if isinstance(inst, SwitchInst):
                inst.default = block_map.get(inst.default, inst.default)
                inst.cases = [
                    (c, block_map.get(b, b)) for c, b in inst.cases
                ]
    return block_map, value_map
