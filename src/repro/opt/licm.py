"""Loop-invariant code motion (hoisting).

Speculatable loop-invariant instructions (arithmetic whose UB is
*deferred* — the very point of poison, Section 2.2) are hoisted to the
preheader.

Division is not speculatable: executing ``1/k`` when the loop body would
never have run introduces immediate UB.  The historical LLVM behavior
modeled by ``licm_hoist_speculative_div`` hoists a division whose
divisor is syntactically guarded nonzero by a dominating branch — the
Section 3.2 bug: when ``k`` is undef, the guard ``k != 0`` and the
division ``1/k`` may observe *different* values of ``k``, so the guard
proves nothing.  Under the NEW semantics (no undef; branch on poison is
UB) the same guarded hoist is actually sound, which we exploit in the
E8 ablation; the paper's prototype, like ours by default, leaves it off.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..diag import REMARK_ANALYSIS, Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    DIVISION_OPCODES,
)
from ..ir.values import ConstantInt, Value
from .pass_manager import FunctionPass


NUM_HOISTED = Statistic(
    "licm", "num-hoisted", "Loop-invariant instructions hoisted")
NUM_GUARDED_DIV_HOISTED = Statistic(
    "licm", "num-guarded-div-hoisted",
    "Divisions hoisted past a nonzero guard (Section 3.2)")


class LICM(FunctionPass):
    name = "licm"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration:
            return False
        changed = False
        li = LoopInfo(fn)
        # Innermost first so invariants can bubble outward across runs.
        for loop in sorted(li.loops, key=lambda l: -l.depth):
            changed |= self._run_on_loop(fn, loop, li.dt)
        return changed

    def _run_on_loop(self, fn: Function, loop: Loop,
                     dt: DominatorTree) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        changed = False
        progress = True
        while progress:
            progress = False
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if not self._can_hoist(inst, loop, dt, preheader):
                        continue
                    if not all(loop.is_invariant(op) for op in inst.operands):
                        continue
                    term = preheader.terminator
                    speculative_div = inst.opcode in DIVISION_OPCODES
                    inst.parent.remove(inst)
                    preheader.insert_before(term, inst)
                    NUM_HOISTED.inc()
                    if speculative_div:
                        NUM_GUARDED_DIV_HOISTED.inc()
                        self.remark(
                            f"hoisted guarded division {inst.ref()} to "
                            f"%{preheader.name} (guard is worthless when "
                            "the divisor may be undef)",
                            kind=REMARK_ANALYSIS, inst=inst,
                            block=preheader, fn=fn)
                    else:
                        self.remark(
                            f"hoisted {inst.ref()} to %{preheader.name}",
                            inst=inst, block=preheader, fn=fn)
                    changed = progress = True
        return changed

    def _can_hoist(self, inst: Instruction, loop: Loop, dt: DominatorTree,
                   preheader: BasicBlock) -> bool:
        if inst.is_speculatable:
            return True
        if inst.opcode in DIVISION_OPCODES \
                and self.config.licm_hoist_speculative_div:
            return self._divisor_guarded_nonzero(inst, preheader, dt)
        return False

    def _divisor_guarded_nonzero(self, inst: BinaryInst,
                                 preheader: BasicBlock,
                                 dt: DominatorTree) -> bool:
        """Is there a dominating branch whose taken edge implies the
        divisor is nonzero?  (The up-to-poison reasoning of Section 5.6:
        under OLD semantics this guard is worthless if the divisor may be
        undef, because guard and division observe independent values.)"""
        divisor = inst.rhs
        block: Optional[BasicBlock] = preheader
        while block is not None:
            preds = block.predecessors()
            if len(preds) != 1:
                block = dt.idom.get(block)
                continue
            for pred in preds:
                term = pred.terminator
                if not isinstance(term, BranchInst) \
                        or not term.is_conditional:
                    continue
                cond = term.cond
                if not isinstance(cond, IcmpInst):
                    continue
                if self._implies_nonzero(cond, term, block, divisor):
                    if dt.dominates_block(block, preheader):
                        return True
            block = dt.idom.get(block)
        return False

    @staticmethod
    def _implies_nonzero(cond: IcmpInst, term: BranchInst,
                         taken: BasicBlock, divisor: Value) -> bool:
        zero_cmp = (
            isinstance(cond.rhs, ConstantInt) and cond.rhs.is_zero
            and cond.lhs is divisor
        )
        if not zero_cmp:
            return False
        if cond.pred is IcmpPred.NE and term.true_block is taken:
            return True
        if cond.pred is IcmpPred.EQ and term.false_block is taken:
            return True
        return False
