"""InstCombine: peephole rewrites that may create new instructions.

This pass is where most of the paper's problem cases live.  Each rule
documents its soundness conditions; rules that were historically unsound
are gated on :class:`~repro.opt.pass_manager.OptConfig` toggles so the
benchmark harness can run both the pre-paper ("legacy") and fixed
pipelines and let the refinement checker tell them apart (experiment E5).

Noteworthy rules:

* ``mul x, 2 -> add x, x`` (Section 3.1): duplicates an SSA use; unsound
  when ``x`` may be undef.  The fixed pipeline enables it only under the
  NEW (undef-free) semantics.
* ``select c, true, x -> or c, x`` (Sections 3.4 / 6): select-as-
  arithmetic.  Unsound under the conditional select semantics.  The fixed
  variant emits ``or c, freeze(x)``.  (The paper's prose suggests
  freezing the *condition*; our exhaustive refinement checker shows it is
  the non-selected *arm* whose poison leaks — see
  ``tests/opt/test_instcombine_select.py`` — so we freeze the arm.)
* ``select c, x, undef -> x`` (Section 3.4, PR31633): unsound because
  ``x`` may be poison and poison is stronger than undef.
* ``udiv a, C -> select (icmp ult a, C), 0, 1`` for constants with the
  top bit set (Section 3.4): requires that select on a poison condition
  is *not* UB.
"""

from __future__ import annotations

from typing import Optional

from ..diag import REMARK_ANALYSIS, Statistic
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    SelectInst,
)
from ..ir.types import IntType
from ..ir.values import ConstantInt, UndefValue, Value
from ..semantics.config import SelectSemantics
from .instsimplify import simplify_instruction
from .pass_manager import FunctionPass, OptConfig


NUM_COMBINED = Statistic(
    "instcombine", "num-combined", "Instructions combined")
NUM_DEAD = Statistic(
    "instcombine", "num-dead-removed", "Dead instructions swept")
NUM_MUL_TO_ADD = Statistic(
    "instcombine", "num-mul-to-add",
    "mul x, 2 rewritten to add x, x (Section 3.1 duplicated use)")
NUM_MUL_TO_SHL = Statistic(
    "instcombine", "num-mul-to-shl", "mul x, 2^k rewritten to shl")
NUM_UDIV_TO_SELECT = Statistic(
    "instcombine", "num-udiv-to-select",
    "udiv by big constant rewritten to select (Section 3.4)")
NUM_SELECTS_TO_ARITH = Statistic(
    "instcombine", "num-selects-to-arith",
    "i1 selects rewritten to or/and (Sections 3.4/6)")
NUM_SELECT_ARMS_FROZEN = Statistic(
    "instcombine", "num-selects-frozen",
    "Non-selected select arms frozen by the fixed rewrite")
NUM_SELECT_UNDEF_COLLAPSED = Statistic(
    "instcombine", "num-select-undef-collapsed",
    "select of undef collapsed (legacy, unsound: PR31633)")


def _insert_before(anchor: Instruction, new_inst: Instruction) -> Instruction:
    anchor.parent.insert_before(anchor, new_inst)
    return new_inst


def _const(v: Value) -> Optional[ConstantInt]:
    return v if isinstance(v, ConstantInt) else None


class InstCombine(FunctionPass):
    name = "instcombine"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        rounds = 0
        while progress and rounds < 8:
            progress = False
            rounds += 1
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.parent is not block:
                        continue  # already removed this round
                    new_value = self.visit(inst)
                    if new_value is None:
                        simpler = simplify_instruction(inst, self.config)
                        if simpler is not None and simpler is not inst:
                            new_value = simpler
                    if new_value is not None and new_value is not inst:
                        inst.replace_all_uses_with(new_value)
                        block.erase(inst)
                        NUM_COMBINED.inc()
                        changed = progress = True
            # like LLVM's InstCombine, sweep instructions the rewrites
            # just made dead
            from .dce import is_trivially_dead

            for block in fn.blocks:
                for inst in list(reversed(block.instructions)):
                    if is_trivially_dead(inst):
                        block.erase(inst)
                        NUM_DEAD.inc()
                        changed = progress = True
        return changed

    # -- dispatch ------------------------------------------------------------
    def visit(self, inst: Instruction) -> Optional[Value]:
        if isinstance(inst, BinaryInst):
            return self.visit_binary(inst)
        if isinstance(inst, SelectInst):
            return self.visit_select(inst)
        if isinstance(inst, IcmpInst):
            return self.visit_icmp(inst)
        return None

    # -- binary rules ---------------------------------------------------------
    def visit_binary(self, inst: BinaryInst) -> Optional[Value]:
        if not isinstance(inst.type, IntType):
            return None
        op = inst.opcode

        # Canonicalize constants to the RHS of commutative operations.
        if inst.is_commutative and isinstance(inst.lhs, ConstantInt) \
                and not isinstance(inst.rhs, ConstantInt):
            lhs = inst.lhs
            inst.set_operand(0, inst.rhs)
            inst.set_operand(1, lhs)

        if op is Opcode.MUL:
            return self._visit_mul(inst)
        if op is Opcode.UDIV:
            return self._visit_udiv(inst)
        if op is Opcode.SUB:
            rc = _const(inst.rhs)
            if rc is not None and not rc.is_zero and not inst.nsw \
                    and not inst.nuw:
                # sub x, C -> add x, -C
                neg = ConstantInt(inst.type, -rc.signed_value)
                return _insert_before(
                    inst, BinaryInst(Opcode.ADD, inst.lhs, neg, inst.name)
                )
        if op is Opcode.XOR:
            # not(not x) -> x
            rc = _const(inst.rhs)
            if rc is not None and rc.is_all_ones \
                    and isinstance(inst.lhs, BinaryInst) \
                    and inst.lhs.opcode is Opcode.XOR:
                inner_rc = _const(inst.lhs.rhs)
                if inner_rc is not None and inner_rc.is_all_ones:
                    return inst.lhs.lhs
        if op in (Opcode.AND, Opcode.OR):
            # (x & C1) & C2 -> x & (C1 & C2); same for or
            rc = _const(inst.rhs)
            if rc is not None and isinstance(inst.lhs, BinaryInst) \
                    and inst.lhs.opcode is op:
                inner_rc = _const(inst.lhs.rhs)
                if inner_rc is not None:
                    merged = (inner_rc.value & rc.value) if op is Opcode.AND \
                        else (inner_rc.value | rc.value)
                    return _insert_before(
                        inst,
                        BinaryInst(op, inst.lhs.lhs,
                                   ConstantInt(inst.type, merged),
                                   inst.name),
                    )
        if op is Opcode.LSHR:
            # lshr (shl x, C), C -> and x, (all-ones >> C): the same
            # operand is used once, so this is exact even for poison x.
            rc = _const(inst.rhs)
            if rc is not None and isinstance(inst.lhs, BinaryInst) \
                    and inst.lhs.opcode is Opcode.SHL \
                    and not inst.lhs.nsw and not inst.lhs.nuw \
                    and not inst.exact:
                inner_rc = _const(inst.lhs.rhs)
                if inner_rc is not None and inner_rc.value == rc.value \
                        and rc.value < inst.type.bits:
                    mask = (1 << (inst.type.bits - rc.value)) - 1
                    return _insert_before(
                        inst,
                        BinaryInst(Opcode.AND, inst.lhs.lhs,
                                   ConstantInt(inst.type, mask),
                                   inst.name),
                    )
        if op is Opcode.SHL:
            # shl x, 1 -> add x, x: like mul x, 2 -> add x, x this
            # duplicates an SSA use (Section 3.1) and is only sound when
            # x cannot be undef.
            rc = _const(inst.rhs)
            dup_ok = self.config.semantics.is_new \
                or self.config.instcombine_dup_uses_unsound
            if rc is not None and rc.is_one and dup_ok and not inst.nsw \
                    and not inst.nuw:
                return _insert_before(
                    inst, BinaryInst(Opcode.ADD, inst.lhs, inst.lhs, inst.name)
                )
        return None

    def _visit_mul(self, inst: BinaryInst) -> Optional[Value]:
        rc = _const(inst.rhs)
        if rc is None:
            return None
        v = rc.value
        ty: IntType = inst.type  # type: ignore[assignment]

        # mul x, 2 -> add x, x: duplicates the use of x (Section 3.1).
        # Sound iff x cannot be undef: under NEW semantics always; under
        # OLD only with the (historically missing) non-undef proof.
        dup_ok = self.config.semantics.is_new \
            or self.config.instcombine_dup_uses_unsound
        if v == 2 and dup_ok and not inst.nsw and not inst.nuw:
            NUM_MUL_TO_ADD.inc()
            self.remark(
                f"rewrote {inst.ref()} = mul x, 2 to add x, x "
                "(duplicates the SSA use; sound without undef)",
                inst=inst)
            return _insert_before(
                inst, BinaryInst(Opcode.ADD, inst.lhs, inst.lhs, inst.name)
            )

        # mul x, 2^k -> shl x, k (k >= 2, or when the add rewrite is off).
        if v != 0 and v & (v - 1) == 0 and v != 1 and not inst.nsw \
                and not inst.nuw:
            k = v.bit_length() - 1
            if v != 2 or not dup_ok:
                NUM_MUL_TO_SHL.inc()
                return _insert_before(
                    inst,
                    BinaryInst(Opcode.SHL, inst.lhs,
                               ConstantInt(ty, k), inst.name),
                )
        return None

    def _visit_udiv(self, inst: BinaryInst) -> Optional[Value]:
        rc = _const(inst.rhs)
        if rc is None:
            return None
        ty: IntType = inst.type  # type: ignore[assignment]
        v = rc.value
        # udiv x, 2^k -> lshr x, k
        if v != 0 and v & (v - 1) == 0:
            k = v.bit_length() - 1
            if k == 0:
                return inst.lhs
            return _insert_before(
                inst,
                BinaryInst(Opcode.LSHR, inst.lhs, ConstantInt(ty, k),
                           inst.name, exact=inst.exact),
            )
        # Section 3.4: udiv a, C -> select (icmp ult a, C), 0, 1 for
        # constants with the top bit set (quotient is 0 or 1).  Requires
        # select on a poison condition NOT to be UB: the original udiv of
        # a poison dividend merely yields poison.
        if ty.bits > 1 and v > ty.signed_max:
            if self.config.semantics.select_semantics \
                    is SelectSemantics.UB_COND:
                return None
            NUM_UDIV_TO_SELECT.inc()
            self.remark(
                f"rewrote {inst.ref()} = udiv by a top-bit-set constant "
                "to select (needs non-UB select on poison)",
                inst=inst)
            cmp = _insert_before(
                inst, IcmpInst(IcmpPred.ULT, inst.lhs, rc, inst.name + ".c")
            )
            return _insert_before(
                inst,
                SelectInst(cmp, ConstantInt(ty, 0), ConstantInt(ty, 1),
                           inst.name),
            )
        return None

    # -- select rules -------------------------------------------------------
    def visit_select(self, inst: SelectInst) -> Optional[Value]:
        tv, fv = inst.true_value, inst.false_value
        tc, fc = _const(tv), _const(fv)

        # select c, x, undef -> x and select c, undef, x -> x
        # (Section 3.4, PR31633).  UNSOUND: x may be poison, and poison
        # is stronger than undef.  Historical behavior only.
        if self.config.simplifycfg_select_undef:
            if isinstance(fv, UndefValue):
                NUM_SELECT_UNDEF_COLLAPSED.inc()
                self.remark(
                    f"collapsed {inst.ref()} = select of undef to its "
                    "other arm (legacy; unsound when the arm is poison)",
                    inst=inst)
                return tv
            if isinstance(tv, UndefValue):
                NUM_SELECT_UNDEF_COLLAPSED.inc()
                self.remark(
                    f"collapsed {inst.ref()} = select of undef to its "
                    "other arm (legacy; unsound when the arm is poison)",
                    inst=inst)
                return fv

        if not inst.type.is_bool:
            return None

        # Select-as-arithmetic rewrites for i1 (Sections 3.4 / 6):
        #   select c, true, x  -> or c, x
        #   select c, x, false -> and c, x
        #   select c, false, x -> and (not c), x
        #   select c, x, true  -> or (not c), x
        legacy = self.config.instcombine_select_arith
        fixed = self.config.semantics.is_new and not legacy
        if not (legacy or fixed):
            return None

        def arm(x: Value) -> Value:
            # The fixed variant freezes the non-selected arm so its
            # poison cannot leak through the strict or/and.
            if fixed:
                NUM_SELECT_ARMS_FROZEN.inc()
                self.remark(
                    f"froze non-selected arm {x.ref()} of {inst.ref()} "
                    "before the select-to-arithmetic rewrite",
                    inst=inst)
                return _insert_before(inst, FreezeInst(x, inst.name + ".fr"))
            self.remark(
                f"rewrote {inst.ref()} to arithmetic without freezing "
                f"arm {x.ref()} (legacy; leaks the arm's poison)",
                kind=REMARK_ANALYSIS, inst=inst)
            return x

        def not_of(c: Value) -> Value:
            return _insert_before(
                inst,
                BinaryInst(Opcode.XOR, c, ConstantInt(IntType(1), 1),
                           inst.name + ".not"),
            )

        if tc is not None and tc.is_one:
            NUM_SELECTS_TO_ARITH.inc()
            return _insert_before(
                inst,
                BinaryInst(Opcode.OR, inst.cond, arm(fv), inst.name),
            )
        if fc is not None and fc.is_zero:
            NUM_SELECTS_TO_ARITH.inc()
            return _insert_before(
                inst,
                BinaryInst(Opcode.AND, inst.cond, arm(tv), inst.name),
            )
        if tc is not None and tc.is_zero:
            NUM_SELECTS_TO_ARITH.inc()
            return _insert_before(
                inst,
                BinaryInst(Opcode.AND, not_of(inst.cond), arm(fv), inst.name),
            )
        if fc is not None and fc.is_one:
            NUM_SELECTS_TO_ARITH.inc()
            return _insert_before(
                inst,
                BinaryInst(Opcode.OR, not_of(inst.cond), arm(tv), inst.name),
            )
        return None

    # -- icmp rules ------------------------------------------------------------
    def visit_icmp(self, inst: IcmpInst) -> Optional[Value]:
        if not isinstance(inst.lhs.type, IntType):
            return None
        ty: IntType = inst.lhs.type  # type: ignore[assignment]
        rc = _const(inst.rhs)

        # Canonicalize constant to the RHS.
        if isinstance(inst.lhs, ConstantInt) and rc is None:
            lhs = inst.lhs
            inst.set_operand(0, inst.rhs)
            inst.set_operand(1, lhs)
            inst.pred = inst.pred.swapped()
            rc = _const(inst.rhs)

        if rc is None:
            return None

        # icmp ult x, 1 -> icmp eq x, 0
        if inst.pred is IcmpPred.ULT and rc.is_one:
            return _insert_before(
                inst,
                IcmpInst(IcmpPred.EQ, inst.lhs, ConstantInt(ty, 0), inst.name),
            )
        # icmp ugt x, 0 -> icmp ne x, 0
        if inst.pred is IcmpPred.UGT and rc.is_zero:
            return _insert_before(
                inst,
                IcmpInst(IcmpPred.NE, inst.lhs, ConstantInt(ty, 0), inst.name),
            )
        # icmp eq/ne (add x, C1), C2 -> icmp eq/ne x, C2-C1
        if inst.pred.is_equality and isinstance(inst.lhs, BinaryInst) \
                and inst.lhs.opcode is Opcode.ADD:
            add = inst.lhs
            c1 = _const(add.rhs)
            if c1 is not None:
                c = ConstantInt(ty, rc.value - c1.value)
                return _insert_before(
                    inst, IcmpInst(inst.pred, add.lhs, c, inst.name)
                )
        # icmp eq/ne (xor x, C1), C2 -> icmp eq/ne x, C1^C2
        if inst.pred.is_equality and isinstance(inst.lhs, BinaryInst) \
                and inst.lhs.opcode is Opcode.XOR:
            xor = inst.lhs
            c1 = _const(xor.rhs)
            if c1 is not None:
                c = ConstantInt(ty, c1.value ^ rc.value)
                return _insert_before(
                    inst, IcmpInst(inst.pred, xor.lhs, c, inst.name)
                )
        # icmp ne (zext c), 0 -> c; icmp eq (zext c), 0 -> not c
        from ..ir.instructions import CastInst

        if inst.pred.is_equality and rc.is_zero \
                and isinstance(inst.lhs, CastInst) \
                and inst.lhs.opcode is Opcode.ZEXT \
                and inst.lhs.value.type.is_bool:
            c = inst.lhs.value
            if inst.pred is IcmpPred.NE:
                return c
            return _insert_before(
                inst,
                BinaryInst(Opcode.XOR, c, ConstantInt(IntType(1), 1),
                           inst.name),
            )
        return None
