"""A simple bottom-up inliner.

Exists mainly to model Section 6's note: "We changed the inliner to
recognize freeze instructions as zero cost" — without that change,
freeze instructions introduced by the new lowering perturb inlining
decisions, which is one of the ways a semantics change can leak into
codegen differences (experiments E1/E2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BranchInst,
    CallInst,
    FreezeInst,
    Instruction,
    PhiInst,
    ReturnInst,
)
from ..ir.module import Module
from ..ir.values import Value
from .clone import clone_region
from .pass_manager import FunctionPass


class Inliner(FunctionPass):
    name = "inline"

    def __init__(self, config=None, threshold: int = 25):
        super().__init__(config)
        self.threshold = threshold

    def cost_of(self, fn: Function) -> int:
        cost = 0
        for inst in fn.instructions():
            if isinstance(inst, FreezeInst) and self.config.inliner_freeze_free:
                continue  # Section 6: freeze is considered zero cost
            if inst.is_terminator:
                continue
            cost += 1
        return cost

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        rounds = 0
        while progress and rounds < 4:
            progress = False
            rounds += 1
            for block in list(fn.blocks):
                for inst in list(block.instructions):
                    if not isinstance(inst, CallInst):
                        continue
                    callee = inst.callee
                    if callee.is_declaration or callee is fn:
                        continue
                    if self._is_recursive(callee):
                        continue
                    if self.cost_of(callee) > self.threshold:
                        continue
                    if inline_call(inst):
                        changed = progress = True
                        break  # block list changed; rescan
        return changed

    @staticmethod
    def _is_recursive(fn: Function) -> bool:
        for inst in fn.instructions():
            if isinstance(inst, CallInst) and inst.callee is fn:
                return True
        return False


def inline_call(call: CallInst) -> bool:
    """Inline one call site.  Returns False when the shape is unsupported."""
    callee = call.callee
    caller_fn = call.parent.parent
    block = call.parent

    rets = [
        inst for inst in callee.instructions() if isinstance(inst, ReturnInst)
    ]
    if not rets:
        return False  # no return: unusual; skip

    # Split the calling block at the call site.
    idx = block.instructions.index(call)
    cont = BasicBlock(block.name + ".cont", parent=caller_fn)
    tail = block.instructions[idx + 1:]
    del block.instructions[idx + 1:]
    for t in tail:
        cont.instructions.append(t)
        t.parent = cont
    # successor phis must now refer to cont
    for succ in cont.successors():
        for phi in succ.phis():
            phi.replace_incoming_block(block, cont)

    # Clone the callee body into the caller.
    block_map, value_map = clone_region(
        caller_fn, callee.blocks, f".{callee.name}.inl"
    )

    # Bind arguments.
    arg_map: Dict[Value, Value] = {
        param: arg for param, arg in zip(callee.args, call.args)
    }
    for clone_block in block_map.values():
        for inst in clone_block.instructions:
            for i, op in enumerate(inst.operands):
                if op in arg_map:
                    inst.set_operand(i, arg_map[op])

    entry_clone = block_map[callee.entry]

    # Rewrite cloned returns into branches to cont, collecting results.
    result_phi: Optional[PhiInst] = None
    if not call.type.is_void:
        result_phi = PhiInst(call.type, call.name + ".ret")
        cont.instructions.insert(0, result_phi)
        result_phi.parent = cont
    for ret in rets:
        ret_clone = value_map[ret]
        ret_block = ret_clone.parent
        value = ret_clone.value  # read before erase drops the operand
        ret_block.erase(ret_clone)
        ret_block.append(BranchInst(target=cont))
        if result_phi is not None and value is not None:
            result_phi.add_incoming(value, ret_block)

    # Replace the call: branch into the inlined entry.
    block.remove(call)
    block.append(BranchInst(target=entry_clone))
    if result_phi is not None:
        call.replace_all_uses_with(result_phi)
    call.drop_all_operands()
    return True
