"""SimplifyCFG: branch folding, block merging, and phi -> select.

The phi -> select conversion is one of Section 3.4's protagonists: it is
correct only if ``select`` is *not* UB on a poison condition whenever
branching isn't, and only if the not-chosen arm's poison does not leak
(the conditional reading, Figure 5).  We always perform it — exactly as
LLVM always did — and let the refinement checker show it is sound under
NEW and unsound under the OLD readings where select is arithmetic.

The jump-threading step models the compile-time anecdote of Section 7.2:
without freeze-awareness it refuses to look through ``freeze`` of a phi
of constants, which blocks downstream simplifications.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BranchInst,
    FreezeInst,
    Instruction,
    PhiInst,
    SelectInst,
    SwitchInst,
)
from ..ir.values import ConstantInt, Value
from ..analysis.cfg import remove_unreachable_blocks
from ..diag import REMARK_MISSED, Statistic
from .pass_manager import FunctionPass

NUM_BRANCHES_FOLDED = Statistic(
    "simplifycfg", "num-branches-folded", "Constant branches folded")
NUM_BLOCKS_MERGED = Statistic(
    "simplifycfg", "num-blocks-merged",
    "Blocks merged into their unique predecessor")
NUM_PHIS_TO_SELECT = Statistic(
    "simplifycfg", "num-phis-to-select",
    "Phi nodes converted to select (Section 3.4)")
NUM_JUMPS_THREADED = Statistic(
    "simplifycfg", "num-jumps-threaded",
    "Branches threaded over phi-of-constants")
NUM_FREEZE_THREADS_BLOCKED = Statistic(
    "simplifycfg", "num-freeze-threads-blocked",
    "Threading refused by freeze-unaware codegen (Section 7.2)")


class SimplifyCFG(FunctionPass):
    name = "simplifycfg"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            progress |= self._fold_constant_branches(fn)
            progress |= bool(remove_unreachable_blocks(fn))
            progress |= self._merge_single_pred_blocks(fn)
            progress |= self._remove_forwarding_blocks(fn)
            progress |= self._phi_to_select(fn)
            progress |= self._thread_jumps(fn)
            changed |= progress
        return changed

    # -- constant branch folding ---------------------------------------------
    def _fold_constant_branches(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if isinstance(term, BranchInst) and term.is_conditional \
                    and isinstance(term.cond, ConstantInt):
                taken = term.true_block if term.cond.value else term.false_block
                dead = term.false_block if term.cond.value else term.true_block
                if dead is not taken:
                    for phi in dead.phis():
                        if block in phi.incoming_blocks:
                            phi.remove_incoming(block)
                block.erase(term)
                block.append(BranchInst(target=taken))
                NUM_BRANCHES_FOLDED.inc()
                changed = True
            elif isinstance(term, SwitchInst) \
                    and isinstance(term.value, ConstantInt):
                taken = term.default
                for const, target in term.cases:
                    if const.value == term.value.value:
                        taken = target
                        break
                for succ in set(term.successors()):
                    if succ is taken:
                        continue
                    for phi in succ.phis():
                        if block in phi.incoming_blocks:
                            phi.remove_incoming(block)
                block.erase(term)
                block.append(BranchInst(target=taken))
                changed = True
        return changed

    # -- merge a block into its unique predecessor ------------------------------
    def _merge_single_pred_blocks(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            if pred is block:
                continue
            term = pred.terminator
            if not isinstance(term, BranchInst) or term.is_conditional:
                continue
            # Fold phis (single incoming).
            for phi in list(block.phis()):
                incoming = phi.incoming_for_block(pred)
                phi.replace_all_uses_with(incoming)
                block.erase(phi)
            pred.erase(term)
            for inst in list(block.instructions):
                block.remove(inst)
                pred.append(inst)
            for succ in pred.successors():
                for phi in succ.phis():
                    phi.replace_incoming_block(block, pred)
            fn.remove_block(block)
            NUM_BLOCKS_MERGED.inc()
            changed = True
        return changed

    # -- remove blocks that only forward -------------------------------------------
    def _remove_forwarding_blocks(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry or len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, BranchInst) or term.is_conditional:
                continue
            target = term.targets[0]
            if target is block:
                continue
            preds = block.predecessors()
            if not preds:
                continue
            # A phi in the target distinguishes incoming edges; retargeting
            # is only safe if no pred already flows into target (which
            # would create duplicate incoming edges with possibly
            # different values).
            target_preds = set(target.predecessors())
            if any(p in target_preds for p in preds):
                continue
            if any(p is block for p in preds):
                continue
            for phi in target.phis():
                value = phi.incoming_for_block(block)
                phi.remove_incoming(block)
                for p in preds:
                    phi.add_incoming(value, p)
            for p in preds:
                p.terminator.replace_successor(block, target)
            block.erase(term)
            fn.remove_block(block)
            changed = True
        return changed

    # -- phi of a diamond/triangle -> select ------------------------------------------
    def _phi_to_select(self, fn: Function) -> bool:
        changed = False
        for merge in list(fn.blocks):
            phis = merge.phis()
            if not phis:
                continue
            preds = merge.predecessors()
            if len(preds) != 2:
                continue
            shape = self._match_diamond_or_triangle(merge, preds)
            if shape is None:
                continue
            branch_block, cond, true_pred, false_pred = shape
            if any(phi.incoming_for_block(true_pred) is None
                   or phi.incoming_for_block(false_pred) is None
                   for phi in phis):
                continue
            # Replace each phi with a select on the condition and turn the
            # branch into an unconditional one.
            for phi in list(phis):
                tv = phi.incoming_for_block(true_pred)
                fv = phi.incoming_for_block(false_pred)
                select = SelectInst(cond, tv, fv, phi.name)
                merge.insert_front(select)
                NUM_PHIS_TO_SELECT.inc()
                self.remark(
                    f"converted phi {phi.ref()} to select on "
                    f"{cond.ref()} (needs the conditional select "
                    "semantics, Figure 5)", inst=select)
                phi.replace_all_uses_with(select)
                merge.erase(phi)
            term = branch_block.terminator
            branch_block.erase(term)
            branch_block.append(BranchInst(target=merge))
            # The empty side blocks become unreachable; the next round
            # cleans them up.
            changed = True
        return changed

    def _match_diamond_or_triangle(self, merge: BasicBlock,
                                   preds: List[BasicBlock]):
        """Match::

              bb: br %c, %t, %f          bb: br %c, %t, %merge
              t:  br %merge              t:  br %merge
              f:  br %merge              (triangle)
              (diamond)

        where the side blocks are empty (only the branch) and have a
        single predecessor.  Returns (bb, cond, true_pred, false_pred)
        with true/false_pred being the *incoming blocks of the phi* for
        the true/false path."""
        a, b = preds

        def empty_forward(block: BasicBlock, frm: BasicBlock) -> bool:
            return (
                len(block.instructions) == 1
                and isinstance(block.terminator, BranchInst)
                and not block.terminator.is_conditional
                and block.predecessors() == [frm]
            )

        # Diamond: both preds are empty forwarders from a common branch.
        for t, f in ((a, b), (b, a)):
            t_preds = t.predecessors()
            f_preds = f.predecessors()
            if len(t_preds) == 1 and len(f_preds) == 1 \
                    and t_preds[0] is f_preds[0]:
                bb = t_preds[0]
                term = bb.terminator
                if isinstance(term, BranchInst) and term.is_conditional \
                        and empty_forward(t, bb) and empty_forward(f, bb):
                    if term.true_block is t and term.false_block is f:
                        return bb, term.cond, t, f
                    if term.true_block is f and term.false_block is t:
                        return bb, term.cond, f, t
        # Triangle: one pred branches directly to merge.
        for side, direct in ((a, b), (b, a)):
            term = direct.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            if not empty_forward(side, direct):
                continue
            if term.true_block is side and term.false_block is merge:
                return direct, term.cond, side, direct
            if term.true_block is merge and term.false_block is side:
                return direct, term.cond, direct, side
        return None

    # -- jump threading over phi-of-constants -----------------------------------------
    def _thread_jumps(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            cond: Value = term.cond
            # Section 7.2's compile-time outlier: jump threading that does
            # not know freeze fails to look through it.
            if isinstance(cond, FreezeInst):
                if not self.config.freeze_aware_codegen:
                    NUM_FREEZE_THREADS_BLOCKED.inc()
                    self.remark(
                        f"refused to thread through {cond.ref()}: "
                        "freeze-unaware codegen (the Section 7.2 "
                        "compile-time outlier)", kind=REMARK_MISSED,
                        inst=cond, block=block, fn=fn)
                    continue
                # Looking through freeze(phi of constants) is sound:
                # freeze of a constant is that constant.
                inner = cond.value
                if isinstance(inner, PhiInst) and cond.has_one_use:
                    cond = inner
                else:
                    continue
            if not isinstance(cond, PhiInst):
                continue
            phi: PhiInst = cond
            if phi.parent is not block:
                continue
            if len(block.instructions) != (2 if cond is term.cond else 3):
                continue  # only the phi (and maybe the freeze) + branch
            if not all(isinstance(v, ConstantInt) for v, _ in phi.incoming):
                continue
            # Retarget each predecessor directly to the known successor.
            retargeted = False
            for value, pred in list(phi.incoming):
                target = term.true_block if value.value else term.false_block
                if pred in target.predecessors():
                    continue  # would duplicate an edge into a phi
                if any(True for _ in target.phis()):
                    # Threading across blocks with phis needs incoming
                    # duplication; keep it simple and skip.
                    continue
                pred.terminator.replace_successor(block, target)
                phi.remove_incoming(pred)
                retargeted = True
            if retargeted:
                NUM_JUMPS_THREADED.inc()
                self.remark(
                    f"threaded jump over phi-of-constants {phi.ref()}",
                    inst=phi, block=block, fn=fn)
                changed = True
                if not phi.incoming_blocks:
                    remove_unreachable_blocks(fn)
        return changed
