"""Pass infrastructure: configuration, function passes, pipelines.

:class:`OptConfig` selects between the *historical* pass behaviors (the
buggy/inconsistent ones Section 3 catalogs) and the *fixed* behaviors the
paper proposes — each toggle maps to one subsection of the paper:

* ``unswitch_freeze`` — loop unswitching freezes the hoisted condition
  (Section 5.1); off = the historical, GVN-incompatible behavior.
* ``instcombine_select_arith`` — keep the ``select -> or/and``-style
  arithmetic rewrites that are unsound when the condition may be poison
  (Sections 3.4, 6 "Limitations"); the fixed variant freezes.
* ``simplifycfg_select_undef`` — keep the ``phi [%x, ...], [undef, ...]
  -> select %c, %x, undef -> %x`` collapse (unsound: poison is stronger
  than undef, Section 3.4).
* ``licm_hoist_speculative_div`` — hoist loop-invariant division past
  control flow based on up-to-poison analyses (Sections 3.2, 5.6);
  LLVM disabled this after PR21412.
* ``gvn_replace_with_equal`` — GVN replaces a value with a
  ``==``-equal one (sound only when branch-on-poison is UB, Section 3.3).

The defaults build the paper's fixed pipeline; ``OptConfig.legacy()``
builds the historical one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional

from ..diag import REMARK_PASSED, PassStats, PassTiming, emit_remark, span
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..semantics.config import NEW, OLD, SemanticsConfig


@dataclass(frozen=True)
class OptConfig:
    semantics: SemanticsConfig = NEW
    unswitch_freeze: bool = True
    instcombine_select_arith: bool = False
    simplifycfg_select_undef: bool = False
    licm_hoist_speculative_div: bool = False
    gvn_replace_with_equal: bool = True
    #: rewrite ``mul x, 2`` as ``add x, x`` even when ``x`` may be undef
    #: (the duplicated-SSA-use bug of Section 3.1).  Sound under NEW
    #: semantics (no undef), so the fixed pipeline enables the rewrite
    #: exactly when the semantics says there is no undef.
    instcombine_dup_uses_unsound: bool = False
    #: reassociation drops nsw/nuw from rebuilt expressions (Section
    #: 10.2); the historical bug keeps them.
    reassociate_drop_flags: bool = True
    #: extension (Section 6 "Opportunities for improvement"): let GVN
    #: fold equivalent freeze instructions.  Sound because the folded
    #: freeze replaces *all* uses of both, collapsing two independent
    #: nondeterministic choices into one (a refinement).
    gvn_fold_freeze: bool = False
    #: teach CodeGenPrepare/branch lowering about freeze (Section 6,
    #: "Optimizations"); turning this off models the early prototype's
    #: compile-time/runtime regressions.
    freeze_aware_codegen: bool = True
    #: inliner treats freeze as zero cost (Section 6).
    inliner_freeze_free: bool = True

    @staticmethod
    def fixed(semantics: SemanticsConfig = NEW) -> "OptConfig":
        return OptConfig(semantics=semantics)

    @staticmethod
    def legacy(semantics: SemanticsConfig = OLD) -> "OptConfig":
        """The pre-paper pass behaviors, with their latent bugs."""
        return OptConfig(
            semantics=semantics,
            unswitch_freeze=False,
            instcombine_select_arith=True,
            simplifycfg_select_undef=True,
            licm_hoist_speculative_div=True,
            gvn_replace_with_equal=True,
            instcombine_dup_uses_unsound=True,
            reassociate_drop_flags=False,
            freeze_aware_codegen=False,
            inliner_freeze_free=False,
        )

    def with_(self, **kwargs) -> "OptConfig":
        return replace(self, **kwargs)

    # -- serialization (crash bundles record the exact configuration) ------
    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form; the semantics config is stored by name."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["semantics"] = self.semantics.name
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "OptConfig":
        data = dict(data)
        semantics = data.get("semantics", NEW)
        if isinstance(semantics, str):
            from ..semantics.config import ALL_CONFIGS

            by_name = {c.name: c for c in ALL_CONFIGS}
            if semantics not in by_name:
                raise ValueError(f"unknown semantics config {semantics!r}")
            data["semantics"] = by_name[semantics]
        return OptConfig(**data)


class FunctionPass:
    """Base class; subclasses implement :meth:`run_on_function`."""

    name = "pass"

    def __init__(self, config: Optional[OptConfig] = None):
        self.config = config or OptConfig()

    def run_on_function(self, fn: Function) -> bool:
        raise NotImplementedError

    def remark(self, message: str, *, kind: str = REMARK_PASSED,
               inst: Optional[Instruction] = None,
               block=None, fn: Optional[Function] = None) -> None:
        """Emit an optimization remark attributed to this pass.

        Location defaults are derived from ``inst`` (its block and
        function) when not given explicitly.  A no-op when nobody is
        subscribed to the process-wide emitter."""
        if block is None and inst is not None:
            block = inst.parent
        if fn is None and block is not None:
            fn = block.parent
        emit_remark(
            self.name, message, kind=kind,
            function=fn.name if fn is not None else "",
            block=block.name if block is not None else "",
            instruction=inst.ref() if inst is not None else "",
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class PassManager:
    """Runs a pipeline of function passes over a module, optionally to a
    fixpoint, collecting hierarchical per-pass × per-function timing
    (the compile-time experiment E2 and the ``--time-passes`` CLI flag
    read these).  ``stats`` exposes the per-pass aggregates, as before;
    ``timing`` is the full :class:`~repro.diag.PassTiming` collector and
    may be shared between several managers to accumulate one compilation
    end to end."""

    def __init__(self, passes: List[FunctionPass], max_iterations: int = 3,
                 timing: Optional[PassTiming] = None):
        self.passes = passes
        self.max_iterations = max_iterations
        self.timing = timing if timing is not None else PassTiming()

    @property
    def stats(self) -> Dict[str, PassStats]:
        """Per-pass statistics (aggregates plus per-function records)."""
        return self.timing.passes

    def report(self, per_function: bool = False) -> str:
        """The ``-time-passes`` style report for this manager's runs."""
        return self.timing.report(per_function=per_function)

    def run(self, module: Module) -> bool:
        changed_any = False
        for fn in module.definitions():
            changed_any |= self.run_on_function(fn)
        return changed_any

    def run_on_function(self, fn: Function) -> bool:
        changed_any = False
        for _ in range(self.max_iterations):
            changed = False
            for p in self.passes:
                # measure() accounts in a finally block: a pass that
                # raises mid-run still records its elapsed time with a
                # matching runs increment.  The span is a no-op unless
                # tracing is enabled for this process.
                with span(p.name, cat="pass", function=fn.name) as sp:
                    with self.timing.measure(p.name, fn.name) as m:
                        m.changed = p.run_on_function(fn)
                    sp.set(changed=m.changed)
                changed |= m.changed
            changed_any |= changed
            if not changed:
                break
        return changed_any
