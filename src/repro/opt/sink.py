"""Sinking (the dual of LICM) and the Section 5.5 freeze pitfall.

Moving a computation down to its (unique) use block is profitable when
the use is conditional — e.g. sinking ``x = a / b`` into a rarely-taken
loop body.  Section 5.5's "Pitfall 1": this is *not* allowed for
``freeze``.  A freeze executed once produces one value shared by all its
dynamic uses; re-executing it per iteration may produce a different
value each time, which widens the behavior set — the opposite of
refinement.

The pass therefore never sinks ``freeze`` (nor an instruction *past* a
freeze that uses it).  ``sink_freeze_unsound=True`` re-enables the
historical temptation so the refinement checker can exhibit the pitfall
(see ``tests/opt/test_sink.py``).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import FreezeInst, Instruction, PhiInst
from .pass_manager import FunctionPass


class Sink(FunctionPass):
    name = "sink"

    def __init__(self, config=None, sink_freeze_unsound: bool = False):
        super().__init__(config)
        self.sink_freeze_unsound = sink_freeze_unsound

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration:
            return False
        dt = DominatorTree(fn)
        li = LoopInfo(fn, dt)
        changed = False
        for block in list(fn.blocks):
            # bottom-up so chains sink together
            for inst in list(reversed(block.instructions)):
                target = self._sink_target(inst, dt)
                if target is None:
                    continue
                if isinstance(inst, FreezeInst) \
                        and not self.sink_freeze_unsound:
                    # Section 5.5: a freeze must not be moved to a point
                    # where it executes more often.
                    if self._executes_more_often(block, target, li):
                        continue
                inst.parent.remove(inst)
                target.insert_front(inst)
                changed = True
        return changed

    def _sink_target(self, inst: Instruction,
                     dt: DominatorTree) -> Optional[BasicBlock]:
        if inst.is_terminator or inst.may_have_side_effects \
                or isinstance(inst, PhiInst):
            return None
        if inst.type.is_void or inst.num_uses == 0:
            return None
        use_blocks = set()
        for use in inst.uses:
            user = use.user
            if not isinstance(user, Instruction):
                return None
            if isinstance(user, PhiInst):
                return None  # would need edge placement
            use_blocks.add(user.parent)
        if len(use_blocks) != 1:
            return None
        (target,) = use_blocks
        if target is inst.parent:
            return None
        # all operands must still dominate the new position
        if not dt.strictly_dominates_block(inst.parent, target):
            return None
        if target.phis() and any(
            isinstance(u.user, PhiInst) for u in inst.uses
        ):
            return None
        return target

    @staticmethod
    def _executes_more_often(src: BasicBlock, dst: BasicBlock,
                             li: LoopInfo) -> bool:
        """Conservative: the destination is inside a loop that the source
        is not inside (so the instruction would re-execute)."""
        dst_loop = li.loop_for(dst)
        while dst_loop is not None:
            if src not in dst_loop.blocks:
                return True
            dst_loop = dst_loop.parent
        return False
