"""Sparse conditional constant propagation.

Classic three-level lattice (unknown / constant / overdefined) with CFG
reachability.  Deferred-UB constants (``undef``/``poison``) are treated
as *overdefined*: the paper's related-work discussion (Section 9, the
GCC footnote) shows how SCCP assuming a single value for an
uninitialized variable while other passes assume another is exactly the
kind of inconsistency that bites; staying conservative here keeps the
pass sound under every semantics configuration, which the E5 validation
confirms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    Instruction,
    PhiInst,
    SelectInst,
    SwitchInst,
)
from ..ir.values import Argument, Constant, ConstantInt, Value
from .constfold import try_constant_fold
from .pass_manager import FunctionPass

_UNKNOWN = "unknown"
_OVERDEFINED = "overdefined"


class SCCP(FunctionPass):
    name = "sccp"

    def run_on_function(self, fn: Function) -> bool:
        if fn.is_declaration:
            return False
        lattice: Dict[Value, object] = {}
        executable_edges: Set[Tuple[Optional[BasicBlock], BasicBlock]] = set()
        executable_blocks: Set[BasicBlock] = set()
        block_work: List[Tuple[Optional[BasicBlock], BasicBlock]] = [
            (None, fn.entry)
        ]
        inst_work: List[Instruction] = []

        def value_state(v: Value):
            if isinstance(v, ConstantInt):
                return v
            if isinstance(v, Constant):
                return _OVERDEFINED  # undef/poison/globals: conservative
            if isinstance(v, Argument):
                return _OVERDEFINED
            return lattice.get(v, _UNKNOWN)

        def mark(inst: Instruction, state) -> None:
            old = lattice.get(inst, _UNKNOWN)
            if old == state or old is _OVERDEFINED:
                return
            if isinstance(old, ConstantInt) and isinstance(state, ConstantInt):
                state = _OVERDEFINED
            lattice[inst] = state
            for user in inst.users():
                if isinstance(user, Instruction) \
                        and user.parent in executable_blocks:
                    inst_work.append(user)

        def visit(inst: Instruction) -> None:
            if isinstance(inst, PhiInst):
                state = _UNKNOWN
                for value, pred in inst.incoming:
                    if (pred, inst.parent) not in executable_edges:
                        continue
                    s = value_state(value)
                    if s is _UNKNOWN:
                        continue
                    if s is _OVERDEFINED:
                        state = _OVERDEFINED
                        break
                    if state is _UNKNOWN:
                        state = s
                    elif isinstance(state, ConstantInt) and state != s:
                        state = _OVERDEFINED
                        break
                if state is not _UNKNOWN:
                    mark(inst, state)
                return
            if isinstance(inst, BranchInst):
                if not inst.is_conditional:
                    add_edge(inst.parent, inst.targets[0])
                    return
                s = value_state(inst.cond)
                if isinstance(s, ConstantInt):
                    taken = inst.true_block if s.value else inst.false_block
                    add_edge(inst.parent, taken)
                elif s is _OVERDEFINED:
                    add_edge(inst.parent, inst.true_block)
                    add_edge(inst.parent, inst.false_block)
                return
            if isinstance(inst, SwitchInst):
                s = value_state(inst.value)
                if isinstance(s, ConstantInt):
                    taken = inst.default
                    for const, block in inst.cases:
                        if const.value == s.value:
                            taken = block
                            break
                    add_edge(inst.parent, taken)
                elif s is _OVERDEFINED:
                    for succ in inst.successors():
                        add_edge(inst.parent, succ)
                return
            if inst.is_terminator or inst.type.is_void:
                return
            # Ordinary instruction: fold if every operand is constant.
            if isinstance(inst, FreezeInst):
                s = value_state(inst.value)
                # freeze(c) = c for a defined constant.
                mark(inst, s if isinstance(s, ConstantInt) else _OVERDEFINED)
                return
            states = [value_state(op) for op in inst.operands]
            if any(s is _OVERDEFINED for s in states):
                mark(inst, _OVERDEFINED)
                return
            if any(s is _UNKNOWN for s in states):
                return
            folded = self._fold_with(inst, states)
            mark(inst, folded if isinstance(folded, ConstantInt)
                 else _OVERDEFINED)

        def add_edge(frm: BasicBlock, to: BasicBlock) -> None:
            if (frm, to) in executable_edges:
                return
            executable_edges.add((frm, to))
            block_work.append((frm, to))

        while block_work or inst_work:
            while inst_work:
                visit(inst_work.pop())
            if not block_work:
                break
            frm, block = block_work.pop()
            executable_edges.add((frm, block))
            first_time = block not in executable_blocks
            if first_time:
                executable_blocks.add(block)
                for inst in block.instructions:
                    visit(inst)
            else:
                # A new incoming edge only affects phis and reachability.
                for phi in block.phis():
                    visit(phi)
                term = block.terminator
                if term is not None:
                    visit(term)

        # Apply: replace constant-valued instructions.
        changed = False
        for block in fn.blocks:
            if block not in executable_blocks:
                continue
            for inst in list(block.instructions):
                state = lattice.get(inst)
                if isinstance(state, ConstantInt):
                    inst.replace_all_uses_with(state)
                    if not inst.may_have_side_effects:
                        block.erase(inst)
                    changed = True
        return changed

    def _fold_with(self, inst: Instruction,
                   states: List[object]) -> Optional[Constant]:
        """Fold ``inst`` with its operands replaced by known constants, by
        temporarily rewriting the operands."""
        originals = list(inst.operands)
        try:
            for i, s in enumerate(states):
                if isinstance(s, ConstantInt):
                    inst.set_operand(i, s)
            return try_constant_fold(inst, self.config.semantics)
        finally:
            for i, op in enumerate(originals):
                inst.set_operand(i, op)
