"""Freeze-specific cleanups (Section 6, "Implementation").

* ``freeze(freeze x) -> freeze x``
* ``freeze(const) -> const`` (for a fully defined constant)
* ``freeze(poison) / freeze(undef) -> arbitrary constant``
* ``freeze x -> x`` when ``x`` is provably never poison/undef

These keep the freeze instructions introduced by loop unswitching and
bit-field lowering from piling up, which is how the prototype keeps the
freeze fraction of IR around 0.04–0.06% (experiment E4).

The poison-freedom proof is the fixpoint dataflow
(:mod:`repro.analysis.poison_flow`): its dominating-branch refinement
removes freezes the shallow walk must keep — e.g. a ``freeze %x`` in a
block already guarded by ``br i1 (icmp ... %x ...)`` is redundant,
because branch-on-poison-is-UB proved ``%x`` defined there.  Set
``use_flow = False`` to fall back to the shallow walk (the benchmark
``benchmarks/bench_e11_lint.py`` compares both and requires the
fixpoint to remove strictly more).
"""

from __future__ import annotations

from ..analysis.poison_flow import analyze_poison_flow
from ..diag import Statistic
from ..ir.function import Function
from ..ir.instructions import FreezeInst
from .instsimplify import simplify_instruction
from .pass_manager import FunctionPass

NUM_FREEZES_SIMPLIFIED = Statistic(
    "freeze-opts", "num-freezes-simplified",
    "Redundant freeze instructions removed (Section 6 cleanups)")


class FreezeOpts(FunctionPass):
    name = "freeze-opts"

    #: consult the poison dataflow fixpoint; False = shallow walk only.
    use_flow = True

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            # Recompute per sweep: removals only ever improve facts, but
            # a fresh fixpoint keeps the result exactly in sync with the
            # IR it is queried about.
            flow = (analyze_poison_flow(fn, self.config.semantics)
                    if self.use_flow else None)
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if not isinstance(inst, FreezeInst):
                        continue
                    simpler = simplify_instruction(inst, self.config,
                                                   flow=flow)
                    if simpler is not None and simpler is not inst:
                        NUM_FREEZES_SIMPLIFIED.inc()
                        self.remark(
                            f"simplified {inst.ref()} to {simpler.ref()}",
                            inst=inst)
                        inst.replace_all_uses_with(simpler)
                        block.erase(inst)
                        changed = progress = True
        return changed
