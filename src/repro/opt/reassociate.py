"""Reassociation of commutative/associative expression trees.

Collects the leaves of single-use chains of one commutative opcode,
folds the constant leaves together, and rebuilds a canonical
left-leaning chain.

Section 10.2 of the paper: reassociation changes *where* (and whether)
subexpressions overflow, so it must drop ``nsw``/``nuw`` from the nodes
it rebuilds.  "At least LLVM and MSVC have suffered from bugs because of
reassociation not dropping overflow assumptions."  The
``drop_flags=False`` variant reproduces that bug; the E5 opt-fuzz
validation catches it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import BinaryInst, Instruction, Opcode
from ..ir.types import IntType
from ..ir.values import ConstantInt, Value
from ..semantics.eval import eval_binop
from .pass_manager import FunctionPass

_REASSOCIABLE = (Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR)

_IDENTITY = {
    Opcode.ADD: 0,
    Opcode.MUL: 1,
    Opcode.AND: -1,  # all ones
    Opcode.OR: 0,
    Opcode.XOR: 0,
}


class Reassociate(FunctionPass):
    name = "reassociate"

    def __init__(self, config=None, drop_flags: Optional[bool] = None):
        super().__init__(config)
        # The fixed behavior drops overflow flags; the historical bug
        # keeps them on the rebuilt expressions.
        if drop_flags is None:
            drop_flags = self.config.reassociate_drop_flags
        self.drop_flags = drop_flags

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if inst.parent is not block:
                    continue
                if self._reassociate(inst):
                    changed = True
        return changed

    def _reassociate(self, inst: Instruction) -> bool:
        if not isinstance(inst, BinaryInst) \
                or inst.opcode not in _REASSOCIABLE:
            return False
        if not isinstance(inst.type, IntType):
            return False
        # Only rewrite roots: trees are consumed from their root.
        if any(
            isinstance(u, BinaryInst) and u.opcode is inst.opcode
            and u.parent is not None
            for u in inst.users()
        ):
            return False

        leaves: List[Value] = []
        interior: List[BinaryInst] = []
        had_flags = self._collect(inst, inst.opcode, leaves, interior)
        if len(interior) < 2:
            return False  # nothing to reassociate

        ty: IntType = inst.type  # type: ignore[assignment]
        width = ty.bits
        constants = [l for l in leaves if isinstance(l, ConstantInt)]
        variables = [l for l in leaves if not isinstance(l, ConstantInt)]

        sorted_vars = sorted(variables, key=lambda v: (v.name, id(v)))
        needs_reorder = sorted_vars != variables
        constants_buried = any(
            isinstance(l, ConstantInt) for l in leaves[:-1]
        )
        if len(constants) < 2 and not constants_buried and not needs_reorder:
            return False

        identity = _IDENTITY[inst.opcode] & ty.unsigned_max
        acc = identity
        for c in constants:
            folded = eval_binop(inst.opcode, acc, c.value, width,
                                self.config.semantics)
            assert isinstance(folded, int)
            acc = folded

        # Canonical order: variables by name, constant last.
        variables = sorted_vars
        keep_flags = had_flags and not self.drop_flags
        # The historical bug kept nsw/nuw even though reordering changes
        # where (and whether) intermediate sums overflow (Section 10.2).
        nsw = keep_flags and any(i.nsw for i in interior)
        nuw = keep_flags and any(i.nuw for i in interior)

        block = inst.parent
        counter = 0

        def node_name() -> str:
            nonlocal counter
            counter += 1
            return f"{inst.name}.ra{counter}" if inst.name else ""

        new_chain: Optional[Value] = None
        for v in variables:
            if new_chain is None:
                new_chain = v
            else:
                node = BinaryInst(inst.opcode, new_chain, v, node_name(),
                                  nsw=nsw, nuw=nuw)
                block.insert_before(inst, node)
                new_chain = node
        if acc != identity or new_chain is None:
            const = ConstantInt(ty, acc)
            if new_chain is None:
                new_chain = const
            else:
                node = BinaryInst(inst.opcode, new_chain, const, node_name(),
                                  nsw=nsw, nuw=nuw)
                block.insert_before(inst, node)
                new_chain = node

        inst.replace_all_uses_with(new_chain)
        block.erase(inst)
        # Dead interior nodes are cleaned by DCE.
        return True

    def _collect(self, inst: BinaryInst, opcode: Opcode,
                 leaves: List[Value], interior: List[BinaryInst]) -> bool:
        """Gather leaves of the single-use same-opcode tree; returns
        whether any interior node carried overflow flags."""
        interior.append(inst)
        had_flags = inst.nsw or inst.nuw
        for op in (inst.lhs, inst.rhs):
            if isinstance(op, BinaryInst) and op.opcode is opcode \
                    and op.has_one_use and op.parent is inst.parent:
                had_flags |= self._collect(op, opcode, leaves, interior)
            else:
                leaves.append(op)
        return had_flags
