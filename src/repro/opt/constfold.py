"""Constant folding, including the undef/poison folding rules.

Folding is a *refinement*: when an operand is undef, the folder may pick
any concretization (each textual occurrence of ``undef`` is an
independent source of freedom — Alive's model, and ours).  When an
operand is poison, most results are poison; division by a constant zero
or by poison is immediate UB and is deliberately *not* folded (the
instruction is left in place to keep the UB).
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import (
    BinaryInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    Instruction,
    Opcode,
    SelectInst,
    DIVISION_OPCODES,
)
from ..ir.types import IntType
from ..ir.values import (
    Constant,
    ConstantInt,
    PoisonValue,
    UndefValue,
    Value,
)
from ..semantics.config import NEW, SemanticsConfig, ShiftOutOfRange
from ..semantics.domains import POISON
from ..semantics.eval import UBError, eval_binop, eval_cast, eval_icmp


def _as_scalar(c: Value):
    if isinstance(c, ConstantInt):
        return c.value
    if isinstance(c, PoisonValue):
        return POISON
    return None  # undef or non-constant: handled specially


def _result(scalar, ty) -> Optional[Constant]:
    if scalar is POISON:
        return PoisonValue(ty)
    if isinstance(scalar, int):
        return ConstantInt(ty, scalar)
    return None  # PartialUndef results are not folded to constants


def try_constant_fold(inst: Instruction,
                      config: SemanticsConfig = NEW) -> Optional[Constant]:
    """Return the folded constant, or ``None`` if not foldable."""
    if isinstance(inst, BinaryInst):
        return _fold_binary(inst, config)
    if isinstance(inst, IcmpInst):
        return _fold_icmp(inst)
    if isinstance(inst, CastInst):
        return _fold_cast(inst)
    if isinstance(inst, SelectInst):
        return _fold_select(inst)
    if isinstance(inst, FreezeInst):
        return _fold_freeze(inst, config)
    return None


def _fold_binary(inst: BinaryInst, config: SemanticsConfig) -> Optional[Constant]:
    if not isinstance(inst.type, IntType):
        return None
    ty: IntType = inst.type
    op = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs

    # --- undef operand rules (sound refinements; see module doc) ---------
    lu = isinstance(lhs, UndefValue)
    ru = isinstance(rhs, UndefValue)
    if lu or ru:
        if op in DIVISION_OPCODES:
            return None  # divisor could concretize to 0 -> UB; leave it
        if op in (Opcode.ADD, Opcode.SUB, Opcode.XOR):
            # x op undef is a bijection in the undef operand: still undef.
            if (lu and ru) or isinstance(lhs, ConstantInt) \
                    or isinstance(rhs, ConstantInt) or lu != ru:
                return UndefValue(ty) if config.has_undef else None
        if op is Opcode.AND:
            return ConstantInt(ty, 0)       # pick undef = 0
        if op is Opcode.OR:
            return ConstantInt(ty, ty.unsigned_max)  # pick undef = ~0
        if op is Opcode.MUL:
            return ConstantInt(ty, 0)       # pick undef = 0
        if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            return ConstantInt(ty, 0)       # pick shift amount/value = 0
        return None

    a = _as_scalar(lhs)
    b = _as_scalar(rhs)
    if a is None or b is None:
        return None
    try:
        scalar = eval_binop(op, a, b, ty.bits, config,
                            nsw=inst.nsw, nuw=inst.nuw, exact=inst.exact)
    except UBError:
        return None  # immediate UB: keep the instruction
    if not config.has_undef and not isinstance(scalar, int) \
            and scalar is not POISON:
        # OLD-only undef result (oob shift) cannot appear under NEW.
        return None
    if scalar is not POISON and not isinstance(scalar, int):
        # PartialUndef (oob shift under OLD): fold to the undef constant.
        return UndefValue(ty)
    return _result(scalar, ty)


def _fold_icmp(inst: IcmpInst) -> Optional[Constant]:
    from ..ir.types import IntType as IT

    if not isinstance(inst.lhs.type, IT):
        return None
    width = inst.lhs.type.bits
    i1 = IntType(1)
    if isinstance(inst.lhs, UndefValue) or isinstance(inst.rhs, UndefValue):
        # Any outcome is allowed; pick false.
        return ConstantInt(i1, 0)
    a = _as_scalar(inst.lhs)
    b = _as_scalar(inst.rhs)
    if a is None or b is None:
        return None
    scalar = eval_icmp(inst.pred, a, b, width)
    return _result(scalar, i1)


def _fold_cast(inst: CastInst) -> Optional[Constant]:
    if inst.opcode in (Opcode.BITCAST, Opcode.PTRTOINT, Opcode.INTTOPTR):
        return None
    if not isinstance(inst.type, IntType):
        return None
    if isinstance(inst.value, UndefValue):
        if inst.opcode is Opcode.TRUNC:
            return UndefValue(inst.type)  # trunc undef -> undef (onto)
        return None  # zext/sext undef are value-range restricted
    if isinstance(inst.value, PoisonValue):
        return PoisonValue(inst.type)
    if not isinstance(inst.value, ConstantInt):
        return None
    src_w = inst.value.type.bits  # type: ignore[union-attr]
    scalar = eval_cast(inst.opcode, inst.value.value, src_w, inst.type.bits)
    return _result(scalar, inst.type)


def _fold_select(inst: SelectInst) -> Optional[Constant]:
    cond = inst.cond
    if isinstance(cond, ConstantInt):
        chosen = inst.true_value if cond.value else inst.false_value
        if isinstance(chosen, Constant):
            return chosen
    return None


def _fold_freeze(inst: FreezeInst, config: SemanticsConfig) -> Optional[Constant]:
    v = inst.value
    # freeze(const) -> const (Section 6's InstCombine addition).
    if isinstance(v, ConstantInt):
        return v
    if isinstance(v, (UndefValue, PoisonValue)):
        if isinstance(inst.type, IntType):
            return ConstantInt(inst.type, 0)  # pick an arbitrary value
    return None
