"""CodeGenPrepare: late IR massaging right before instruction selection.

Section 6 ("Optimizations") describes two regressions the prototype had
to fix, both modeled here behind ``freeze_aware_codegen``:

* Branches on ``and``/``or`` of i1 values are split into two branches
  (cheaper than materializing the boolean on x86).  A freeze wrapped
  around the and/or blocked this until CodeGenPrepare learned to
  distribute the freeze over the operands (a refinement: freezing each
  conjunct pins at least as much as freezing the conjunction).

* ``freeze(icmp %x, const)`` is rewritten to ``icmp (freeze %x), const``
  so that compare-with-branch fusion still fires.  This is a refinement
  and must only run this late: done early it breaks analyses such as
  scalar evolution (Section 6).
"""

from __future__ import annotations

from typing import Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    FreezeInst,
    IcmpInst,
    Instruction,
    Opcode,
)
from ..ir.values import ConstantInt
from .pass_manager import FunctionPass


class CodeGenPrepare(FunctionPass):
    name = "codegenprepare"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        if self.config.freeze_aware_codegen:
            changed |= self._sink_freeze_through_icmp(fn)
            changed |= self._distribute_freeze_over_logic(fn)
        changed |= self._split_logic_branches(fn)
        return changed

    # -- freeze(icmp x, C) -> icmp (freeze x), C ------------------------------
    def _sink_freeze_through_icmp(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, FreezeInst):
                    continue
                cmp = inst.value
                if not isinstance(cmp, IcmpInst) or not cmp.has_one_use:
                    continue
                if not isinstance(cmp.rhs, ConstantInt):
                    continue
                frozen = FreezeInst(cmp.lhs, cmp.lhs.name + ".fr")
                block.insert_before(inst, frozen)
                new_cmp = IcmpInst(cmp.pred, frozen, cmp.rhs, inst.name)
                block.insert_before(inst, new_cmp)
                inst.replace_all_uses_with(new_cmp)
                block.erase(inst)
                if cmp.num_uses == 0 and cmp.parent is not None:
                    cmp.parent.erase(cmp)
                changed = True
        return changed

    # -- freeze(and/or a, b) -> and/or (freeze a), (freeze b) ---------------------
    def _distribute_freeze_over_logic(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, FreezeInst):
                    continue
                logic = inst.value
                if not isinstance(logic, BinaryInst) or not logic.has_one_use:
                    continue
                if logic.opcode not in (Opcode.AND, Opcode.OR):
                    continue
                if not logic.type.is_bool:
                    continue
                fa = FreezeInst(logic.lhs, logic.lhs.name + ".fr")
                fb = FreezeInst(logic.rhs, logic.rhs.name + ".fr")
                where = logic if logic.parent is block else inst
                block.insert_before(where, fa)
                block.insert_before(where, fb)
                new_logic = BinaryInst(logic.opcode, fa, fb, inst.name)
                block.insert_before(where, new_logic)
                inst.replace_all_uses_with(new_logic)
                block.erase(inst)
                if logic.num_uses == 0 and logic.parent is not None:
                    logic.parent.erase(logic)
                changed = True
        return changed

    # -- br (and/or a, b) -> two branches -------------------------------------------
    def _split_logic_branches(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            cond = term.cond
            if isinstance(cond, FreezeInst):
                # Without freeze-awareness the split is blocked — the
                # compile-time/run-time regression of Section 6.
                continue
            if not isinstance(cond, BinaryInst) or not cond.has_one_use:
                continue
            if cond.opcode not in (Opcode.AND, Opcode.OR):
                continue
            if not cond.type.is_bool:
                continue
            if cond.parent is not block:
                continue
            a, b = cond.lhs, cond.rhs
            true_block, false_block = term.true_block, term.false_block
            if true_block is false_block:
                continue
            # New block tests the second condition.
            second = fn.add_block(block.name + ".split")
            second_term = BranchInst(cond=b, true_block=true_block,
                                     false_block=false_block)
            second.append(second_term)
            block.erase(term)
            if cond.opcode is Opcode.AND:
                # and: a false short-circuits to the false target.
                block.append(BranchInst(cond=a, true_block=second,
                                        false_block=false_block))
            else:
                # or: a true short-circuits to the true target.
                block.append(BranchInst(cond=a, true_block=true_block,
                                        false_block=second))
            if cond.num_uses == 0:
                block.erase(cond)
            # Phi fix-up: successors gain `second` as a predecessor and
            # (possibly) keep `block`.
            for succ in (true_block, false_block):
                for phi in succ.phis():
                    if block in phi.incoming_blocks:
                        value = phi.incoming_for_block(block)
                        if block not in [
                            p for p in succ.predecessors()
                        ]:
                            phi.remove_incoming(block)
                        if second in succ.predecessors() \
                                and second not in phi.incoming_blocks:
                            phi.add_incoming(value, second)
            changed = True
        return changed
