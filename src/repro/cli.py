"""The ``python -m repro`` command-line driver.

Compiles a textual ``.ll`` module through one of the standard pipelines
and exposes every observability layer end to end::

    python -m repro examples/unswitch_gvn.ll --stats --time-passes \
        --remarks=json

* ``--stats`` — the statistics registry (``-stats``);
* ``--time-passes`` — hierarchical per-pass × per-function timing;
* ``--remarks[=json]`` — optimization remarks from every pass;
* ``--trace`` — interpret the entry function and report its event trace;
* ``--emit-ir`` — print the optimized module.

Output is plain text by default.  With ``--remarks=json`` or ``--json``
the whole report becomes a single JSON document with one key per
requested section (``stats``, ``timing``, ``remarks``, ``trace``, …),
which is what the CI smoke test and the acceptance check parse.

``python -m repro campaign ...`` dispatches to the validation campaign
engine (:mod:`repro.campaign`): parallel sharded opt-fuzz × refinement
checking with checkpoint/resume, dedup, and counterexample reduction.

Resilience (``repro.opt.resilience``) is wired in three places:

* compile-mode flags — ``--policy``, ``--verify-each``, ``--crash-dir``,
  ``--opt-bisect-limit`` and the ``--chaos*`` fault-injection family —
  run the pipeline under a :class:`GuardedPassManager` and add a
  ``resilience`` report section.  A guarded-pass failure under the
  ``strict`` policy (or a final verification failure) exits with code 2.
* ``python -m repro crash {list,show,replay} ...`` — inspect and replay
  the crash bundles that guarded runs capture.
* ``python -m repro bisect <input> ...`` — the ``-opt-bisect-limit``
  driver: binary-search the first pass application that makes a checker
  (IR verification, or interpreted behavior vs. the unoptimized module)
  fail.

``python -m repro diag {top,merge,prom} ...`` is the observability
toolbox (:mod:`repro.diag`): render a profiler-style ``top`` table from
a merged span trace, merge per-shard span files into a
Perfetto-loadable ``trace.json``, and render metric snapshots in the
Prometheus text format.  Compile mode grows ``--trace-out FILE`` which
records an in-memory span tree for the single compilation and writes
the same trace format.

``python -m repro serve`` runs the validation service
(:mod:`repro.serve`): a persistent asyncio front-end over the campaign
executor speaking HTTP and an NDJSON socket protocol on one port, with
warm cross-request verdict caches.  ``python -m repro client`` talks to
it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .diag import (
    PassTiming,
    default_emitter,
    default_registry,
    format_stats,
    reset_stats,
    span,
)
from .ir import ParseError, parse_module, print_module, verify_module
from .ir.types import IntType, VectorType
from .ir.verifier import VerificationError
from .opt import (
    baseline_config,
    codegen_pipeline,
    o2_pipeline,
    prototype_config,
    quick_pipeline,
)
from .opt.resilience import (
    CHAOS_MODES,
    POLICIES,
    ChaosEngine,
    GuardedPassError,
    bisect_failure,
    guarded_pipeline,
    list_bundles,
    load_bundle,
    replay_bundle,
)
from .semantics import run_once

_PIPELINES = {
    "o2": o2_pipeline,
    "quick": quick_pipeline,
    "codegen": codegen_pipeline,
}

_CONFIGS = {
    "fixed": prototype_config,
    "legacy": baseline_config,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compile a .ll module with full observability "
                    "(stats, remarks, timing, tracing).",
    )
    parser.add_argument("input", help="path to a textual IR (.ll) file")
    parser.add_argument("--pipeline", choices=sorted(_PIPELINES),
                        default="o2", help="pass pipeline (default: o2)")
    parser.add_argument("--opt-config", choices=sorted(_CONFIGS),
                        default="fixed", dest="opt_config",
                        help="fixed = the paper's pipeline, legacy = the "
                             "historical (buggy) one (default: fixed)")
    parser.add_argument("--stats", action="store_true",
                        help="report statistic counters")
    parser.add_argument("--time-passes", action="store_true",
                        dest="time_passes",
                        help="report per-pass x per-function timing")
    parser.add_argument("--remarks", nargs="?", const="text",
                        choices=["text", "json"],
                        help="report optimization remarks "
                             "(--remarks=json switches the whole report "
                             "to JSON)")
    parser.add_argument("--trace", action="store_true",
                        help="interpret the entry function on zero "
                             "arguments and report its event trace")
    parser.add_argument("--entry", default=None,
                        help="function for --trace (default: @main, "
                             "else the first definition)")
    parser.add_argument("--fuel", type=int, default=100_000,
                        help="step budget for --trace (default: 100000)")
    parser.add_argument("--emit-ir", action="store_true", dest="emit_ir",
                        help="print the optimized module")
    parser.add_argument("--json", action="store_true",
                        help="emit the whole report as one JSON document")
    parser.add_argument("--trace-out", default=None, dest="trace_out",
                        metavar="FILE",
                        help="record spans for this compilation and "
                             "write a Chrome-trace FILE (load in "
                             "Perfetto, or `repro diag top --trace`)")
    _add_resilience_arguments(parser)
    return parser


#: exit code for strict guarded-pass failures and verification failures.
EXIT_GUARDED_FAILURE = 2


def _add_resilience_arguments(parser: argparse.ArgumentParser,
                              with_policy: bool = True) -> None:
    group = parser.add_argument_group("resilience")
    if with_policy:
        group.add_argument("--policy", choices=("none",) + POLICIES,
                           default="none",
                           help="run under the guarded pass manager with "
                                "this recovery policy (default: none = "
                                "unguarded; other resilience flags imply "
                                "strict, or recover under --chaos)")
        group.add_argument("--verify-each", action="store_true",
                           dest="verify_each",
                           help="verify the function after every pass "
                                "application; failures roll back")
        group.add_argument("--crash-dir", default=None, dest="crash_dir",
                           help="write a replayable crash bundle for "
                                "every guarded pass failure")
        group.add_argument("--opt-bisect-limit", type=int, default=None,
                           dest="bisect_limit", metavar="N",
                           help="skip pass applications beyond the Nth "
                                "(the -opt-bisect-limit analog)")
        group.add_argument("--quarantine-after", type=int, default=3,
                           dest="quarantine_after", metavar="N",
                           help="under the quarantine policy, disable a "
                                "pass after N failures (default: 3)")
    group.add_argument("--chaos", action="store_true",
                       help="inject deterministic faults into every "
                            "pass (fault-injection harness)")
    group.add_argument("--chaos-seed", type=int, default=0,
                       dest="chaos_seed", metavar="SEED",
                       help="chaos fault-schedule seed (default: 0)")
    group.add_argument("--chaos-rate", type=float, default=0.05,
                       dest="chaos_rate", metavar="P",
                       help="per-application fault probability "
                            "(default: 0.05)")
    group.add_argument("--chaos-mode", choices=CHAOS_MODES,
                       default="mixed", dest="chaos_mode",
                       help="inject exceptions, IR corruptions, or both "
                            "(default: mixed)")
    group.add_argument("--chaos-fail-at", default=None,
                       dest="chaos_fail_at", metavar="N[,N...]",
                       help="inject exactly at these 1-based pass "
                            "application indices (overrides the rate)")


def _parse_fail_at(text: Optional[str]) -> tuple:
    if not text:
        return ()
    try:
        return tuple(int(p) for p in text.split(",") if p.strip())
    except ValueError:
        raise SystemExit(
            f"error: --chaos-fail-at expects comma-separated integers, "
            f"got {text!r}")


def _chaos_engine(args: argparse.Namespace) -> Optional[ChaosEngine]:
    fail_at = _parse_fail_at(args.chaos_fail_at)
    if not (args.chaos or fail_at):
        return None
    return ChaosEngine(seed=args.chaos_seed, rate=args.chaos_rate,
                       mode=args.chaos_mode, fail_at=fail_at)


def _wants_guard(args: argparse.Namespace, chaos) -> bool:
    return (args.policy != "none" or args.verify_each
            or chaos is not None or args.bisect_limit is not None
            or args.crash_dir is not None)


def _traceable(fn) -> bool:
    return all(isinstance(a.type, (IntType, VectorType)) for a in fn.args)


def _zero_args(fn) -> list:
    args = []
    for a in fn.args:
        if isinstance(a.type, VectorType):
            args.append(tuple(0 for _ in range(a.type.count)))
        else:
            args.append(0)
    return args


def _pick_entry(module, entry: Optional[str]):
    if entry is not None:
        fn = module.get_function(entry)
        if fn is None or fn.is_declaration:
            raise SystemExit(f"error: no definition of @{entry}")
        return fn
    main = module.get_function("main")
    if main is not None and not main.is_declaration:
        return main
    defs = module.definitions()
    if not defs:
        raise SystemExit("error: module has no function definitions")
    return defs[0]


def _run_trace(module, args: argparse.Namespace, config) -> dict:
    fn = _pick_entry(module, args.entry)
    if not _traceable(fn):
        return {"function": fn.name,
                "error": "entry function takes non-integer arguments"}
    behavior = run_once(fn, _zero_args(fn), config.semantics,
                        fuel=args.fuel)
    out = {
        "function": fn.name,
        "behavior": str(behavior),
        "kind": behavior.kind,
    }
    if behavior.trace is not None:
        out["events"] = behavior.trace.as_dict()
    return out


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Piping any subcommand's report into `head`/`grep -q` closes
        # stdout early; exit quietly instead of tracebacking (the
        # Python docs recipe).  Covers every subcommand and direct
        # `main()` callers, not just the `python -m repro` entry point.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 120


def _dispatch(argv: List[str]) -> int:
    if argv and argv[0] == "campaign":
        from .campaign import campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "crash":
        return _crash_main(argv[1:])
    if argv and argv[0] == "bisect":
        return _bisect_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "diag":
        return _diag_main(argv[1:])
    if argv and argv[0] == "serve":
        from .serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        from .serve.cli import client_main

        return client_main(argv[1:])
    if argv and argv[0] == "memo":
        from .perf.cli import memo_main

        return memo_main(argv[1:])
    args = _build_parser().parse_args(argv)

    try:
        with open(args.input) as f:
            text = f.read()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    try:
        module = parse_module(text)
    except ParseError as e:
        print(f"error: {args.input}: {e}", file=sys.stderr)
        return 1
    config = _CONFIGS[args.opt_config]()

    reset_stats()
    timing = PassTiming()
    emitter = default_emitter()

    collector = old_collector = None
    if args.trace_out:
        import os

        from .diag import SpanCollector, set_collector

        collector = SpanCollector(
            label=os.path.basename(args.input) or args.input, keep=True)
        old_collector = set_collector(collector)

    chaos = _chaos_engine(args)
    guarded = _wants_guard(args, chaos)
    policy = args.policy
    if guarded and policy == "none":
        # --verify-each alone should fail loudly; chaos experiments
        # default to surviving their own injected faults.
        policy = "recover" if chaos is not None else "strict"

    # Guarded compiles fly with the black box on: crash bundles then
    # carry the last events before the failure (`repro crash show`).
    recorder = None
    if guarded:
        from .diag import FlightRecorder, set_recorder

        recorder = FlightRecorder()
        set_recorder(recorder)
        recorder.install(collector=collector)

    failure_exit = 0
    try:
        with emitter.collect() as remarks:
            if guarded:
                pm = guarded_pipeline(
                    args.pipeline, config, timing=timing, policy=policy,
                    verify_each=args.verify_each,
                    quarantine_after=args.quarantine_after,
                    bisect_limit=args.bisect_limit,
                    crash_dir=args.crash_dir, chaos=chaos)
            else:
                pm = _PIPELINES[args.pipeline](config, timing=timing)
            try:
                with span("compile", cat="driver") as sp:
                    pm.run(module)
                    verify_module(module)
                    sp.set(pipeline=args.pipeline)
            except GuardedPassError as e:
                print(f"error: {e}", file=sys.stderr)
                failure_exit = EXIT_GUARDED_FAILURE
            except VerificationError as e:
                print(f"error: verification failed after the pipeline: {e}",
                      file=sys.stderr)
                failure_exit = EXIT_GUARDED_FAILURE
    finally:
        if recorder is not None:
            from .diag import set_recorder

            recorder.uninstall()
            set_recorder(None)

    if collector is not None:
        from .diag import set_collector

        set_collector(old_collector)
        collector.close()
        _write_compile_trace(collector, args.trace_out)

    json_mode = args.json or args.remarks == "json"
    report: dict = {
        "input": args.input,
        "pipeline": args.pipeline,
        "opt_config": args.opt_config,
    }
    sections: List[str] = []

    if args.stats:
        report["stats"] = default_registry().snapshot(nonzero_only=True)
        sections.append("stats")
    if args.time_passes:
        report["timing"] = timing.as_dict()
        sections.append("timing")
    if args.remarks:
        report["remarks"] = [r.as_dict() for r in remarks]
        sections.append("remarks")
    if args.trace:
        report["trace"] = _run_trace(module, args, config)
        sections.append("trace")
    if args.emit_ir:
        report["ir"] = print_module(module)
        sections.append("ir")
    if guarded:
        resilience = pm.resilience_report()
        if chaos is not None:
            resilience["chaos"] = dict(chaos.as_dict(),
                                       injected=chaos.injected)
        report["resilience"] = resilience
        sections.append("resilience")

    if json_mode:
        print(json.dumps(report, indent=2))
        return failure_exit

    if not sections:
        print(f"; optimized {args.input} with the {args.pipeline} "
              f"pipeline ({args.opt_config} config); nothing requested "
              "(try --stats/--time-passes/--remarks/--trace)")
        return failure_exit
    if "ir" in sections:
        print(report["ir"])
    if "remarks" in sections:
        for r in remarks:
            print(f"remark: {r}")
        if not remarks:
            print("remark: (none emitted)")
        print()
    if "timing" in sections:
        print(timing.report(per_function=True))
        print()
    if "stats" in sections:
        print(format_stats())
        print()
    if "trace" in sections:
        t = report["trace"]
        print(f"--- trace of @{t['function']} ---")
        for key, value in t.items():
            if key == "events":
                for name, count in value.items():
                    print(f"  {name:>20}: {count}")
            elif key != "function":
                print(f"  {key}: {value}")
        print()
    if "resilience" in sections:
        r = report["resilience"]
        print("--- resilience ---")
        print(f"  policy: {r['policy']}  verify-each: {r['verify_each']}")
        print(f"  pass applications: {r['applications']}  "
              f"failures: {r['failures']}  recoveries: {r['recoveries']}")
        if r.get("quarantined"):
            print(f"  quarantined: {', '.join(r['quarantined'])}")
        if r.get("failed_passes"):
            for entry in r["failed_passes"]:
                print(f"  failed: {entry}")
        if r.get("bundles"):
            for path in r["bundles"]:
                print(f"  bundle: {path}")
        if "chaos" in r:
            c = r["chaos"]
            print(f"  chaos: seed={c['seed']} rate={c['rate']} "
                  f"mode={c['mode']} injected={c['injected']}")
    return failure_exit


def _write_compile_trace(collector, trace_out: str) -> None:
    """Dump a single-compile in-memory span tree as a Chrome trace."""
    import os

    from .diag.trace_export import merge_traces

    meta = {"pid": 0, "label": collector.label}
    trace = merge_traces([(meta, [s.as_dict() for s in collector.spans])])
    parent = os.path.dirname(trace_out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(trace_out, "w", encoding="utf-8") as f:
        json.dump(trace, f)
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print(f"trace: {spans} span(s) written to {trace_out} "
          f"(Perfetto-loadable; see `repro diag top --trace "
          f"{trace_out}`)", file=sys.stderr)


# -- python -m repro diag {top,merge,prom} ---------------------------------
def _diag_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro diag",
        description="Observability toolbox: profile merged span traces, "
                    "merge per-shard span files, render Prometheus "
                    "metrics.")
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser(
        "top", help="profiler-style top table from a span trace")
    src = top.add_mutually_exclusive_group(required=True)
    src.add_argument("--trace", metavar="FILE",
                     help="a merged trace.json (campaign --trace-out or "
                          "compile --trace-out)")
    src.add_argument("--out", metavar="DIR",
                     help="a campaign directory: reads DIR/trace.json "
                          "if present, else merges DIR/spans on the fly")
    top.add_argument("--sort", choices=("self", "total", "count"),
                     default="self",
                     help="row order (default: self time)")
    top.add_argument("--limit", type=int, default=20,
                     help="rows to show (default: 20)")
    top.add_argument("--json", action="store_true",
                     help="emit the profile rows as JSON")

    merge = sub.add_parser(
        "merge", help="merge per-shard span files into one trace.json")
    merge.add_argument("spans_dir",
                       help="directory of spans-*.jsonl files "
                            "(a campaign's <out>/spans)")
    merge.add_argument("-o", "--output", default=None,
                       help="trace file to write (default: "
                            "<spans_dir>/../trace.json)")

    prom = sub.add_parser(
        "prom", help="render metric snapshots as Prometheus text")
    prom.add_argument("paths", nargs="+",
                      help="metrics JSONL file(s), or directories "
                           "containing metrics-*.jsonl")
    return parser


def _metrics_files(paths: List[str]) -> List[str]:
    import glob
    import os

    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(
                glob.glob(os.path.join(path, "metrics-*.jsonl"))))
        else:
            files.append(path)
    return files


def _diag_main(argv: List[str]) -> int:
    import os

    from .diag.trace_export import (
        build_profile, load_trace, merge_trace, render_top,
    )

    args = _diag_parser().parse_args(argv)

    if args.command == "top":
        if args.trace:
            try:
                trace = load_trace(args.trace)
            except (OSError, ValueError) as e:
                print(f"error: {args.trace}: {e}", file=sys.stderr)
                return 1
        else:
            trace_path = os.path.join(args.out, "trace.json")
            spans_dir = os.path.join(args.out, "spans")
            if os.path.isfile(trace_path):
                trace = load_trace(trace_path)
            elif os.path.isdir(spans_dir):
                trace = merge_trace(spans_dir)
            else:
                print(f"error: neither {trace_path} nor {spans_dir} "
                      f"exists (run the campaign with --trace-out)",
                      file=sys.stderr)
                return 1
        profile = build_profile(trace)
        if args.json:
            print(json.dumps(profile, indent=2, sort_keys=True))
        else:
            print(render_top(profile, sort=args.sort, limit=args.limit))
        return 0

    if args.command == "merge":
        if not os.path.isdir(args.spans_dir):
            print(f"error: {args.spans_dir} is not a directory",
                  file=sys.stderr)
            return 1
        out = args.output or os.path.join(
            os.path.dirname(os.path.abspath(args.spans_dir)),
            "trace.json")
        trace = merge_trace(args.spans_dir, out)
        events = sum(1 for e in trace["traceEvents"]
                     if e.get("ph") == "X")
        pids = len({e.get("pid") for e in trace["traceEvents"]})
        print(f"trace: {events} span(s) from {pids} worker(s) merged "
              f"into {out}")
        return 0

    # prom
    from .diag.metrics import merge_latest_metrics, render_prometheus

    files = _metrics_files(args.paths)
    if not files:
        print("error: no metrics JSONL files found", file=sys.stderr)
        return 1
    snapshot = merge_latest_metrics(files)
    sys.stdout.write(render_prometheus(snapshot))
    return 0


# -- python -m repro crash {list,show,replay} ------------------------------
def _crash_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro crash",
        description="Inspect and replay crash bundles captured by the "
                    "guarded pass manager.")
    sub = parser.add_subparsers(dest="command", required=True)
    p_list = sub.add_parser("list", help="list bundles under a directory")
    p_list.add_argument("root", help="crash-bundle directory (--crash-dir)")
    p_list.add_argument("--json", action="store_true")
    p_show = sub.add_parser("show", help="print one bundle's manifest")
    p_show.add_argument("bundle", help="path to a bundle directory")
    p_show.add_argument("--ir", action="store_true",
                        help="also print the pre-pass IR")
    p_show.add_argument("--json", action="store_true")
    p_replay = sub.add_parser(
        "replay", help="re-run the recorded pass on the recorded IR")
    p_replay.add_argument("path",
                          help="a bundle directory, or a --crash-dir "
                               "root (replays every bundle under it)")
    p_replay.add_argument("--json", action="store_true")
    return parser


def _bundle_paths(path: str) -> List[str]:
    import os

    if os.path.isfile(os.path.join(path, "bundle.json")):
        return [path]
    return list_bundles(path)


def _lint_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro lint",
        description="UBSan-style static checker for the IR, powered by "
                    "the poison dataflow fixpoint.",
        epilog="exit codes: 0 = no finding at or above --min-severity "
               "(after filtering); 1 = at least one warning or error "
               "survived the filter; 2 = usage or parse error.")
    p.add_argument("inputs", nargs="*", help=".ll files to lint")
    p.add_argument("--min-severity",
                   choices=["note", "warning", "error"],
                   default="note", dest="min_severity",
                   help="drop findings below this severity from every "
                        "output format and from the exit code "
                        "(default: note = keep all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON findings")
    p.add_argument("--sarif", metavar="FILE",
                   help="write SARIF 2.1.0 to FILE ('-' for stdout)")
    p.add_argument("--rule", action="append", metavar="ID",
                   help="run only this rule (repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="list rule IDs and exit")
    p.add_argument("--pipeline", choices=["none", "o2", "quick", "codegen"],
                   default="none",
                   help="optimize before linting (default: lint as-is)")
    p.add_argument("--opt-config", choices=sorted(_CONFIGS),
                   default="fixed",
                   help="config for --pipeline (default: fixed)")
    return p


def _lint_main(argv: List[str]) -> int:
    from .lint import (
        RULES, lint_module, render_json, render_sarif, render_text,
        severity_rank,
    )

    args = _lint_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id} ({rule.severity}): {rule.description}")
        return 0
    if not args.inputs:
        print("error: no input files (see --help)", file=sys.stderr)
        return 2
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    diags = []
    for path in args.inputs:
        try:
            with open(path) as f:
                text = f.read()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        try:
            module = parse_module(text)
        except ParseError as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            return 2
        if args.pipeline != "none":
            config = _CONFIGS[args.opt_config]()
            _PIPELINES[args.pipeline](config).run(module)
        # Lint always checks under the revised semantics: IR produced
        # by the legacy config is exactly the IR with latent UB.
        diags.extend(lint_module(module, rules=args.rule, file=path))

    floor = severity_rank(args.min_severity)
    diags = [d for d in diags if severity_rank(d.severity) >= floor]

    if args.sarif:
        doc = render_sarif(diags, rules=args.rule)
        if args.sarif == "-":
            print(doc)
        else:
            with open(args.sarif, "w") as f:
                f.write(doc + "\n")
    if args.json:
        print(render_json(diags))
    elif not (args.sarif == "-"):
        print(render_text(diags))

    worst = max((severity_rank(d.severity) for d in diags), default=0)
    return 1 if worst >= 1 else 0  # warnings/errors fail, notes pass


def _print_flight_recorder(dump: Optional[dict],
                           tail: int = 16) -> None:
    """Render a bundle's black-box flight-recorder tail."""
    if not dump or not dump.get("events"):
        return
    events = dump["events"]
    dropped = dump.get("dropped", 0)
    print(f"flight recorder: {dump.get('recorded', len(events))} "
          f"event(s) recorded"
          + (f", {dropped} dropped (ring capacity "
             f"{dump.get('capacity')})" if dropped else "")
          + f"; last {min(tail, len(events))}:")
    base = events[0].get("t", 0.0)
    for event in events[-tail:]:
        fields = " ".join(f"{k}={v}" for k, v in event.items()
                          if k not in ("t", "kind"))
        offset = event.get("t", base) - base
        print(f"  +{offset:8.3f}s {event.get('kind', '?'):<16} {fields}")


def _crash_main(argv: List[str]) -> int:
    args = _crash_parser().parse_args(argv)
    if args.command == "list":
        paths = list_bundles(args.root)
        if args.json:
            rows = []
            for path in paths:
                b = load_bundle(path)
                rows.append({"path": path, "pass": b["pass"],
                             "function": b["function"],
                             "application": b["application"],
                             "kind": b["kind"],
                             "injected": b.get("injected", False)})
            print(json.dumps(rows, indent=2))
        else:
            for path in paths:
                b = load_bundle(path)
                injected = " [chaos]" if b.get("injected") else ""
                print(f"{path}: {b['pass']} on @{b['function']} "
                      f"(application #{b['application']}, "
                      f"{b['kind']}){injected}")
            if not paths:
                print(f"no bundles under {args.root}")
        return 0

    if args.command == "show":
        try:
            bundle = load_bundle(args.bundle)
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
        if args.json:
            shown = dict(bundle)
            if not args.ir:
                shown.pop("before_ir", None)
            print(json.dumps(shown, indent=2, sort_keys=True))
        else:
            for key in ("bundle_id", "pass", "function", "application",
                        "kind", "error", "policy", "seed",
                        "injected_action"):
                if bundle.get(key) is not None:
                    print(f"{key}: {bundle[key]}")
            _print_flight_recorder(bundle.get("flight_recorder"))
            if args.ir:
                print("\n--- before.ll ---")
                print(bundle["before_ir"])
        return 0

    # replay
    paths = _bundle_paths(args.path)
    if not paths:
        print(f"error: no bundles at {args.path}", file=sys.stderr)
        return 1
    results = [replay_bundle(p) for p in paths]
    if args.json:
        print(json.dumps([r.as_dict() for r in results], indent=2))
    else:
        for r in results:
            status = "reproduced" if r.reproduced else "NOT reproduced"
            print(f"{r.bundle}: {r.pass_name}: {status} ({r.outcome})")
    return 0 if all(r.reproduced for r in results) else 1


# -- python -m repro bisect -------------------------------------------------
def _bisect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bisect",
        description="Binary-search the first pass application that makes "
                    "a checker fail (the -opt-bisect-limit driver).")
    parser.add_argument("input", help="path to a textual IR (.ll) file")
    parser.add_argument("--pipeline", choices=sorted(_PIPELINES),
                        default="o2")
    parser.add_argument("--opt-config", choices=sorted(_CONFIGS),
                        default="fixed", dest="opt_config")
    parser.add_argument("--checker", choices=("verify", "interp"),
                        default="verify",
                        help="verify = the optimized module must pass "
                             "the IR verifier; interp = interpreting the "
                             "entry function must match the unoptimized "
                             "module's behavior (default: verify)")
    parser.add_argument("--entry", default=None,
                        help="entry function for --checker=interp")
    parser.add_argument("--fuel", type=int, default=100_000)
    parser.add_argument("--verbose", action="store_true",
                        help="log every bisection probe")
    parser.add_argument("--json", action="store_true")
    _add_resilience_arguments(parser, with_policy=False)
    return parser


def _bisect_main(argv: List[str]) -> int:
    args = _bisect_parser().parse_args(argv)
    try:
        with open(args.input) as f:
            text = f.read()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    try:
        baseline = parse_module(text)
    except ParseError as e:
        print(f"error: {args.input}: {e}", file=sys.stderr)
        return 1
    config = _CONFIGS[args.opt_config]()
    fail_at = _parse_fail_at(args.chaos_fail_at)
    chaos_requested = args.chaos or bool(fail_at)

    if args.checker == "verify":
        def checker(module) -> bool:
            try:
                verify_module(module)
                return True
            except VerificationError:
                return False
    else:
        entry = _pick_entry(baseline, args.entry).name
        ref_fn = baseline.get_function(entry)
        if not _traceable(ref_fn):
            print(f"error: @{entry} takes non-integer arguments; "
                  f"--checker=interp needs a traceable entry",
                  file=sys.stderr)
            return 1
        reference = str(run_once(ref_fn, _zero_args(ref_fn),
                                 config.semantics, fuel=args.fuel))

        def checker(module) -> bool:
            fn = module.get_function(entry)
            if fn is None or fn.is_declaration:
                return False
            try:
                verify_module(module)
                behavior = run_once(fn, _zero_args(fn), config.semantics,
                                    fuel=args.fuel)
            except Exception:
                return False
            return str(behavior) == reference

    def make_pipeline(limit):
        # A fresh chaos engine per probe: schedules are keyed to
        # executed-application indices, so every probe replays the same
        # faults up to its limit.
        chaos = (ChaosEngine(seed=args.chaos_seed, rate=args.chaos_rate,
                             mode=args.chaos_mode, fail_at=fail_at)
                 if chaos_requested else None)
        return guarded_pipeline(args.pipeline, config, policy="recover",
                                verify_each=False, bisect_limit=limit,
                                chaos=chaos)

    log = (lambda line: print(line, file=sys.stderr)) if args.verbose \
        else None
    result = bisect_failure(make_pipeline, lambda: parse_module(text),
                            checker, log=log)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result)
    return 0 if result.status in ("found", "clean") else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
