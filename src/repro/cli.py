"""The ``python -m repro`` command-line driver.

Compiles a textual ``.ll`` module through one of the standard pipelines
and exposes every observability layer end to end::

    python -m repro examples/unswitch_gvn.ll --stats --time-passes \
        --remarks=json

* ``--stats`` — the statistics registry (``-stats``);
* ``--time-passes`` — hierarchical per-pass × per-function timing;
* ``--remarks[=json]`` — optimization remarks from every pass;
* ``--trace`` — interpret the entry function and report its event trace;
* ``--emit-ir`` — print the optimized module.

Output is plain text by default.  With ``--remarks=json`` or ``--json``
the whole report becomes a single JSON document with one key per
requested section (``stats``, ``timing``, ``remarks``, ``trace``, …),
which is what the CI smoke test and the acceptance check parse.

``python -m repro campaign ...`` dispatches to the validation campaign
engine (:mod:`repro.campaign`): parallel sharded opt-fuzz × refinement
checking with checkpoint/resume, dedup, and counterexample reduction.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .diag import (
    PassTiming,
    default_emitter,
    default_registry,
    format_stats,
    reset_stats,
)
from .ir import ParseError, parse_module, print_module, verify_module
from .ir.types import IntType, VectorType
from .opt import (
    baseline_config,
    codegen_pipeline,
    o2_pipeline,
    prototype_config,
    quick_pipeline,
)
from .semantics import run_once

_PIPELINES = {
    "o2": o2_pipeline,
    "quick": quick_pipeline,
    "codegen": codegen_pipeline,
}

_CONFIGS = {
    "fixed": prototype_config,
    "legacy": baseline_config,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compile a .ll module with full observability "
                    "(stats, remarks, timing, tracing).",
    )
    parser.add_argument("input", help="path to a textual IR (.ll) file")
    parser.add_argument("--pipeline", choices=sorted(_PIPELINES),
                        default="o2", help="pass pipeline (default: o2)")
    parser.add_argument("--opt-config", choices=sorted(_CONFIGS),
                        default="fixed", dest="opt_config",
                        help="fixed = the paper's pipeline, legacy = the "
                             "historical (buggy) one (default: fixed)")
    parser.add_argument("--stats", action="store_true",
                        help="report statistic counters")
    parser.add_argument("--time-passes", action="store_true",
                        dest="time_passes",
                        help="report per-pass x per-function timing")
    parser.add_argument("--remarks", nargs="?", const="text",
                        choices=["text", "json"],
                        help="report optimization remarks "
                             "(--remarks=json switches the whole report "
                             "to JSON)")
    parser.add_argument("--trace", action="store_true",
                        help="interpret the entry function on zero "
                             "arguments and report its event trace")
    parser.add_argument("--entry", default=None,
                        help="function for --trace (default: @main, "
                             "else the first definition)")
    parser.add_argument("--fuel", type=int, default=100_000,
                        help="step budget for --trace (default: 100000)")
    parser.add_argument("--emit-ir", action="store_true", dest="emit_ir",
                        help="print the optimized module")
    parser.add_argument("--json", action="store_true",
                        help="emit the whole report as one JSON document")
    return parser


def _traceable(fn) -> bool:
    return all(isinstance(a.type, (IntType, VectorType)) for a in fn.args)


def _zero_args(fn) -> list:
    args = []
    for a in fn.args:
        if isinstance(a.type, VectorType):
            args.append(tuple(0 for _ in range(a.type.count)))
        else:
            args.append(0)
    return args


def _pick_entry(module, entry: Optional[str]):
    if entry is not None:
        fn = module.get_function(entry)
        if fn is None or fn.is_declaration:
            raise SystemExit(f"error: no definition of @{entry}")
        return fn
    main = module.get_function("main")
    if main is not None and not main.is_declaration:
        return main
    defs = module.definitions()
    if not defs:
        raise SystemExit("error: module has no function definitions")
    return defs[0]


def _run_trace(module, args: argparse.Namespace, config) -> dict:
    fn = _pick_entry(module, args.entry)
    if not _traceable(fn):
        return {"function": fn.name,
                "error": "entry function takes non-integer arguments"}
    behavior = run_once(fn, _zero_args(fn), config.semantics,
                        fuel=args.fuel)
    out = {
        "function": fn.name,
        "behavior": str(behavior),
        "kind": behavior.kind,
    }
    if behavior.trace is not None:
        out["events"] = behavior.trace.as_dict()
    return out


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "campaign":
        from .campaign import campaign_main

        return campaign_main(argv[1:])
    args = _build_parser().parse_args(argv)

    try:
        with open(args.input) as f:
            text = f.read()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    try:
        module = parse_module(text)
    except ParseError as e:
        print(f"error: {args.input}: {e}", file=sys.stderr)
        return 1
    config = _CONFIGS[args.opt_config]()

    reset_stats()
    timing = PassTiming()
    emitter = default_emitter()

    with emitter.collect() as remarks:
        pm = _PIPELINES[args.pipeline](config, timing=timing)
        pm.run(module)
        verify_module(module)

    json_mode = args.json or args.remarks == "json"
    report: dict = {
        "input": args.input,
        "pipeline": args.pipeline,
        "opt_config": args.opt_config,
    }
    sections: List[str] = []

    if args.stats:
        report["stats"] = default_registry().snapshot(nonzero_only=True)
        sections.append("stats")
    if args.time_passes:
        report["timing"] = timing.as_dict()
        sections.append("timing")
    if args.remarks:
        report["remarks"] = [r.as_dict() for r in remarks]
        sections.append("remarks")
    if args.trace:
        report["trace"] = _run_trace(module, args, config)
        sections.append("trace")
    if args.emit_ir:
        report["ir"] = print_module(module)
        sections.append("ir")

    if json_mode:
        print(json.dumps(report, indent=2))
        return 0

    if not sections:
        print(f"; optimized {args.input} with the {args.pipeline} "
              f"pipeline ({args.opt_config} config); nothing requested "
              "(try --stats/--time-passes/--remarks/--trace)")
        return 0
    if "ir" in sections:
        print(report["ir"])
    if "remarks" in sections:
        for r in remarks:
            print(f"remark: {r}")
        if not remarks:
            print("remark: (none emitted)")
        print()
    if "timing" in sections:
        print(timing.report(per_function=True))
        print()
    if "stats" in sections:
        print(format_stats())
        print()
    if "trace" in sections:
        t = report["trace"]
        print(f"--- trace of @{t['function']} ---")
        for key, value in t.items():
            if key == "events":
                for name, count in value.items():
                    print(f"  {name:>20}: {count}")
            elif key != "function":
                print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
